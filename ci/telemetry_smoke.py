"""CI smoke check: telemetry must be well-formed, exportable, and inert.

Validates the artifacts CI just produced — the ``--log`` JSONL must
parse with monotone sequence numbers and carry the correlation schema,
and the ``--metrics`` snapshot must export as Prometheus text that
passes ``validate_prometheus`` and as a structurally sound OTLP
document. Then re-runs the skewed wordcount in-process with full
telemetry attached vs. none and asserts the collected counts, stage
stats, and simulated clock are bit-identical, and that a forced
process-pool sweep attributes worker-labeled series deterministically
(two sweeps, byte-identical snapshots and logs).
"""

from __future__ import annotations

import json
import os
import sys

from repro.chopper import ChopperRunner
from repro.chopper import parallel as par
from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.obs import EventLog, MetricsRegistry, ResourceProfiler
from repro.obs.export import to_otlp, to_prometheus, validate_prometheus
from repro.obs.log import LEVELS
from repro.workloads import WordCountWorkload

LOG = sys.argv[1] if len(sys.argv) > 1 else "run.log"
METRICS = sys.argv[2] if len(sys.argv) > 2 else "metrics.json"


def check_log() -> int:
    records = [json.loads(line) for line in open(LOG, encoding="utf-8")]
    assert records, f"{LOG} is empty"
    assert [r["seq"] for r in records] == list(range(len(records))), (
        "log sequence numbers are not monotone from 0"
    )
    for r in records:
        assert r["level"] in LEVELS, f"bad level in record {r['seq']}"
        assert r["t"] >= 0.0
        assert r["logger"] and r["event"]
    loggers = {r["logger"] for r in records}
    assert {"dag_scheduler", "task_scheduler", "executor"} <= loggers, (
        f"missing core emitters; saw {sorted(loggers)}"
    )
    task_records = [r for r in records if r["event"] == "task_finished"]
    assert task_records, "no per-task records"
    for r in task_records:
        assert {"stage", "partition", "node"} <= set(r), (
            f"task record {r['seq']} lacks correlation ids"
        )
    return len(records)


def check_exports() -> int:
    snap = json.load(open(METRICS, encoding="utf-8"))
    samples = validate_prometheus(to_prometheus(snap))
    assert samples > 5, f"only {samples} Prometheus samples"
    doc = to_otlp(snap)
    (resource,) = doc["resourceMetrics"]
    metrics = resource["scopeMetrics"][0]["metrics"]
    assert any(m["name"] == "scheduler.tasks_completed" for m in metrics)
    return samples


def run_wordcount(telemetry: bool):
    conf = EngineConf(default_parallelism=32)
    event_log = EventLog() if telemetry else None
    registry = MetricsRegistry() if telemetry else None
    profiler = ResourceProfiler() if telemetry else None
    if profiler is not None:
        profiler.start()
    ctx = AnalyticsContext(
        uniform_cluster(n_workers=3, cores=4),
        conf,
        event_log=event_log,
        metrics_registry=registry,
        profiler=profiler,
    )
    try:
        value = WordCountWorkload(
            physical_records=3000, skew=1.9
        ).run(ctx).value
        stats = [
            (s.name, s.duration, s.shuffle_bytes, s.num_partitions)
            for s in ctx.stage_stats
        ]
        return value, ctx.now, stats
    finally:
        if profiler is not None:
            profiler.stop()
        ctx.close()


def check_identity() -> None:
    assert run_wordcount(telemetry=False) == run_wordcount(telemetry=True), (
        "telemetry changed the simulated wordcount run"
    )


def pool_sweep():
    runner = ChopperRunner(
        WordCountWorkload(physical_records=2000),
        base_conf=EngineConf(default_parallelism=8),
    )
    runner.metrics_registry = MetricsRegistry()
    runner.event_log = EventLog()
    runner.profile(p_grid=(4, 8), scales=(0.02,), jobs=2)
    return runner


def check_worker_attribution() -> int:
    os.environ["REPRO_POOL_FORCE"] = "1"
    try:
        first = pool_sweep()
        assert par.last_dispatch == "pool", "pool dispatch did not engage"
        snapshot = first.metrics_registry.snapshot()
        labeled = [
            s
            for s in snapshot["counters"]["scheduler.tasks_completed"]
            if "worker" in s["labels"]
        ]
        assert labeled and all(s["value"] > 0 for s in labeled), (
            "no nonzero worker-labeled counter series"
        )
        assert any("worker" in r for r in first.event_log.records), (
            "no worker-attributed log records"
        )
        second = pool_sweep()
        assert json.dumps(snapshot, sort_keys=True) == json.dumps(
            second.metrics_registry.snapshot(), sort_keys=True
        ), "pool-sweep metric snapshots differ between repeats"
        assert json.dumps(first.event_log.records) == json.dumps(
            second.event_log.records
        ), "pool-sweep logs differ between repeats"
        return len(labeled)
    finally:
        del os.environ["REPRO_POOL_FORCE"]


def main() -> None:
    n_records = check_log()
    samples = check_exports()
    check_identity()
    workers = check_worker_attribution()
    print(
        f"ok: {n_records} log records monotone and correlated; {samples} "
        f"Prometheus samples validate; wordcount bit-identical with "
        f"telemetry on/off; {workers} worker-labeled series byte-stable "
        f"across pool repeats"
    )


if __name__ == "__main__":
    main()

"""CI smoke check: the partition cache must skip work, never change it.

Reads the three sql entries CI appended to the run ledger — one cold
run that populates a shared sqlite result cache, two warm runs over it —
and asserts the warm runs actually hit the cache, scheduled strictly
fewer scan tasks (every pruned partition accounted for, none of them
ever scheduled), and finished at least 1.5x faster in simulated time.
Then re-runs the workload in-process cold, warm, and with pruning
disabled outright, and asserts the collected rows are bit-identical,
which the ledger alone cannot show (it records performance, not values).
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads.sql import SQLWorkload

LEDGER = sys.argv[1] if len(sys.argv) > 1 else "ledger.jsonl"
MIN_SPEEDUP = 1.5


def scan_tasks(entry) -> int:
    return sum(s["num_partitions"] for s in entry["stages"])


def pruned(entry) -> int:
    return sum(s.get("pruned_partitions", 0) for s in entry["stages"])


def cache_stats(entry) -> dict:
    block = entry.get("partition_cache")
    assert block, f"ledger entry {entry['run_id']} has no partition_cache"
    assert block["zone_maps"], "no zone-map coverage recorded"
    return block["cache"]


def check_ledger():
    entries = [json.loads(line) for line in open(LEDGER, encoding="utf-8")]
    sql = [e for e in entries if e["workload"] == "sql"]
    assert len(sql) == 3, f"expected 3 sql ledger entries, found {len(sql)}"
    cold, warm1, warm2 = sql

    assert cache_stats(cold)["misses"] >= 1, "cold run did not miss"
    assert cache_stats(cold)["hits"] == 0, "cold run cannot hit"
    assert pruned(cold) == 0, "cold run pruned without prior statistics"

    for warm in (warm1, warm2):
        stats = cache_stats(warm)
        assert stats["hits"] >= 1, (
            f"warm run {warm['run_id']} never hit the cache: {stats}"
        )
        assert pruned(warm) > 0, f"warm run {warm['run_id']} pruned nothing"
        assert scan_tasks(warm) < scan_tasks(cold), (
            f"warm run {warm['run_id']} scheduled no fewer tasks: "
            f"{scan_tasks(warm)} vs {scan_tasks(cold)} cold"
        )
        # Zero pruned tasks scheduled: scanned + pruned must add back up
        # to the cold run's full scan — a pruned partition that somehow
        # scheduled anyway would double-count here.
        assert scan_tasks(warm) + pruned(warm) == scan_tasks(cold), (
            f"warm run {warm['run_id']} scheduled pruned partitions: "
            f"{scan_tasks(warm)} + {pruned(warm)} != {scan_tasks(cold)}"
        )
        speedup = cold["wall_clock"] / warm["wall_clock"]
        assert speedup >= MIN_SPEEDUP, (
            f"warm run {warm['run_id']} only {speedup:.2f}x faster "
            f"(need >= {MIN_SPEEDUP}x)"
        )
    return cold, warm1


def run_sql(cache_path=None, pruning=True):
    conf = dict(default_parallelism=16, partition_pruning=pruning)
    if cache_path is not None:
        conf.update(result_cache="sqlite", result_cache_path=cache_path)
    ctx = AnalyticsContext(uniform_cluster(n_workers=4, cores=2),
                           EngineConf(**conf))
    try:
        workload = SQLWorkload(physical_records=1600, max_order=200)
        return workload.run(ctx, scale=0.2).value
    finally:
        ctx.close()


def check_identity() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/cache.db"
        cold_rows = run_sql(cache_path=path)
        warm_rows = run_sql(cache_path=path)
        plain_rows = run_sql(pruning=False)
    assert warm_rows == cold_rows, "warm cached run changed the rows"
    assert plain_rows == cold_rows, "pruning changed the rows"
    return len(cold_rows)


def main() -> None:
    cold, warm = check_ledger()
    n_rows = check_identity()
    speedup = cold["wall_clock"] / warm["wall_clock"]
    print(
        f"ok: warm runs hit the cache ({cache_stats(warm)['hits']} hits), "
        f"scanned {scan_tasks(warm)}/{scan_tasks(cold)} partitions "
        f"({pruned(warm)} pruned, none scheduled), {speedup:.2f}x faster; "
        f"{n_rows} identical result rows cold/warm/unpruned"
    )


if __name__ == "__main__":
    main()

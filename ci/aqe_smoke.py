"""CI smoke check: adaptive execution must only re-shape, never re-value.

Reads the four skewed entries CI appended to the run ledger — wordcount
and sql, each with and without ``--aqe`` — and asserts the AQE runs
recorded their re-plan decisions with a strictly lower post-shuffle Gini
coefficient, while the static runs recorded none. Then re-runs the
skewed wordcount in-process AQE-on vs AQE-off — including one run that
loses a worker node mid-reduce and recovers through lineage — and
asserts the collected counts are bit-identical, which the ledger alone
cannot show (it records performance, not values).
"""

from __future__ import annotations

import json
import sys

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.workloads import WordCountWorkload

LEDGER = sys.argv[1] if len(sys.argv) > 1 else "ledger.jsonl"

AQE_KNOBS = dict(
    adaptive_execution=True, aqe_target_partition_bytes=16.0 * 1024
)


def check_ledger() -> int:
    entries = [json.loads(line) for line in open(LEDGER, encoding="utf-8")]
    replans = 0
    for workload in ("wordcount", "sql"):
        pair = [e for e in entries if e["workload"] == workload]
        assert len(pair) == 2, (
            f"expected 2 {workload} ledger entries, found {len(pair)}"
        )
        static = next(e for e in pair if not e.get("aqe_events"))
        aqe = next(e for e in pair if e.get("aqe_events"))
        assert static.get("aqe_event_count", 0) == 0
        events = aqe["aqe_events"]
        assert aqe["aqe_event_count"] == len(events)
        for event in events:
            if event["event"] != "aqe-replan":
                continue
            replans += 1
            assert event["gini_after"] < event["gini_before"], (
                f"{workload} {event['stage']}: re-plan did not lower the "
                f"partition-size Gini ({event['gini_before']} -> "
                f"{event['gini_after']})"
            )
        assert aqe["wall_clock"] < static["wall_clock"], (
            f"{workload}: AQE run was not faster "
            f"({aqe['wall_clock']:.3f}s vs {static['wall_clock']:.3f}s)"
        )
    assert replans >= 2, f"only {replans} re-plan events across both pairs"
    return replans


def run_wordcount(**conf_kwargs):
    conf_kwargs.setdefault("default_parallelism", 32)
    conf_kwargs.setdefault(
        "cost",
        CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0),
    )
    ctx = AnalyticsContext(
        uniform_cluster(n_workers=3, cores=4), EngineConf(**conf_kwargs)
    )
    try:
        value = WordCountWorkload(
            physical_records=3000, skew=1.9
        ).run(ctx).value
        counters = {
            k: v[0]["value"]
            for k, v in ctx.obs.metrics.snapshot()["counters"].items()
        }
        last_reduce = [s for s in ctx.stage_stats if s.kind == "result"][-1]
        return value, counters, last_reduce
    finally:
        ctx.close()


def check_values() -> None:
    base, counters, _ = run_wordcount()
    assert not any(k.startswith("aqe.") for k in counters)
    on, counters, reduce_stats = run_wordcount(**AQE_KNOBS)
    assert counters.get("aqe.partitions_coalesced", 0) >= 2, (
        "AQE never coalesced — the in-process identity check is vacuous"
    )
    assert on == base, "AQE changed the collected wordcount"

    # Kill a worker mid-reduce: the resubmitted map stage must re-derive
    # the same adaptive plan and the same counts. The kill window comes
    # from the AQE run: its adapted schedule finishes earlier than the
    # static one's, so a baseline-derived time could land post-run.
    start = min(t.start for t in reduce_stats.tasks)
    kill = (start + min(t.end for t in reduce_stats.tasks)) / 2.0
    chaos, counters, _ = run_wordcount(
        node_failure_times={"w0": kill},
        node_recovery_delay=5.0,
        **AQE_KNOBS,
    )
    assert counters.get("scheduler.stage_resubmissions", 0) >= 1, (
        f"node loss at t={kill:.2f}s triggered no resubmission"
    )
    assert chaos == base, "AQE + node loss changed the collected wordcount"


def main() -> None:
    replans = check_ledger()
    check_values()
    print(
        f"ok: {replans} ledger re-plans all lowered Gini; wordcount counts "
        f"bit-identical AQE on/off, incl. one node-loss recovery run"
    )


if __name__ == "__main__":
    main()

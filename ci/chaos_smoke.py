"""CI smoke check: a node loss mid-shuffle must not change results.

Runs the same two-stage aggregation twice — once failure-free, once with
a worker killed inside the reduce stage — and asserts identical results
plus evidence that lineage recovery actually fired.
"""

from __future__ import annotations

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig


def run(**conf_kwargs):
    conf = EngineConf(
        default_parallelism=8,
        cost=CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0),
        **conf_kwargs,
    )
    ctx = AnalyticsContext(uniform_cluster(n_workers=3, cores=2), conf)
    pairs = ctx.parallelize([(i % 13, 1) for i in range(8000)], 8)
    out = pairs.reduce_by_key(lambda a, b: a + b, 6).collect_as_map()
    return ctx, out


def main() -> None:
    baseline_ctx, baseline = run()
    reduce_stats = next(
        s for s in baseline_ctx.stage_stats if s.kind == "result"
    )
    start = min(t.start for t in reduce_stats.tasks)
    first_end = min(t.end for t in reduce_stats.tasks)
    kill_time = (start + first_end) / 2.0

    chaos_ctx, chaotic = run(node_failure_times={"w0": kill_time})
    assert chaotic == baseline, "node loss changed the computed results"
    assert chaos_ctx.task_scheduler.nodes_lost == 1
    assert chaos_ctx.dag_scheduler.fetch_failures > 0, "chaos never fired"
    assert chaos_ctx.dag_scheduler.stage_resubmissions >= 1, (
        "recovery path never resubmitted the parent stage"
    )
    print(
        f"ok: identical results after killing w0 at t={kill_time:.3f}s "
        f"({chaos_ctx.dag_scheduler.fetch_failures} fetch failures, "
        f"{chaos_ctx.dag_scheduler.stage_resubmissions} resubmissions)"
    )


if __name__ == "__main__":
    main()

"""CI smoke check: the logical-plan optimizer must only remove work.

Reads the two sql entries CI appended to the run ledger — one lowered
raw (``--no-optimize``), one through the rewrite batches — and asserts
the optimized run executed strictly fewer stages and recorded its rule
hit-counts. Then re-runs the workload in-process both ways and asserts
the collected rows are bit-identical, which the ledger alone cannot
show (it records performance, not values).
"""

from __future__ import annotations

import json
import sys

from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads.sql import SQLWorkload

LEDGER = sys.argv[1] if len(sys.argv) > 1 else "ledger.jsonl"


def collect(optimize: bool):
    ctx = AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=16))
    try:
        workload = SQLWorkload(
            virtual_gb=1.0, physical_records=2000, optimize=optimize
        )
        value = workload.run(ctx).value
        return value, list(ctx.plan_events)
    finally:
        ctx.close()


def main() -> None:
    entries = [json.loads(line) for line in open(LEDGER, encoding="utf-8")]
    sql = [e for e in entries if e["workload"] == "sql"]
    assert len(sql) == 2, f"expected 2 sql ledger entries, found {len(sql)}"
    raw = next(e for e in sql if not e.get("plan"))
    opt = next(e for e in sql if e.get("plan"))

    hits = opt["plan"]["rule_hits"]
    assert sum(hits.values()) > 0, "optimizer recorded no rule hits"
    assert hits.get("DropRepartition", 0) >= 1, (
        f"expected the hand-tuned repartition to be elided, hits={hits}"
    )
    raw_stages = len(raw["stages"])
    opt_stages = len(opt["stages"])
    assert opt_stages < raw_stages, (
        f"optimizer must remove >=1 stage execution: "
        f"{opt_stages} (optimized) vs {raw_stages} (raw)"
    )

    opt_value, opt_events = collect(True)
    raw_value, raw_events = collect(False)
    assert opt_value == raw_value, "optimized run changed the query result"
    assert raw_events == [], "unoptimized run still ran the rule batches"
    assert opt_events and opt_events[0]["rule_hits"], (
        "optimized run recorded no plan events"
    )

    print(
        f"ok: {opt_stages} stage executions optimized vs {raw_stages} raw, "
        f"rule hits {hits}, {len(opt_value)} identical result rows"
    )


if __name__ == "__main__":
    main()

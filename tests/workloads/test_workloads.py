"""Correctness tests for the workload drivers (small physical samples)."""

import numpy as np
import pytest

from repro.cluster import uniform_cluster
from repro.common.errors import WorkloadError
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import (
    KMeansWorkload,
    PCAWorkload,
    PageRankWorkload,
    SQLWorkload,
    WordCountWorkload,
)


def make_ctx(parallelism=24):
    return AnalyticsContext(
        uniform_cluster(n_workers=3, cores=8),
        EngineConf(default_parallelism=parallelism),
    )


class TestKMeans:
    def test_stage_structure(self):
        ctx = make_ctx()
        workload = KMeansWorkload(
            virtual_gb=2.0, physical_records=1500, k=4, dim=3,
            lloyd_iterations=3, init_rounds=5,
        )
        workload.run(ctx)
        stats = ctx.stage_stats
        assert len(stats) == workload.expected_stage_count() == 20
        # Only stages 12-17 (iterations) and 18-19 (final count) shuffle.
        shuffling = [i for i, s in enumerate(stats) if s.shuffle_bytes > 0]
        assert shuffling == [12, 13, 14, 15, 16, 17, 18, 19]

    def test_iterations_share_signature(self):
        ctx = make_ctx()
        workload = KMeansWorkload(
            virtual_gb=2.0, physical_records=1000, k=3, dim=3
        )
        workload.run(ctx)
        sigs = [s.signature for s in ctx.stage_stats]
        assert sigs[12] == sigs[14] == sigs[16]
        assert sigs[13] == sigs[15] == sigs[17]
        assert sigs[0] != sigs[1]  # load vs sample pass are distinct

    def test_recovers_cluster_structure(self):
        """With well-separated generators, centers land near the truth."""
        ctx = make_ctx()
        workload = KMeansWorkload(
            virtual_gb=1.0, physical_records=2000, k=5, dim=2,
            lloyd_iterations=4, init_rounds=3, seed=3,
        )
        result = workload.run(ctx)
        centers = result.value
        from repro.workloads.datagen import KMeansDataGen

        truth = KMeansDataGen(
            virtual_bytes=1.0, physical_records=1, dim=2, n_clusters=5, seed=3
        ).centers()
        # Every true center has a learned center within the noise scale.
        for t in truth:
            dists = np.linalg.norm(centers - t, axis=1)
            assert dists.min() < 2.0

    def test_sizes_sum_to_n(self):
        ctx = make_ctx()
        workload = KMeansWorkload(virtual_gb=1.0, physical_records=800, k=3)
        result = workload.run(ctx)
        assert sum(result.details["sizes"].values()) == result.details["n"]


class TestPCA:
    def test_stage_structure(self):
        ctx = make_ctx()
        workload = PCAWorkload(virtual_gb=2.0, physical_records=1200)
        workload.run(ctx)
        assert len(ctx.stage_stats) == workload.expected_stage_count() == 12

    def test_recovers_dominant_direction(self):
        ctx = make_ctx()
        workload = PCAWorkload(
            virtual_gb=1.0, physical_records=2500, dim=8, components=2,
        )
        result = workload.run(ctx)
        components = result.value
        assert components.shape == (2, 8)
        # Components are unit vectors.
        assert np.allclose(np.linalg.norm(components, axis=1), 1.0, atol=1e-6)
        # The intrinsic-dim mixing means a couple of components explain a
        # large share of variance.
        assert result.details["explained"] > 0.4

    def test_matches_numpy_pca(self):
        ctx = make_ctx()
        workload = PCAWorkload(
            virtual_gb=1.0, physical_records=2000, dim=6, components=1,
            power_iterations=5,
        )
        result = workload.run(ctx)
        v = result.value[0]
        from repro.workloads.datagen import PCADataGen

        gen = PCADataGen(
            virtual_bytes=workload.input_bytes,
            physical_records=workload.physical_records,
            dim=6, seed=workload.seed,
        )
        data = np.array(gen.rdd(ctx, 8).collect())
        centered = data - data.mean(axis=0)
        _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
        cosine = abs(float(v @ vt[0]))
        assert cosine > 0.99


class TestSQL:
    def test_matches_pure_python(self):
        ctx = make_ctx()
        workload = SQLWorkload(virtual_gb=2.0, physical_records=3000)
        result = workload.run(ctx)

        # Recompute the query in plain Python from the same generators.
        from repro.workloads.datagen import SQLTableGen

        gen = SQLTableGen(
            virtual_bytes=workload.input_bytes,
            physical_records=workload.physical_records,
            n_customers=workload.n_customers,
            n_regions=workload.n_regions,
            seed=workload.seed,
        )
        check_ctx = make_ctx()
        orders = gen.orders_rdd(check_ctx, 4).collect()
        customers = dict(gen.customers_rdd(check_ctx, 4).collect())
        revenue = {}
        for _oid, cust, _prod, amount in orders:
            region = customers[cust]
            revenue[region] = revenue.get(region, 0.0) + amount
        expected = sorted(revenue.items())
        assert dict(result.value) == pytest.approx(dict(expected))
        assert [r for r, _ in result.value] == [r for r, _ in expected]

    def test_sorted_output(self):
        ctx = make_ctx()
        result = SQLWorkload(virtual_gb=1.0, physical_records=1500).run(ctx)
        regions = [r for r, _ in result.value]
        assert regions == sorted(regions)

    def test_fixed_agg_variant_marks_user_fixed(self):
        ctx = make_ctx()
        SQLWorkload(
            virtual_gb=1.0, physical_records=1200, fixed_agg_partitions=13
        ).run(ctx)
        assert any(s.user_fixed for s in ctx.stage_stats)


class TestWordCount:
    def test_counts_match_python(self):
        ctx = make_ctx()
        workload = WordCountWorkload(
            virtual_gb=1.0, physical_records=400, top_n=5
        )
        result = workload.run(ctx)
        from repro.workloads.datagen import TextDataGen

        gen = TextDataGen(
            virtual_bytes=workload.input_bytes,
            physical_records=workload.physical_records,
            vocabulary=workload.vocabulary,
            seed=workload.seed,
        )
        lines = gen.rdd(make_ctx(), 4).collect()
        counts = {}
        for line in lines:
            for word in line.split():
                counts[word] = counts.get(word, 0) + 1
        expected_top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        assert result.value == expected_top


class TestPageRank:
    def test_ranks_sum_and_skew(self):
        ctx = make_ctx()
        workload = PageRankWorkload(
            virtual_gb=1.0, physical_records=3000, n_vertices=100,
            iterations=3, link_partitions=8,
        )
        result = workload.run(ctx)
        top = result.value
        assert len(top) == 10
        assert all(rank > 0 for _v, rank in top)
        # The quadratic destination skew favors low vertex ids.
        top_ids = [v for v, _ in top[:5]]
        assert min(top_ids) < 20

    def test_iterative_joins_are_copartitioned(self):
        """Links are hash-partitioned once; each iteration's join reads
        the links side without a shuffle."""
        ctx = make_ctx()
        PageRankWorkload(
            virtual_gb=1.0, physical_records=2000, n_vertices=50,
            iterations=2, link_partitions=8,
        ).run(ctx)
        # Shuffle-map stages: edges scan (1) + contrib aggregation per
        # iteration (2). No per-iteration links re-shuffle.
        map_stages = [s for s in ctx.stage_stats if s.kind == "shuffle_map"]
        assert len(map_stages) == 3


class TestScaling:
    def test_scale_shrinks_virtual_input(self):
        workload = KMeansWorkload(virtual_gb=4.0, physical_records=500)
        assert workload.virtual_bytes(0.25) == pytest.approx(
            workload.virtual_bytes(1.0) / 4
        )
        with pytest.raises(WorkloadError):
            workload.virtual_bytes(0.0)

    def test_scaled_run_is_faster(self):
        workload = KMeansWorkload(virtual_gb=4.0, physical_records=800)
        ctx_full = make_ctx()
        workload.run(ctx_full, scale=1.0)
        ctx_small = make_ctx()
        workload.run(ctx_small, scale=0.25)
        assert ctx_small.now < ctx_full.now

"""Tests for the synthetic data generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.common.units import GB
from repro.workloads.datagen import (
    EdgeDataGen,
    KMeansDataGen,
    PCADataGen,
    SQLTableGen,
    TextDataGen,
)


def collect_all(ctx, rdd):
    return rdd.collect()


class TestInvariantsAcrossSplits:
    """The dataset must be identical under any partition count."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 40))
    def test_kmeans_points_split_invariant(self, n_a, n_b):
        gen = KMeansDataGen(virtual_bytes=1e9, physical_records=200, dim=3)

        def dataset(n_splits):
            rows = []
            for split in range(n_splits):
                rows.extend(
                    tuple(v) for v in gen._gather(
                        split, n_splits, self._kmeans_block(gen), "kmeans"
                    )
                )
            return rows

        assert dataset(n_a) == dataset(n_b)

    @staticmethod
    def _kmeans_block(gen):
        centers = gen.centers()

        def block(b):
            n = gen._block_len(b)
            rng = gen._block_rng("kmeans", b)
            assignments = rng.integers(0, gen.n_clusters, size=n)
            noise = rng.normal(0.0, gen.spread, size=(n, gen.dim))
            return list(centers[assignments] + noise)

        return block

    def test_rdd_content_stable_under_resplit(self, ctx):
        gen = KMeansDataGen(virtual_bytes=1e9, physical_records=300, dim=4)
        rdd = gen.rdd(ctx, 4)
        before = sorted(tuple(v) for v in rdd.collect())
        rdd.set_num_partitions(11)
        after = sorted(tuple(v) for v in rdd.collect())
        assert before == after


class TestKMeansGen:
    def test_record_count_and_shape(self, ctx):
        gen = KMeansDataGen(virtual_bytes=1e9, physical_records=500, dim=7)
        points = gen.rdd(ctx, 5).collect()
        assert len(points) == 500
        assert all(p.shape == (7,) for p in points)

    def test_virtual_size_scales(self, ctx):
        gen = KMeansDataGen(virtual_bytes=10 * GB, physical_records=500)
        rdd = gen.rdd(ctx, 5)
        rdd.count()
        stage = ctx.job_stats[-1].stages[0]
        assert stage.input_bytes == pytest.approx(10 * GB, rel=0.25)

    def test_deterministic(self, ctx):
        gen = KMeansDataGen(virtual_bytes=1e9, physical_records=100, seed=5)
        a = gen.rdd(ctx, 3).collect()
        b = gen.rdd(ctx, 3).collect()
        assert all((x == y).all() for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            KMeansDataGen(virtual_bytes=0.0, physical_records=10)
        with pytest.raises(WorkloadError):
            KMeansDataGen(virtual_bytes=1e9, physical_records=0)


class TestSQLGen:
    def test_orders_schema(self, ctx):
        gen = SQLTableGen(virtual_bytes=1e9, physical_records=400)
        orders = gen.orders_rdd(ctx, 4).collect()
        assert len(orders) == 400
        order_ids = [o[0] for o in orders]
        assert len(set(order_ids)) == 400  # unique order ids
        assert all(0 <= o[1] < gen.n_customers for o in orders)
        assert all(o[3] >= 0 for o in orders)

    def test_customer_keys_are_hot(self, ctx):
        """Zipf skew: the most common customer dominates."""
        gen = SQLTableGen(virtual_bytes=1e9, physical_records=2000)
        orders = gen.orders_rdd(ctx, 4).collect()
        counts = {}
        for o in orders:
            counts[o[1]] = counts.get(o[1], 0) + 1
        top = max(counts.values())
        assert top > 5 * (len(orders) / gen.n_customers)

    def test_customers_one_record_per_id(self, ctx):
        gen = SQLTableGen(virtual_bytes=1e9, physical_records=400, n_customers=97)
        customers = gen.customers_rdd(ctx, 10).collect()
        assert sorted(c[0] for c in customers) == list(range(97))

    def test_customer_regions_split_invariant(self, ctx):
        gen = SQLTableGen(virtual_bytes=1e9, physical_records=400, n_customers=50)
        a = dict(gen.customers_rdd(ctx, 3).collect())
        b = dict(gen.customers_rdd(ctx, 7).collect())
        assert a == b


class TestOtherGens:
    def test_pca_rows(self, ctx):
        gen = PCADataGen(virtual_bytes=1e9, physical_records=300, dim=6)
        rows = gen.rdd(ctx, 4).collect()
        assert len(rows) == 300
        data = np.array(rows)
        # Correlated features: top singular values dominate.
        s = np.linalg.svd(data - data.mean(axis=0), compute_uv=False)
        assert s[0] > 3 * s[gen.intrinsic_dim]

    def test_text_lines(self, ctx):
        gen = TextDataGen(virtual_bytes=1e9, physical_records=200)
        lines = gen.rdd(ctx, 4).collect()
        assert len(lines) == 200
        assert all(len(line.split()) == gen.words_per_line for line in lines)

    def test_edges(self, ctx):
        gen = EdgeDataGen(virtual_bytes=1e9, physical_records=500, n_vertices=50)
        edges = gen.rdd(ctx, 4).collect()
        assert all(0 <= s < 50 and 0 <= d < 50 and s != d for s, d in edges)

"""Tests for the logistic-regression workload."""

import numpy as np

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import LogisticRegressionWorkload
from repro.workloads.datagen import LabeledDataGen


def make_ctx():
    return AnalyticsContext(
        uniform_cluster(n_workers=3, cores=8), EngineConf(default_parallelism=24)
    )


class TestGenerator:
    def test_labels_follow_true_weights(self, ctx):
        gen = LabeledDataGen(virtual_bytes=1e9, physical_records=600, dim=6)
        records = gen.rdd(ctx, 6).collect()
        truth = gen.true_weights()
        agree = sum(
            1 for x, y in records if (float(x @ truth) > 0) == bool(y)
        )
        assert agree / len(records) > 0.75  # noise keeps it below 1.0

    def test_labels_are_binary(self, ctx):
        gen = LabeledDataGen(virtual_bytes=1e9, physical_records=300)
        assert {y for _x, y in gen.rdd(ctx, 4).collect()} <= {0, 1}


class TestWorkload:
    def test_stage_structure(self):
        ctx = make_ctx()
        workload = LogisticRegressionWorkload(
            virtual_gb=1.0, physical_records=1000, iterations=4
        )
        workload.run(ctx)
        assert len(ctx.stage_stats) == workload.expected_stage_count() == 10
        # Iterations share a signature (same structure, broadcast weights).
        iter_sigs = {ctx.stage_stats[i].signature for i in (1, 3, 5, 7)}
        assert len(iter_sigs) == 1

    def test_learns_separating_direction(self):
        ctx = make_ctx()
        workload = LogisticRegressionWorkload(
            virtual_gb=1.0, physical_records=3000, dim=8, iterations=6
        )
        result = workload.run(ctx)
        truth = LabeledDataGen(
            virtual_bytes=1.0, physical_records=1, dim=8, seed=workload.seed
        ).true_weights()
        learned = result.value / np.linalg.norm(result.value)
        assert float(learned @ truth) > 0.95
        assert result.details["accuracy"] > 0.8

    def test_deterministic(self):
        def run():
            ctx = make_ctx()
            workload = LogisticRegressionWorkload(
                virtual_gb=1.0, physical_records=800, iterations=3
            )
            return workload.run(ctx).value

        assert np.allclose(run(), run())

    def test_chopper_pipeline_compatible(self):
        """The workload profiles, trains, and optimizes end to end."""
        from repro.chopper import ChopperRunner, improvement

        runner = ChopperRunner(
            LogisticRegressionWorkload(
                virtual_gb=4.0, physical_records=1200, iterations=3
            ),
            cluster_factory=lambda: uniform_cluster(n_workers=3, cores=8),
            base_conf=EngineConf(default_parallelism=48),
        )
        runner.profile(p_grid=(16, 48, 96, 160), scales=(1.0,))
        runner.train()
        vanilla, chopper = runner.compare()
        assert np.allclose(vanilla.result.value, chopper.result.value)
        assert improvement(vanilla, chopper) > -0.05

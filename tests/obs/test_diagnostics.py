"""Tests for the ledger analysis passes: skew, stragglers, drift, diff."""

from __future__ import annotations

import pytest

from repro.obs.diagnostics import (
    detect_stragglers,
    diff_runs,
    gini,
    max_mean,
    model_drift,
    partition_skew,
)


def make_stage(
    stage_run_id=0,
    name="stage",
    durations=(1.0, 1.0, 1.0, 1.0),
    input_bytes=None,
    partition_bytes=(),
    attempt=0,
):
    n = len(durations)
    if input_bytes is None:
        input_bytes = [100.0] * n
    return {
        "stage_run_id": stage_run_id,
        "name": name,
        "signature": f"sig-{name}",
        "kind": "shuffle_map" if partition_bytes else "result",
        "attempt": attempt,
        "num_partitions": n,
        "tasks": {
            "count": n,
            "index": list(range(n)),
            "node": [f"w{i % 3}" for i in range(n)],
            "duration": list(durations),
            "attempt": [0] * n,
            "speculative": [False] * n,
            "input_bytes": list(input_bytes),
            "records_out": [10] * n,
        },
        "output_partition_bytes": list(partition_bytes),
    }


def make_entry(stages, run_id="0000-w-run", wall_clock=10.0, **extra):
    entry = {
        "run_id": run_id,
        "workload": "w",
        "label": "run",
        "wall_clock": wall_clock,
        "stages": stages,
        "shuffle": {"local_bytes": 0.0, "remote_bytes": 0.0,
                    "write_bytes": 0.0},
    }
    entry.update(extra)
    return entry


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_total_concentration_approaches_one(self):
        assert gini([0.0] * 99 + [100.0]) == pytest.approx(0.99)

    def test_known_value(self):
        # G of [1, 2, 3, 4] = 2*(1+4+9+16)/(4*10) - 5/4 = 0.25
        assert gini([1.0, 2.0, 3.0, 4.0]) == pytest.approx(0.25)

    def test_order_invariant(self):
        assert gini([4.0, 1.0, 3.0, 2.0]) == gini([1.0, 2.0, 3.0, 4.0])

    def test_degenerate_inputs_read_uniform(self):
        assert gini([]) == 0.0
        assert gini([7.0]) == 0.0
        assert gini([0.0, 0.0]) == 0.0


class TestMaxMean:
    def test_balanced_is_one(self):
        assert max_mean([2.0, 2.0, 2.0]) == 1.0

    def test_hot_partition(self):
        assert max_mean([1.0, 1.0, 1.0, 5.0]) == pytest.approx(2.5)

    def test_empty_is_one(self):
        assert max_mean([]) == 1.0


class TestPartitionSkew:
    def test_balanced_run_not_flagged(self):
        entry = make_entry([make_stage(partition_bytes=[100.0] * 6)])
        assert not any(f.flagged for f in partition_skew(entry))

    def test_hot_partition_flagged_on_bytes(self):
        entry = make_entry(
            [make_stage(partition_bytes=[10.0, 10.0, 10.0, 10.0, 10.0, 500.0])]
        )
        flagged = [f for f in partition_skew(entry) if f.flagged]
        assert any(f.metric == "partition_bytes" for f in flagged)
        byte_finding = next(
            f for f in flagged if f.metric == "partition_bytes"
        )
        assert byte_finding.max_mean > 2.0
        assert byte_finding.n == 6

    def test_task_duration_skew_flagged(self):
        entry = make_entry(
            [make_stage(durations=(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 9.0))]
        )
        flagged = [f for f in partition_skew(entry) if f.flagged]
        assert any(f.metric == "task_duration" for f in flagged)

    def test_single_value_distributions_skipped(self):
        entry = make_entry([make_stage(durations=(1.0,), input_bytes=[1.0])])
        assert partition_skew(entry) == []

    def test_gini_catches_broad_imbalance(self):
        # Half the partitions empty: max/mean = 2 (not > 2.0) but Gini
        # flags the broad imbalance.
        entry = make_entry(
            [make_stage(partition_bytes=[0.0] * 5 + [10.0] * 5)]
        )
        finding = next(
            f for f in partition_skew(entry) if f.metric == "partition_bytes"
        )
        assert finding.max_mean == pytest.approx(2.0)
        assert finding.gini == pytest.approx(0.5)
        assert finding.flagged


class TestStragglers:
    def test_uniform_durations_quiet(self):
        entry = make_entry([make_stage(durations=(1.0,) * 8)])
        assert detect_stragglers(entry) == []

    def test_tail_task_detected_with_quantiles(self):
        durations = (1.0,) * 9 + (5.0,)
        entry = make_entry([make_stage(durations=durations)])
        findings = detect_stragglers(entry)
        assert len(findings) == 1
        f = findings[0]
        assert f.p50 == pytest.approx(1.0)
        assert f.p99 <= 5.0
        assert [o["task_index"] for o in f.outliers] == [9]
        assert f.outliers[0]["duration"] == 5.0

    def test_tight_distribution_not_flagged_by_multiplier_alone(self):
        # max is 1.3x the median: below the 2x threshold.
        entry = make_entry(
            [make_stage(durations=(1.0, 1.1, 1.0, 1.2, 1.1, 1.3))]
        )
        assert detect_stragglers(entry) == []

    def test_small_stages_skipped(self):
        entry = make_entry([make_stage(durations=(1.0, 99.0))])
        assert detect_stragglers(entry, min_tasks=4) == []

    def test_one_and_two_task_stages_never_flagged(self):
        # Regression: with 1-2 samples the quantiles collapse onto the
        # samples, so a permissive min_tasks used to flag any 2-task
        # stage whose halves differ. The detector now enforces an
        # effective minimum of 3 tasks regardless of min_tasks.
        for durations in [(99.0,), (1.0, 99.0), (0.5, 50.0)]:
            entry = make_entry([make_stage(durations=durations)])
            assert detect_stragglers(entry, min_tasks=1) == []
            assert detect_stragglers(
                entry, multiplier=1.0, min_tasks=1
            ) == []

    def test_three_task_stage_still_eligible(self):
        # The guard must not swallow genuine 3+-task stragglers.
        entry = make_entry([make_stage(durations=(1.0, 1.0, 9.0))])
        assert detect_stragglers(entry, min_tasks=1) != []
        entry = make_entry([make_stage(durations=(1.0,) * 19 + (9.0,))])
        assert detect_stragglers(entry) != []

    def test_outliers_sorted_worst_first(self):
        # Enough ordinary tasks that p95 sits below both tail tasks.
        durations = (1.0,) * 30 + (4.0, 8.0)
        entry = make_entry([make_stage(durations=durations)])
        outliers = detect_stragglers(entry)[0].outliers
        assert [o["duration"] for o in outliers] == [8.0, 4.0]


def eval_entry(rel_residual: float, signature="sig", actual=10.0):
    """An entry whose model_eval has one row at the given rel residual."""
    predicted = actual * (1.0 - rel_residual)
    return make_entry(
        [],
        model_eval={
            "per_stage": [
                {
                    "signature": signature,
                    "partitioner": "hash",
                    "P": 8,
                    "predicted_time": predicted,
                    "actual_time": actual,
                    "time_residual": actual - predicted,
                }
            ]
        },
    )


class TestModelDrift:
    def test_stable_residuals_not_flagged(self):
        entries = [eval_entry(0.01) for _ in range(5)]
        findings = model_drift(entries)
        assert len(findings) == 1
        assert not findings[0].flagged
        assert findings[0].slope == pytest.approx(0.0)

    def test_growing_residuals_flagged(self):
        entries = [eval_entry(0.1 * i) for i in range(5)]
        findings = model_drift(entries)
        assert findings[0].flagged
        assert findings[0].slope == pytest.approx(0.1)

    def test_large_constant_residual_flagged(self):
        entries = [eval_entry(0.8) for _ in range(4)]
        findings = model_drift(entries)
        assert findings[0].flagged
        assert findings[0].mean_abs_rel_residual == pytest.approx(0.8)

    def test_too_few_runs_skipped(self):
        assert model_drift([eval_entry(0.9), eval_entry(0.9)]) == []

    def test_entries_without_eval_ignored(self):
        entries = [make_entry([])] + [eval_entry(0.01) for _ in range(3)]
        findings = model_drift(entries)
        assert len(findings) == 1
        assert findings[0].n_runs == 3


def timed_entry(run_id, wall, shuffle_write=100.0):
    return make_entry(
        [],
        run_id=run_id,
        wall_clock=wall,
        shuffle={"local_bytes": 30.0, "remote_bytes": 20.0,
                 "write_bytes": shuffle_write},
    )


class TestDiffRuns:
    def test_identical_runs_ok(self):
        a = timed_entry("0000-w-a", 10.0)
        b = timed_entry("0001-w-b", 10.0)
        diff = diff_runs(a, b)
        assert diff.ok
        assert diff.time_delta == 0.0
        assert diff.regressions == []

    def test_improvement_never_flags(self):
        diff = diff_runs(
            timed_entry("a", 10.0, 200.0), timed_entry("b", 5.0, 50.0)
        )
        assert diff.ok
        assert diff.time_delta == pytest.approx(-0.5)

    def test_wall_clock_regression_beyond_threshold_flags(self):
        diff = diff_runs(timed_entry("a", 10.0), timed_entry("b", 12.5))
        assert not diff.ok
        assert "wall clock" in diff.regressions[0]

    def test_regression_within_threshold_ok(self):
        diff = diff_runs(timed_entry("a", 10.0), timed_entry("b", 11.9))
        assert diff.ok

    def test_shuffle_regression_flags(self):
        diff = diff_runs(
            timed_entry("a", 10.0, 100.0), timed_entry("b", 10.0, 150.0)
        )
        assert not diff.ok
        assert "shuffle" in diff.regressions[0]

    def test_shuffle_threshold_defaults_to_time_threshold(self):
        a = timed_entry("a", 10.0, 100.0)
        b = timed_entry("b", 10.0, 130.0)
        assert not diff_runs(a, b, time_threshold=0.2).ok
        assert diff_runs(a, b, time_threshold=0.4).ok

    def test_shuffle_uses_max_of_read_and_write(self):
        # read = 50, write = 100 -> total is the max (the paper's metric).
        diff = diff_runs(timed_entry("a", 10.0), timed_entry("b", 10.0))
        assert diff.shuffle_a == 100.0

    def test_zero_baseline_never_divides(self):
        a = make_entry(
            [],
            run_id="a",
            wall_clock=0.0,
            shuffle={"local_bytes": 0.0, "remote_bytes": 0.0,
                     "write_bytes": 0.0},
        )
        diff = diff_runs(a, timed_entry("b", 5.0))
        assert diff.time_delta == 0.0
        assert diff.shuffle_delta == 0.0
        assert diff.ok

    def test_to_dict_round_trips(self):
        diff = diff_runs(timed_entry("a", 10.0), timed_entry("b", 12.5))
        payload = diff.to_dict()
        assert payload["ok"] is False
        assert payload["run_a"] == "a"

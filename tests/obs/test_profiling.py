"""Tests for real-resource profiling (repro.obs.profiling)."""

import json

from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.obs import ResourceProfiler, profiling_enabled
from repro.workloads import WordCountWorkload


class TestProfilingEnabled:
    def test_flag_wins(self):
        assert profiling_enabled(True) is True

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profiling_enabled() is False
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profiling_enabled() is True
        monkeypatch.setenv("REPRO_PROFILE", "off")
        assert profiling_enabled() is False


class TestProbes:
    def test_task_probe_aggregates_per_stage(self):
        profiler = ResourceProfiler()
        profiler.start()
        try:
            for _ in range(3):
                with profiler.task_probe("map#0"):
                    sum(range(10_000))
            with profiler.task_probe("reduce#1"):
                held = [0] * 50_000
            assert len(held) == 50_000
        finally:
            profiler.stop()
        rolled = profiler.rollup()
        assert rolled["stages"]["map#0"]["tasks"] == 3
        assert rolled["stages"]["map#0"]["wall_s"] > 0
        assert rolled["stages"]["reduce#1"]["tasks"] == 1
        assert rolled["stages"]["reduce#1"]["alloc_bytes"] > 0

    def test_probe_is_null_when_stopped(self):
        profiler = ResourceProfiler()
        with profiler.task_probe("map#0"):
            pass
        assert profiler.rollup()["stages"] == {}

    def test_host_rollup_shape(self):
        profiler = ResourceProfiler()
        profiler.start()
        profiler.stop()
        host = profiler.rollup()["host"]
        assert host["wall_s"] >= 0
        assert host["cpu_s"] >= 0
        assert set(host["gc"]) == {"collections", "pause_s", "max_pause_s"}

    def test_rollup_is_json_ready_and_sorted(self):
        profiler = ResourceProfiler()
        profiler.start()
        try:
            with profiler.task_probe("b"):
                pass
            with profiler.task_probe("a"):
                pass
        finally:
            profiler.stop()
        rolled = profiler.rollup()
        json.dumps(rolled)
        assert list(rolled["stages"]) == ["a", "b"]


class TestMerge:
    def test_merge_accumulates_stages_and_host(self):
        src = ResourceProfiler()
        src.start()
        try:
            with src.task_probe("map#0"):
                sum(range(1000))
        finally:
            src.stop()
        rolled = src.rollup()
        sink = ResourceProfiler()
        sink.merge(rolled)
        sink.merge(rolled)
        merged = sink.rollup()
        assert merged["stages"]["map#0"]["tasks"] == 2
        assert merged["host"]["wall_s"] == 2 * rolled["host"]["wall_s"]
        assert (
            merged["host"]["tracemalloc_peak_bytes"]
            == rolled["host"]["tracemalloc_peak_bytes"]
        )


class TestEngineIntegration:
    def test_profiler_never_changes_simulated_results(self):
        def run(profiler):
            ctx = AnalyticsContext(
                paper_cluster(),
                EngineConf(default_parallelism=8),
                profiler=profiler,
            )
            workload = WordCountWorkload(physical_records=2000)
            result = workload.run(ctx, scale=0.02)
            stats = [
                (s.name, s.duration, s.shuffle_bytes) for s in ctx.stage_stats
            ]
            ctx.close()
            return result.value, ctx.now, stats

        plain = run(None)
        profiler = ResourceProfiler()
        profiler.start()
        profiled = run(profiler)
        profiler.stop()
        assert plain == profiled
        rolled = profiler.rollup()
        assert rolled["stages"]  # every stage got task probes
        assert sum(s["tasks"] for s in rolled["stages"].values()) > 0

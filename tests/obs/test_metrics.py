"""Tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("tasks")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("tasks").inc(-1)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("bytes", node="n1").inc(10)
        reg.counter("bytes", node="n2").inc(5)
        assert reg.counter_value("bytes", node="n1") == 10
        assert reg.counter_value("bytes", node="n2") == 5

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)
        assert reg.counter("x", a=1) is not reg.counter("x", a=2)

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        assert reg.counter("x", b=2, a=1).value == 1

    def test_counter_value_sums_labels_when_unlabeled(self):
        reg = MetricsRegistry()
        reg.counter("bytes", node="n1").inc(10)
        reg.counter("bytes", node="n2").inc(5)
        assert reg.counter_value("bytes") == 15

    def test_counter_value_missing_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0

    def test_counter_labels_lists_series(self):
        reg = MetricsRegistry()
        reg.counter("bytes", node="n1").inc()
        reg.counter("bytes", node="n2").inc(2)
        labels = reg.counter_labels("bytes")
        assert labels == {(("node", "n1"),): 1.0, (("node", "n2"),): 2.0}


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4
        assert reg.gauge_value("depth") == 4


class TestHistogram:
    def test_observe_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        stats = h.to_dict()
        assert stats["count"] == 3
        assert stats["sum"] == 6.0
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0

    def test_empty_histogram_has_null_extremes(self):
        stats = MetricsRegistry().histogram("wait").to_dict()
        assert stats["count"] == 0
        assert stats["min"] is None and stats["max"] is None


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", node="n1").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == [{"labels": {"node": "n1"}, "value": 2.0}]
        assert snap["gauges"]["g"][0]["value"] == 7
        assert snap["histograms"]["h"][0]["count"] == 1

    def test_save_round_trips_through_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = tmp_path / "m.json"
        reg.save(str(path))
        assert json.loads(path.read_text()) == reg.snapshot()

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

"""Tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("tasks")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("tasks").inc(-1)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("bytes", node="n1").inc(10)
        reg.counter("bytes", node="n2").inc(5)
        assert reg.counter_value("bytes", node="n1") == 10
        assert reg.counter_value("bytes", node="n2") == 5

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)
        assert reg.counter("x", a=1) is not reg.counter("x", a=2)

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        assert reg.counter("x", b=2, a=1).value == 1

    def test_counter_value_sums_labels_when_unlabeled(self):
        reg = MetricsRegistry()
        reg.counter("bytes", node="n1").inc(10)
        reg.counter("bytes", node="n2").inc(5)
        assert reg.counter_value("bytes") == 15

    def test_counter_value_missing_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0

    def test_counter_labels_lists_series(self):
        reg = MetricsRegistry()
        reg.counter("bytes", node="n1").inc()
        reg.counter("bytes", node="n2").inc(2)
        labels = reg.counter_labels("bytes")
        assert labels == {(("node", "n1"),): 1.0, (("node", "n2"),): 2.0}


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4
        assert reg.gauge_value("depth") == 4


class TestHistogram:
    def test_observe_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        stats = h.to_dict()
        assert stats["count"] == 3
        assert stats["sum"] == 6.0
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0

    def test_empty_histogram_has_null_extremes(self):
        stats = MetricsRegistry().histogram("wait").to_dict()
        assert stats["count"] == 0
        assert stats["min"] is None and stats["max"] is None


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", node="n1").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == [{"labels": {"node": "n1"}, "value": 2.0}]
        assert snap["gauges"]["g"][0]["value"] == 7
        assert snap["histograms"]["h"][0]["count"] == 1

    def test_save_round_trips_through_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = tmp_path / "m.json"
        reg.save(str(path))
        assert json.loads(path.read_text()) == reg.snapshot()

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestHistogramQuantile:
    def test_quantiles_on_known_distribution(self):
        h = MetricsRegistry().histogram("d")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.95) == pytest.approx(95.05)
        assert h.quantile(0.99) == pytest.approx(99.01)

    def test_interpolates_between_samples(self):
        h = MetricsRegistry().histogram("d")
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.25) == pytest.approx(2.5)

    def test_single_sample(self):
        h = MetricsRegistry().histogram("d")
        h.observe(42.0)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == 42.0

    def test_empty_histogram_is_zero(self):
        assert MetricsRegistry().histogram("d").quantile(0.5) == 0.0

    def test_unsorted_observation_order_is_irrelevant(self):
        a = MetricsRegistry().histogram("d")
        b = MetricsRegistry().histogram("d")
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for v in values:
            a.observe(v)
        for v in sorted(values):
            b.observe(v)
        assert a.quantile(0.5) == b.quantile(0.5) == 5.0

    def test_observing_after_quantile_is_seen(self):
        h = MetricsRegistry().histogram("d")
        h.observe(1.0)
        assert h.quantile(1.0) == 1.0
        h.observe(10.0)
        assert h.quantile(1.0) == 10.0

    def test_out_of_range_q_rejected(self):
        h = MetricsRegistry().histogram("d")
        h.observe(1.0)
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)
        with pytest.raises(ConfigurationError):
            h.quantile(-0.1)

    def test_to_dict_includes_quantiles(self):
        h = MetricsRegistry().histogram("d")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        stats = h.to_dict()
        assert stats["p50"] == 2.0
        assert stats["p95"] == pytest.approx(2.9)
        assert stats["p99"] == pytest.approx(2.98)

    def test_empty_to_dict_has_null_quantiles(self):
        stats = MetricsRegistry().histogram("d").to_dict()
        assert stats["p50"] is None and stats["p95"] is None


class TestSnapshotDeterminism:
    def test_counter_labels_sorted_regardless_of_touch_order(self):
        a = MetricsRegistry()
        a.counter("x", node="n2").inc(2)
        a.counter("x", node="n1").inc(1)
        b = MetricsRegistry()
        b.counter("x", node="n1").inc(1)
        b.counter("x", node="n2").inc(2)
        assert list(a.counter_labels("x")) == list(b.counter_labels("x"))

    def test_snapshot_byte_identical_across_touch_orders(self):
        def populate(reg, order):
            for node in order:
                reg.counter("shuffle.remote_bytes", src=node).inc(5)
                reg.histogram("wait", node=node).observe(1.0)
            reg.gauge("depth").set(3)

        a, b = MetricsRegistry(), MetricsRegistry()
        populate(a, ["n1", "n2", "n3"])
        populate(b, ["n3", "n1", "n2"])
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )

    def test_snapshot_byte_identical_serial_vs_threaded_run(self):
        # The regression this guards: a threaded engine run touches metric
        # series in a nondeterministic order; the exported snapshot must
        # not care (REPRO_PHYSICAL_PARALLELISM > 1 stays byte-identical).
        from repro.cluster import paper_cluster
        from repro.engine import AnalyticsContext, EngineConf
        from repro.workloads import WordCountWorkload

        def snapshot_bytes(par: int) -> str:
            reg = MetricsRegistry()
            ctx = AnalyticsContext(
                paper_cluster(),
                EngineConf(physical_parallelism=par, default_parallelism=10),
                metrics_registry=reg,
            )
            WordCountWorkload().run(ctx, scale=0.05)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert snapshot_bytes(1) == snapshot_bytes(4)


class TestFiniteGuards:
    def test_counter_rejects_nan_and_inf(self):
        c = MetricsRegistry().counter("x")
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                c.inc(bad)
        assert c.value == 0.0

    def test_gauge_rejects_nan_and_inf(self):
        g = MetricsRegistry().gauge("x")
        with pytest.raises(ConfigurationError):
            g.set(float("nan"))
        with pytest.raises(ConfigurationError):
            g.inc(float("inf"))
        with pytest.raises(ConfigurationError):
            g.dec(float("-inf"))
        assert g.value == 0.0

    def test_histogram_rejects_nan_and_inf(self):
        h = MetricsRegistry().histogram("x")
        for bad in (float("nan"), float("-inf")):
            with pytest.raises(ConfigurationError):
                h.observe(bad)
        assert h.count == 0


class TestHistogramRetention:
    def test_exact_stats_survive_the_cap(self):
        from repro.obs.metrics import Histogram

        h = Histogram("d", retention_cap=100)
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.count == 1000
        assert h.total == 500500.0
        assert h.min == 1.0 and h.max == 1000.0
        assert h.capped
        assert len(h.to_dict()) >= 5  # quantiles become estimates

    def test_reservoir_is_name_seeded_and_deterministic(self):
        from repro.obs.metrics import Histogram

        def fill(name):
            h = Histogram(name, retention_cap=50)
            for v in range(1000):
                h.observe(float(v))
            return h

        assert fill("a").to_dict() == fill("a").to_dict()
        assert fill("a").to_dict()["p50"] != fill("b").to_dict()["p50"]

    def test_below_cap_quantiles_stay_exact(self):
        from repro.obs.metrics import Histogram

        h = Histogram("d", retention_cap=200)
        for v in range(1, 101):
            h.observe(float(v))
        assert not h.capped
        assert h.quantile(0.5) == pytest.approx(50.5)

    def test_cap_must_be_positive(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ConfigurationError):
            Histogram("d", retention_cap=0)


class TestCounterTotal:
    def test_unlabeled_total_is_authoritative(self):
        # The engine convention: labeled series decompose a maintained
        # unlabeled total; summing everything would double-count.
        reg = MetricsRegistry()
        reg.counter("shuffle.write_bytes").inc(100)
        reg.counter("shuffle.write_bytes", node="A").inc(60)
        reg.counter("shuffle.write_bytes", node="B").inc(40)
        assert reg.counter_total("shuffle.write_bytes") == 100

    def test_labeled_only_sums_in_sorted_order(self):
        a = MetricsRegistry()
        a.counter("x", n="1").inc(0.1)
        a.counter("x", n="2").inc(0.2)
        b = MetricsRegistry()
        b.counter("x", n="2").inc(0.2)
        b.counter("x", n="1").inc(0.1)
        assert a.counter_total("x") == b.counter_total("x")

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_total("nope") == 0.0


class TestDumpMergeState:
    def test_merge_reproduces_source_registry(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        src.counter("c", node="A").inc(3)
        src.gauge("g").set(7)
        for v in (1.0, 2.0, 3.0):
            src.histogram("h").observe(v)
        dst = MetricsRegistry()
        dst.merge_state(src.dump_state())
        assert json.dumps(dst.snapshot(), sort_keys=True) == json.dumps(
            src.snapshot(), sort_keys=True
        )

    def test_merge_accumulates_counters_and_histograms(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        src.histogram("h").observe(1.0)
        dst = MetricsRegistry()
        dst.merge_state(src.dump_state())
        dst.merge_state(src.dump_state())
        assert dst.counter_total("c") == 10
        assert dst.histogram("h").count == 2

    def test_extra_labels_relabel_every_series(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        src.counter("c", node="A").inc(3)
        dst = MetricsRegistry()
        dst.merge_state(src.dump_state(), extra_labels={"worker": "w1"})
        assert dst.counter_value("c", worker="w1") == 5
        assert dst.counter_value("c", node="A", worker="w1") == 3

    def test_merged_capped_histogram_keeps_exact_count_and_sum(self):
        from repro.obs.metrics import Histogram

        src = MetricsRegistry()
        h = Histogram("h", retention_cap=10)
        src._histograms["h"] = {(): h}
        for v in range(1, 101):
            h.observe(float(v))
        dst = MetricsRegistry()
        dst.merge_state(src.dump_state())
        merged = dst.histogram("h")
        assert merged.count == 100
        assert merged.total == 5050.0
        assert merged.min == 1.0 and merged.max == 100.0


class TestPrometheusShortcut:
    def test_registry_to_prometheus_validates(self):
        from repro.obs.export import validate_prometheus

        reg = MetricsRegistry()
        reg.counter("tasks", node="A").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("wait").observe(0.5)
        assert validate_prometheus(reg.to_prometheus()) > 0

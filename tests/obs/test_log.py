"""Tests for the structured event log (repro.obs.log)."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.obs import DEBUG, ERROR, INFO, WARNING, EventLog
from repro.obs.log import filter_records, format_record, load_records


class TestEmit:
    def test_records_carry_seq_time_and_fields(self):
        log = EventLog()
        log.emit(INFO, "executor", "task_executed", stage="s0", partition=3)
        (record,) = log.records
        assert record["seq"] == 0
        assert record["t"] == 0.0
        assert record["level"] == "INFO"
        assert record["logger"] == "executor"
        assert record["event"] == "task_executed"
        assert record["stage"] == "s0"
        assert record["partition"] == 3

    def test_seq_is_monotone(self):
        log = EventLog()
        for i in range(5):
            log.emit(DEBUG, "t", "e", i=i)
        assert [r["seq"] for r in log.records] == list(range(5))

    def test_clock_stamps_timestamps(self):
        now = [0.0]
        log = EventLog(clock=lambda: now[0])
        log.emit(INFO, "t", "a")
        now[0] = 2.5
        log.emit(INFO, "t", "b")
        assert [r["t"] for r in log.records] == [0.0, 2.5]

    def test_bind_clock_rebinds(self):
        log = EventLog()
        log.emit(INFO, "t", "a")
        log.bind_clock(lambda: 7.0)
        log.emit(INFO, "t", "b")
        assert [r["t"] for r in log.records] == [0.0, 7.0]

    def test_unknown_level_rejected(self):
        log = EventLog()
        with pytest.raises(ConfigurationError):
            log.emit("LOUD", "t", "e")

    def test_none_fields_dropped(self):
        log = EventLog()
        log.emit(INFO, "t", "e", kept=0, dropped=None)
        assert "dropped" not in log.records[0]
        assert log.records[0]["kept"] == 0


class TestBind:
    def test_bound_fields_appear_on_every_record(self):
        log = EventLog()
        log.bind(run="vanilla")
        log.emit(INFO, "t", "a")
        log.emit(INFO, "t", "b")
        assert all(r["run"] == "vanilla" for r in log.records)

    def test_rebinding_overwrites(self):
        log = EventLog()
        log.bind(run="one")
        log.emit(INFO, "t", "a")
        log.bind(run="two")
        log.emit(INFO, "t", "b")
        assert [r["run"] for r in log.records] == ["one", "two"]

    def test_binding_none_unbinds(self):
        log = EventLog()
        log.bind(run="one")
        log.bind(run=None)
        log.emit(INFO, "t", "a")
        assert "run" not in log.records[0]

    def test_record_field_wins_over_bound(self):
        log = EventLog()
        log.bind(stage="bound")
        log.emit(INFO, "t", "e", stage="explicit")
        assert log.records[0]["stage"] == "explicit"


class TestExtend:
    def test_restamps_seq_and_tags_worker(self):
        log = EventLog()
        log.emit(INFO, "t", "local")
        shipped = [
            {"seq": 0, "t": 1.0, "level": "INFO", "logger": "w", "event": "a"},
            {"seq": 1, "t": 2.0, "level": "INFO", "logger": "w", "event": "b"},
        ]
        log.extend(shipped, worker="w0")
        assert [r["seq"] for r in log.records] == [0, 1, 2]
        assert log.records[1]["worker"] == "w0"
        assert log.records[2]["worker"] == "w0"
        assert "worker" not in log.records[0]

    def test_extend_without_worker_adds_no_field(self):
        log = EventLog()
        log.extend([{"seq": 9, "t": 0.0, "level": "INFO",
                     "logger": "w", "event": "a"}])
        assert log.records[0]["seq"] == 0
        assert "worker" not in log.records[0]


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        log = EventLog()
        log.emit(INFO, "t", "a", n=1)
        log.emit(WARNING, "t", "b", n=2)
        path = str(tmp_path / "run.log")
        log.save(path)
        assert load_records(path) == log.records

    def test_save_is_sorted_jsonl(self, tmp_path):
        log = EventLog()
        log.emit(INFO, "t", "a", zz=1, aa=2)
        path = str(tmp_path / "run.log")
        log.save(path)
        line = open(path, encoding="utf-8").read().strip()
        assert json.loads(line)["zz"] == 1
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_load_rejects_bad_json_with_location(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text('{"seq": 0}\nnot json\n')
        with pytest.raises(ConfigurationError, match="2"):
            load_records(str(path))


class TestFilterAndFormat:
    def _records(self):
        log = EventLog()
        log.emit(DEBUG, "executor", "task_executed", stage="s0", node="A")
        log.emit(INFO, "dag", "stage_completed", stage="s0")
        log.emit(WARNING, "scheduler", "task_retry", stage="s1", node="B")
        log.emit(ERROR, "scheduler", "node_lost", node="B")
        return log.records

    def test_level_is_a_minimum(self):
        records = filter_records(self._records(), level=WARNING)
        assert [r["event"] for r in records] == ["task_retry", "node_lost"]

    def test_stage_and_node_filters(self):
        records = self._records()
        assert len(filter_records(records, stage="s0")) == 2
        assert len(filter_records(records, node="B")) == 2
        assert len(filter_records(records, stage="s1", node="B")) == 1

    def test_event_and_tail(self):
        records = self._records()
        assert len(filter_records(records, event="task_retry")) == 1
        assert [r["event"] for r in filter_records(records, tail=2)] == [
            "task_retry", "node_lost",
        ]

    def test_format_is_one_line_and_keyed(self):
        (record,) = filter_records(self._records(), event="task_retry")
        line = format_record(record)
        assert "\n" not in line
        assert "WARNING" in line
        assert "task_retry" in line
        assert "stage=s1" in line

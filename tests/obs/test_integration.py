"""End-to-end tracing/metrics tests against the real engine."""

from __future__ import annotations

import collections

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.obs import MetricsRegistry, Tracer


def quiet_conf(parallelism=8):
    cost = CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0)
    return EngineConf(default_parallelism=parallelism, cost=cost)


def shuffle_job(ctx):
    pairs = ctx.parallelize([(i % 13, 1) for i in range(8000)], 8)
    return pairs.reduce_by_key(lambda a, b: a + b, 6).collect_as_map()


class TestEngineTracing:
    def run_traced(self):
        ctx = AnalyticsContext(uniform_cluster(n_workers=3, cores=2), quiet_conf())
        tracer = Tracer()
        ctx.obs.set_tracer(tracer)
        out = shuffle_job(ctx)
        return ctx, tracer, out

    def test_job_stage_task_spans_present(self):
        ctx, tracer, out = self.run_traced()
        assert out == {k: len(range(k, 8000, 13)) for k in range(13)}
        cats = collections.Counter(e.cat for e in tracer.events)
        assert cats["job"] == 1
        assert cats["stage"] == 2  # map + reduce
        assert cats["task"] == 8 + 6
        assert cats["task.phase"] > 0

    def test_span_times_within_run(self):
        ctx, tracer, _ = self.run_traced()
        for event in tracer.events:
            assert 0.0 <= event.start <= event.end <= ctx.now + 1e-9

    def test_task_concurrency_never_exceeds_cores(self):
        ctx, tracer, _ = self.run_traced()
        doc = tracer.to_chrome()
        lanes = collections.defaultdict(set)
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for e in doc["traceEvents"]:
            if e["ph"] == "X" and e["cat"] == "task":
                lanes[e["pid"]].add(e["tid"])
        cores = {w.name: w.cores for w in ctx.cluster.workers}
        assert lanes, "no task spans exported"
        for pid, tids in lanes.items():
            assert len(tids) <= cores[names[pid]]

    def test_task_span_args_identify_attempt(self):
        _, tracer, _ = self.run_traced()
        task = next(e for e in tracer.events if e.cat == "task")
        for field in ("stage_run_id", "partition", "attempt", "speculative", "outcome"):
            assert field in task.args
        assert task.args["outcome"] == "ok"

    def test_stage_span_args_describe_partitioning(self):
        _, tracer, _ = self.run_traced()
        by_name = {e.name: e for e in tracer.events if e.cat == "stage"}
        assert len(by_name) == 2
        for event in by_name.values():
            assert event.args["P"] in (8, 6)
            assert event.args["partitioner"] in ("hash", None)

    def test_tracing_does_not_change_simulated_time(self):
        plain = AnalyticsContext(uniform_cluster(n_workers=3, cores=2), quiet_conf())
        out_plain = shuffle_job(plain)
        ctx, _, out_traced = self.run_traced()
        assert out_plain == out_traced
        assert plain.now == ctx.now


class TestEngineMetrics:
    def test_shuffle_byte_counters(self):
        registry = MetricsRegistry()
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=3, cores=2),
            quiet_conf(),
            metrics_registry=registry,
        )
        shuffle_job(ctx)
        local = registry.counter_value("shuffle.local_bytes")
        remote = registry.counter_value("shuffle.remote_bytes")
        written = registry.counter_value("shuffle.write_bytes")
        assert local > 0 and remote > 0
        # Reducers fetch exactly what the mappers registered.
        assert abs((local + remote) - written) < 1e-6 * written
        # Remote bytes are attributed to source nodes.
        srcs = {dict(k).get("src") for k in registry.counter_labels(
            "shuffle.remote_bytes") if k}
        assert len(srcs) >= 2

    def test_queue_wait_histogram_populated(self):
        registry = MetricsRegistry()
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=2, cores=2),
            quiet_conf(parallelism=16),
            metrics_registry=registry,
        )
        ctx.parallelize(list(range(4000)), 16).map(lambda x: x * 2).collect()
        hist = registry.histogram("scheduler.queue_wait_seconds")
        # 16 tasks on 4 cores: most attempts waited in the queue.
        assert hist.count == 16
        assert hist.max > 0.0

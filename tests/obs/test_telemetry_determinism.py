"""Telemetry must never change results, and must itself be deterministic.

The two contracts this file pins down:

* **Identity of results** — simulated outcomes, workload DBs, and ledger
  run ids are byte-identical with logging/profiling on or off, including
  chaos and AQE runs (profile fields are excluded from entry identity by
  dropping the ``profile`` key, which is the only key telemetry adds).
* **Identity of telemetry** — metric snapshots and event logs are
  byte-identical across serial, threaded (REPRO_PHYSICAL_PARALLELISM=4),
  and process-pool sweeps, modulo the ``worker`` attribution that only
  pool dispatch adds.
"""

import dataclasses
import json

import pytest

from repro.chopper import ChopperRunner
from repro.chopper import parallel as par
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.obs import EventLog, MetricsRegistry, ResourceProfiler, RunLedger
from repro.workloads import ShuffleWordCountWorkload, WordCountWorkload


def _strip_worker_series(snapshot):
    return {
        family: {
            name: [s for s in series if "worker" not in s["labels"]]
            for name, series in instruments.items()
        }
        for family, instruments in snapshot.items()
    }


def _strip_worker_field(records):
    return [
        {k: v for k, v in record.items() if k != "worker"}
        for record in records
    ]


def _sweep(jobs):
    runner = ChopperRunner(
        WordCountWorkload(physical_records=2000),
        base_conf=EngineConf(default_parallelism=8),
    )
    runner.metrics_registry = MetricsRegistry()
    runner.event_log = EventLog()
    runner.profile(p_grid=(4, 8), scales=(0.02,), jobs=jobs)
    return runner


def _db_dump(runner):
    return json.dumps(
        [
            dataclasses.asdict(o)
            for o in runner.db.observations(runner.workload.name)
        ],
        sort_keys=True,
        default=str,
    )


class TestCrossModeTelemetryIdentity:
    def test_serial_vs_threads_vs_procs(self, monkeypatch):
        serial = _sweep(jobs=1)

        monkeypatch.setenv("REPRO_PHYSICAL_PARALLELISM", "4")
        threads = _sweep(jobs=1)
        monkeypatch.delenv("REPRO_PHYSICAL_PARALLELISM")

        monkeypatch.setenv("REPRO_POOL_FORCE", "1")
        procs = _sweep(jobs=4)
        assert par.last_dispatch == "pool"

        base_snap = json.dumps(
            serial.metrics_registry.snapshot(), sort_keys=True
        )
        base_log = json.dumps(serial.event_log.records)
        for other in (threads, procs):
            assert (
                json.dumps(
                    _strip_worker_series(other.metrics_registry.snapshot()),
                    sort_keys=True,
                )
                == base_snap
            )
            assert (
                json.dumps(_strip_worker_field(other.event_log.records))
                == base_log
            )
            assert _db_dump(other) == _db_dump(serial)
        # The serial sweep has no worker attribution to strip.
        assert json.dumps(
            _strip_worker_series(serial.metrics_registry.snapshot()),
            sort_keys=True,
        ) == base_snap

    def test_procs_sweep_repeats_byte_identically(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_FORCE", "1")
        first = _sweep(jobs=4)
        second = _sweep(jobs=4)
        assert json.dumps(
            first.metrics_registry.snapshot(), sort_keys=True
        ) == json.dumps(second.metrics_registry.snapshot(), sort_keys=True)
        assert json.dumps(first.event_log.records) == json.dumps(
            second.event_log.records
        )


class TestTelemetryNeverChangesResults:
    def _run(self, conf_kwargs, telemetry, scale=0.02, skew=None):
        kwargs = {"physical_records": 2000}
        if skew is not None:
            kwargs["skew"] = skew
        workload = ShuffleWordCountWorkload(**kwargs)
        ctx = AnalyticsContext(
            paper_cluster(),
            EngineConf(default_parallelism=8, **conf_kwargs),
            event_log=EventLog() if telemetry else None,
            profiler=None,
            metrics_registry=MetricsRegistry() if telemetry else None,
        )
        profiler = None
        if telemetry:
            profiler = ResourceProfiler()
            profiler.start()
            ctx.obs.set_profiler(profiler)
        result = workload.run(ctx, scale=scale)
        stats = [
            (s.name, s.duration, s.shuffle_bytes, s.num_partitions)
            for s in ctx.stage_stats
        ]
        now = ctx.now
        if profiler is not None:
            profiler.stop()
        ctx.close()
        return result.value, now, stats

    def test_plain_run(self):
        assert self._run({}, False) == self._run({}, True)

    def test_aqe_run(self):
        conf = {"adaptive_execution": True, "aqe_target_partition_bytes": 4096.0}
        assert self._run(conf, False, skew=1.9) == self._run(
            conf, True, skew=1.9
        )

    def test_chaos_run(self):
        conf = {"node_failure_times": {"A": 5.0}, "node_recovery_delay": 30.0}
        assert self._run(conf, False) == self._run(conf, True)


class TestLedgerIdentity:
    def _ledger_entries(self, tmp_path, name, telemetry):
        runner = ChopperRunner(
            WordCountWorkload(physical_records=2000),
            base_conf=EngineConf(default_parallelism=8),
        )
        ledger = RunLedger(str(tmp_path / name))
        runner.ledger = ledger
        if telemetry:
            runner.event_log = EventLog()
            runner.metrics_registry = MetricsRegistry()
            runner.profiler = ResourceProfiler()
        runner.run_vanilla(scale=0.02)
        return ledger.entries()

    def test_run_ids_and_entries_identical_modulo_profile(self, tmp_path):
        plain = self._ledger_entries(tmp_path, "plain.jsonl", False)
        telem = self._ledger_entries(tmp_path, "telem.jsonl", True)
        assert [e["run_id"] for e in plain] == [e["run_id"] for e in telem]
        for a, b in zip(plain, telem):
            b = dict(b)
            profile = b.pop("profile")
            # The profile payload is the one telemetry-only key, and it
            # is real-host data, not simulated state.
            assert profile["host"]["wall_s"] > 0
            assert json.dumps(a, sort_keys=True) == json.dumps(
                b, sort_keys=True
            )


class TestProfileTelemetryExclusion:
    def test_profiled_sweep_metrics_and_logs_match_unprofiled(self):
        with_profile = ChopperRunner(
            WordCountWorkload(physical_records=2000),
            base_conf=EngineConf(default_parallelism=8),
        )
        with_profile.metrics_registry = MetricsRegistry()
        with_profile.event_log = EventLog()
        with_profile.profiler = ResourceProfiler()
        with_profile.profile(p_grid=(4,), scales=(0.02,), jobs=1)

        without = _sweep_grid4()
        assert json.dumps(
            with_profile.metrics_registry.snapshot(), sort_keys=True
        ) == json.dumps(without.metrics_registry.snapshot(), sort_keys=True)
        assert json.dumps(with_profile.event_log.records) == json.dumps(
            without.event_log.records
        )


def _sweep_grid4():
    runner = ChopperRunner(
        WordCountWorkload(physical_records=2000),
        base_conf=EngineConf(default_parallelism=8),
    )
    runner.metrics_registry = MetricsRegistry()
    runner.event_log = EventLog()
    runner.profile(p_grid=(4,), scales=(0.02,), jobs=1)
    return runner

"""Tests for the run ledger: storage, collection, and chaos coverage."""

from __future__ import annotations

import json

import pytest

from repro.cluster import uniform_cluster
from repro.common.errors import LedgerError
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.obs import LEDGER_VERSION, LedgerCollector, RunLedger, Tracer


def quiet_conf(**kwargs) -> EngineConf:
    kwargs.setdefault("default_parallelism", 8)
    kwargs.setdefault(
        "cost", CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0)
    )
    return EngineConf(**kwargs)


def make_ctx(**conf_kwargs) -> AnalyticsContext:
    return AnalyticsContext(
        uniform_cluster(n_workers=3, cores=2), quiet_conf(**conf_kwargs)
    )


def shuffle_job(ctx):
    pairs = ctx.parallelize([(i % 13, 1) for i in range(8000)], 8)
    return pairs.reduce_by_key(lambda a, b: a + b, 6).collect_as_map()


def collected_run(**conf_kwargs) -> dict:
    """Run the shuffle job with a collector attached; return the body."""
    ctx = make_ctx(**conf_kwargs)
    collector = LedgerCollector()
    with collector.attached(ctx):
        shuffle_job(ctx)
    return collector.body()


class TestRunLedger:
    def test_append_assigns_deterministic_sequential_ids(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        assert ledger.append("wordcount", "run", {}) == "0000-wordcount-run"
        assert ledger.append("wordcount", "run", {}) == "0001-wordcount-run"
        assert ledger.append("kmeans", "vanilla", {}) == "0002-kmeans-vanilla"

    def test_entries_round_trip_in_append_order(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        ledger.append("w", "a", {"wall_clock": 1.0})
        ledger.append("w", "b", {"wall_clock": 2.0})
        entries = ledger.entries()
        assert [e["label"] for e in entries] == ["a", "b"]
        assert [e["seq"] for e in entries] == [0, 1]
        assert all(e["version"] == LEDGER_VERSION for e in entries)

    def test_read_seeks_by_run_id(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        ledger.append("w", "a", {"wall_clock": 1.0})
        run_id = ledger.append("w", "b", {"wall_clock": 2.0})
        assert ledger.read(run_id)["wall_clock"] == 2.0

    def test_read_unknown_run_raises_with_known_ids(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        ledger.append("w", "a", {})
        with pytest.raises(LedgerError, match="0000-w-a"):
            ledger.read("nope")

    def test_missing_file_raises_ledger_error(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "absent.jsonl"))
        with pytest.raises(LedgerError, match="not found"):
            ledger.entries()
        with pytest.raises(LedgerError, match="not found"):
            ledger.runs()

    def test_corrupt_line_raises_ledger_error(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"run_id": "0000-w-a", "version": 1}\nnot json\n')
        with pytest.raises(LedgerError, match="corrupt"):
            RunLedger(str(path)).entries()

    def test_non_entry_line_raises_ledger_error(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(LedgerError, match="not a run entry"):
            RunLedger(str(path)).entries()

    def test_index_rebuilt_when_missing(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        ledger.append("w", "a", {"wall_clock": 1.0})
        run_id = ledger.append("w", "b", {"wall_clock": 2.0})
        (tmp_path / "runs.jsonl.index.json").unlink()
        assert ledger.read(run_id)["wall_clock"] == 2.0
        # Appends keep numbering from the rebuilt index.
        assert ledger.append("w", "c", {}) == "0002-w-c"

    def test_index_rebuilt_when_corrupt(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        run_id = ledger.append("w", "a", {"wall_clock": 1.0})
        (tmp_path / "runs.jsonl.index.json").write_text("garbage")
        assert ledger.read(run_id)["wall_clock"] == 1.0


class TestTornTail:
    """Crash mid-append leaves a partial final line; reads must survive.

    The appender writes ``json + "\\n"`` in a single call, so a tail
    missing its newline is the only corruption an interrupted append can
    produce — anything torn *earlier* in the file is real damage and
    still raises.
    """

    def torn_ledger(self, tmp_path, keep_bytes=25):
        """Two good entries plus a truncated third line."""
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(str(path))
        ledger.append("w", "a", {"wall_clock": 1.0})
        ledger.append("w", "b", {"wall_clock": 2.0})
        with open(path, "a", encoding="utf-8") as fh:
            line = json.dumps(
                {"version": LEDGER_VERSION, "run_id": "0002-w-c", "seq": 2,
                 "workload": "w", "label": "c", "wall_clock": 3.0},
                sort_keys=True,
            )
            fh.write(line[:keep_bytes])  # no newline, mid-record
        return ledger, path

    def test_entries_skip_partial_tail_with_warning(self, tmp_path, caplog):
        ledger, _ = self.torn_ledger(tmp_path)
        (tmp_path / "runs.jsonl.index.json").unlink()
        with caplog.at_level("WARNING", logger="repro.obs.ledger"):
            entries = ledger.entries()
        assert [e["run_id"] for e in entries] == ["0000-w-a", "0001-w-b"]
        assert any("torn final line" in r.message for r in caplog.records)

    def test_append_after_tear_keeps_ids_deterministic(self, tmp_path):
        ledger, path = self.torn_ledger(tmp_path)
        # The torn tail is truncated away; the new entry takes the seq
        # the crashed one never earned, at its byte offset.
        assert ledger.append("w", "c2", {}) == "0002-w-c2"
        entries = ledger.entries()
        assert [e["run_id"] for e in entries] == [
            "0000-w-a", "0001-w-b", "0002-w-c2",
        ]
        assert ledger.read("0002-w-c2")["label"] == "c2"

    def test_complete_tail_missing_newline_is_repaired(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(str(path))
        ledger.append("w", "a", {})
        with open(path, "rb+") as fh:  # strip just the final newline
            fh.seek(-1, 2)
            fh.truncate()
        (tmp_path / "runs.jsonl.index.json").unlink()
        assert [e["run_id"] for e in ledger.entries()] == ["0000-w-a"]
        assert ledger.append("w", "b", {}) == "0001-w-b"
        assert path.read_bytes().count(b"\n") == 2  # newline restored
        assert ledger.read("0000-w-a")["workload"] == "w"

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"run_id": "0000-w-a", "version": 1}\ntorn{\n')
        with pytest.raises(LedgerError, match="corrupt"):
            RunLedger(str(path)).entries()

    def test_stale_sized_index_detected_after_tear(self, tmp_path):
        ledger, path = self.torn_ledger(tmp_path)
        # Sidecar recorded the pre-tear size; the grown file must force
        # a rescan instead of trusting stale rows.
        sidecar = json.loads((tmp_path / "runs.jsonl.index.json").read_text())
        assert sidecar["size"] != path.stat().st_size
        assert [r["run_id"] for r in ledger.runs()] == ["0000-w-a", "0001-w-b"]


class TestLedgerCollector:
    def test_body_covers_stages_tasks_and_shuffle(self):
        body = collected_run()
        assert body["wall_clock"] > 0
        assert len(body["jobs"]) == 1
        kinds = [s["kind"] for s in body["stages"]]
        assert kinds == ["shuffle_map", "result"]
        map_stage = body["stages"][0]
        assert map_stage["tasks"]["count"] == 8
        assert len(map_stage["tasks"]["duration"]) == 8
        # Per-reduce-partition histogram from the shuffle manager.
        assert len(map_stage["output_partition_bytes"]) == 6
        assert sum(map_stage["output_partition_bytes"]) > 0
        assert body["shuffle"]["write_bytes"] > 0
        assert (
            body["shuffle"]["local_bytes"] + body["shuffle"]["remote_bytes"]
            > 0
        )

    def test_task_attempt_outcomes_counted_without_tracer(self):
        # Span emission must flow to the collector even when no tracer is
        # attached (obs.emitting, not obs.tracing, gates the spans).
        body = collected_run()
        assert body["task_attempts"]["ok"] == 8 + 6
        assert body["chaos_events"] == []

    def test_detach_restores_unobserved_state(self):
        ctx = make_ctx()
        collector = LedgerCollector()
        with collector.attached(ctx):
            assert ctx.obs.emitting
        assert not ctx.obs.emitting

    def test_coexists_with_tracer_without_double_shifting(self):
        # The tracer shifts span times by its horizon offset; the ledger
        # collector registered alongside must still see run-local times.
        tracer = Tracer()
        tracer.emit("earlier-run", "run", 0.0, 100.0)
        ctx = make_ctx()
        ctx.obs.set_tracer(tracer)
        collector = LedgerCollector()
        with tracer.scope("second-run"):
            with collector.attached(ctx):
                shuffle_job(ctx)
        body = collector.body()
        ends = [s["end"] for s in body["stages"]]
        assert max(ends) < 100.0  # run-local, not horizon-shifted


def mid_reduce_kill_time() -> float:
    """A kill time strictly inside the reduce stage of the baseline run.

    Losing a node then guarantees registered map outputs disappear, so
    the run exercises fetch failure -> stage resubmission.
    """
    baseline = make_ctx()
    shuffle_job(baseline)
    reduce_stats = next(s for s in baseline.stage_stats if s.kind == "result")
    start = min(t.start for t in reduce_stats.tasks)
    first_end = min(t.end for t in reduce_stats.tasks)
    return (start + first_end) / 2.0


class TestChaosRunsInLedger:
    def chaos_run(self, kill_at: float):
        ctx = make_ctx(
            node_failure_times={"w0": kill_at}, node_recovery_delay=1e9
        )
        collector = LedgerCollector()
        with collector.attached(ctx):
            result = shuffle_job(ctx)
        return ctx, collector.body(), result

    def test_node_loss_and_resubmission_recorded(self):
        # Kill one worker mid-reduce: the ledger must carry the chaos
        # events and the resubmitted stage records, with attempt
        # numbering consistent between the two.
        kill_at = mid_reduce_kill_time()
        ctx, body, result = self.chaos_run(kill_at)
        assert result == {k: len(range(k, 8000, 13)) for k in range(13)}
        events = [e["event"] for e in body["chaos_events"]]
        assert "node-lost" in events
        assert "fetch-failure" in events
        assert "stage-resubmit" in events
        lost = [e for e in body["chaos_events"] if e["event"] == "node-lost"]
        assert lost[0]["t"] == pytest.approx(kill_at)
        # Attempt numbering: every stage-resubmit event has a matching
        # attempt > 0 stage record, and vice versa.
        resubmits = [
            e for e in body["chaos_events"] if e["event"] == "stage-resubmit"
        ]
        retried = [s for s in body["stages"] if s["attempt"] > 0]
        assert retried, "mid-reduce kill must force a stage resubmission"
        assert {s["attempt"] for s in retried} == {
            e["attempt"] for e in resubmits
        }
        # The resubmitted map stage re-ran only the lost partitions.
        first_map = next(s for s in body["stages"] if s["kind"] == "shuffle_map")
        for s in retried:
            assert s["tasks"]["count"] < first_map["tasks"]["count"]
        # Task-level attempt outcomes include the failures.
        assert body["task_attempts"].get("ok", 0) > 0
        assert (
            body["task_attempts"].get("node-lost", 0)
            + body["task_attempts"].get("fetch-failed", 0)
            > 0
        )

    def test_chaos_body_serializes_through_the_ledger(self, tmp_path):
        _, body, _ = self.chaos_run(mid_reduce_kill_time())
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        run_id = ledger.append("shuffle", "chaos", body)
        entry = ledger.read(run_id)
        assert entry["chaos_events"]
        assert json.dumps(entry)  # fully JSON-serializable

    def test_chaos_run_identical_with_and_without_collector(self):
        # Attaching the collector turns span emission on; that must not
        # change simulated behaviour.
        kill_at = mid_reduce_kill_time()

        def run(with_collector: bool) -> float:
            ctx = make_ctx(
                node_failure_times={"w0": kill_at}, node_recovery_delay=1e9
            )
            if with_collector:
                collector = LedgerCollector()
                with collector.attached(ctx):
                    shuffle_job(ctx)
            else:
                shuffle_job(ctx)
            return ctx.now

        assert run(True) == run(False)

"""Tests for the span tracer and Chrome-trace exporter."""

import json

from repro.obs import TraceEvent, Tracer, to_chrome


def spans_of(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "X"]


def meta_of(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "M"]


class TestTracer:
    def test_emit_and_horizon(self):
        tr = Tracer()
        tr.emit("a", "stage", 0.0, 2.0)
        tr.emit("b", "stage", 1.0, 5.0)
        assert tr.horizon == 5.0
        assert [e.name for e in tr.events] == ["a", "b"]

    def test_instant_lands_at_horizon(self):
        tr = Tracer()
        tr.emit("a", "stage", 0.0, 3.0)
        tr.instant("marker", "chopper.optimizer", P=64)
        last = tr.events[-1]
        assert last.start == last.end == 3.0
        assert last.args == {"P": 64}

    def test_scope_shifts_spans_past_horizon(self):
        tr = Tracer()
        with tr.scope("first"):
            tr.on_span(TraceEvent("t", "task", 0.0, 2.0, node="n1"))
        with tr.scope("second"):
            tr.on_span(TraceEvent("t", "task", 0.0, 2.0, node="n1"))
        tasks = [e for e in tr.events if e.cat == "task"]
        assert tasks[0].start == 0.0 and tasks[0].end == 2.0
        assert tasks[1].start == 2.0 and tasks[1].end == 4.0
        runs = [e for e in tr.events if e.cat == "run"]
        assert [(r.name, r.start, r.end) for r in runs] == [
            ("first", 0.0, 2.0), ("second", 2.0, 4.0)
        ]

    def test_phase_records_wall_clock(self):
        tr = Tracer()
        with tr.phase("train"):
            pass
        event = tr.events[-1]
        assert event.cat == "chopper"
        assert event.args["wall_ms"] >= 0.0


class TestChromeExport:
    def test_span_fields_valid(self):
        tr = Tracer()
        tr.emit("job-0", "job", 0.0, 1.5)
        tr.on_span(TraceEvent("map[0]", "task", 0.25, 1.0, node="n1"))
        doc = tr.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        for e in spans_of(doc):
            assert e["ph"] == "X"
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        task = next(e for e in spans_of(doc) if e["cat"] == "task")
        assert task["ts"] == 0.25e6 and task["dur"] == 0.75e6

    def test_driver_and_nodes_get_distinct_pids(self):
        tr = Tracer()
        tr.emit("job-0", "job", 0.0, 1.0)
        tr.on_span(TraceEvent("t", "task", 0.0, 1.0, node="n1"))
        tr.on_span(TraceEvent("t", "task", 0.0, 1.0, node="n2"))
        doc = tr.to_chrome()
        pids = {e["cat"]: e["pid"] for e in spans_of(doc)}
        names = {
            e["pid"]: e["args"]["name"]
            for e in meta_of(doc) if e["name"] == "process_name"
        }
        assert names[pids["job"]] == "driver"
        node_pids = {e["pid"] for e in spans_of(doc) if e["cat"] == "task"}
        assert len(node_pids) == 2
        assert {names[p] for p in node_pids} == {"n1", "n2"}

    def test_lane_packing_respects_overlap(self):
        tr = Tracer()
        # Two overlapping tasks need two lanes; a third that starts after
        # the first ends reuses lane 1.
        tr.on_span(TraceEvent("a", "task", 0.0, 2.0, node="n1"))
        tr.on_span(TraceEvent("b", "task", 1.0, 3.0, node="n1"))
        tr.on_span(TraceEvent("c", "task", 2.5, 4.0, node="n1"))
        doc = tr.to_chrome()
        tid = {e["name"]: e["tid"] for e in spans_of(doc)}
        assert tid["a"] != tid["b"]
        assert tid["c"] == tid["a"]

    def test_subspans_inherit_lane_via_key(self):
        tr = Tracer()
        tr.on_span(TraceEvent("a", "task", 0.0, 2.0, node="n1", key=("s", 0)))
        tr.on_span(TraceEvent("b", "task", 1.0, 3.0, node="n1", key=("s", 1)))
        tr.on_span(
            TraceEvent("b:fetch", "task.phase", 1.0, 1.5, node="n1", key=("s", 1))
        )
        doc = tr.to_chrome()
        tid = {e["name"]: e["tid"] for e in spans_of(doc)}
        assert tid["b:fetch"] == tid["b"] != tid["a"]

    def test_declared_cores_name_every_lane(self):
        tr = Tracer()
        tr.declare_nodes({"n1": 4})
        tr.on_span(TraceEvent("a", "task", 0.0, 1.0, node="n1"))
        doc = tr.to_chrome()
        lanes = [
            e for e in meta_of(doc)
            if e["name"] == "thread_name" and e["args"]["name"].startswith("core")
        ]
        assert len(lanes) == 4  # all declared cores, not just the one used

    def test_save_writes_valid_json(self, tmp_path):
        tr = Tracer()
        tr.emit("job-0", "job", 0.0, 1.0)
        path = tmp_path / "trace.json"
        tr.save(str(path))
        doc = json.loads(path.read_text())
        assert doc == tr.to_chrome()

    def test_export_without_nodes(self):
        doc = to_chrome([TraceEvent("j", "job", 0.0, 1.0)])
        assert spans_of(doc)[0]["pid"] == 1

"""Tests for Prometheus / OTLP metric exporters (repro.obs.export)."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.export import (
    sanitize_name,
    to_otlp,
    to_prometheus,
    validate_prometheus,
)


def _registry():
    reg = MetricsRegistry()
    reg.counter("shuffle.write_bytes").inc(100)
    reg.counter("shuffle.write_bytes", node="A").inc(60)
    reg.counter("shuffle.write_bytes", node="B").inc(40)
    reg.gauge("cluster.total_cores").set(40)
    h = reg.histogram("task.duration")
    for v in range(1, 101):
        h.observe(float(v))
    return reg


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("shuffle.write_bytes") == "shuffle_write_bytes"

    def test_invalid_leading_char_prefixed(self):
        assert sanitize_name("9lives").startswith("_")

    def test_valid_names_pass_through(self):
        assert sanitize_name("a_ok:name") == "a_ok:name"


class TestPrometheus:
    def test_counters_get_total_suffix_and_type(self):
        text = to_prometheus(_registry().snapshot())
        assert "# TYPE shuffle_write_bytes_total counter" in text
        assert 'shuffle_write_bytes_total{node="A"} 60' in text
        assert "shuffle_write_bytes_total 100" in text

    def test_gauges_and_histogram_summaries(self):
        text = to_prometheus(_registry().snapshot())
        assert "# TYPE cluster_total_cores gauge" in text
        assert "# TYPE task_duration summary" in text
        assert 'task_duration{quantile="0.5"}' in text
        assert "task_duration_sum 5050" in text
        assert "task_duration_count 100" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = to_prometheus(reg.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        validate_prometheus(text)

    def test_output_validates(self):
        samples = validate_prometheus(to_prometheus(_registry().snapshot()))
        assert samples > 5


class TestValidate:
    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="line 1"):
            validate_prometheus("this is ! not * prometheus\n")

    def test_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="TYPE"):
            validate_prometheus("orphan_metric 1\n")

    def test_rejects_non_numeric_value(self):
        text = "# TYPE x counter\nx_total pony\n"
        with pytest.raises(ValueError):
            validate_prometheus(text)


class TestOtlp:
    def test_structure_and_datapoints(self):
        doc = to_otlp(_registry().snapshot())
        (resource,) = doc["resourceMetrics"]
        attrs = {
            a["key"]: a["value"]["stringValue"]
            for a in resource["resource"]["attributes"]
        }
        assert attrs["service.name"] == "repro"
        (scope,) = resource["scopeMetrics"]
        metrics = {m["name"]: m for m in scope["metrics"]}
        counter = metrics["shuffle.write_bytes"]
        assert counter["sum"]["isMonotonic"] is True
        assert len(counter["sum"]["dataPoints"]) == 3
        assert "gauge" in metrics["cluster.total_cores"]
        summary = metrics["task.duration"]["summary"]["dataPoints"][0]
        assert summary["count"] == 100
        assert summary["sum"] == 5050.0
        assert summary["quantileValues"]

    def test_datapoint_labels_become_attributes(self):
        doc = to_otlp(_registry().snapshot())
        counter = next(
            m
            for m in doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
            if m["name"] == "shuffle.write_bytes"
        )
        labeled = [
            p for p in counter["sum"]["dataPoints"] if p.get("attributes")
        ]
        assert {
            a["value"]["stringValue"]
            for p in labeled
            for a in p["attributes"]
        } == {"A", "B"}

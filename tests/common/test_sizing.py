"""Tests for record size estimation."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.common.sizing import Sized, estimate_partition_size, estimate_size


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(1) == 8.0
        assert estimate_size(1.5) == 8.0
        assert estimate_size(None) == 8.0
        assert estimate_size(True) == 8.0

    def test_numpy_array_uses_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert estimate_size(arr) >= arr.nbytes

    def test_numpy_scalar(self):
        assert estimate_size(np.float64(1.0)) == 8.0

    def test_string_scales_with_length(self):
        assert estimate_size("a" * 100) > estimate_size("a" * 10)

    def test_tuple_includes_elements(self):
        assert estimate_size((1, 2.0)) > estimate_size(1) + estimate_size(2.0)

    def test_dict(self):
        assert estimate_size({"k": 1}) > estimate_size("k") + estimate_size(1)

    def test_unknown_object_fallback(self):
        class Strange:
            pass

        assert estimate_size(Strange()) == 64.0

    def test_sized_protocol_overrides(self):
        class Virtual(Sized):
            def nbytes_virtual(self):
                return 12345.0

        assert estimate_size(Virtual()) == 12345.0

    @given(st.lists(st.integers(), max_size=50))
    def test_list_size_monotone_in_elements(self, xs):
        assert estimate_size(xs) >= estimate_size(xs[: len(xs) // 2])


class TestEstimatePartitionSize:
    def test_empty(self):
        assert estimate_partition_size([]) == 0.0

    def test_sums_records(self):
        records = [(1, 2.0), (3, 4.0)]
        assert estimate_partition_size(records) == sum(
            estimate_size(r) for r in records
        )

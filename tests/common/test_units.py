"""Tests for byte/time unit helpers."""

import pytest

from repro.common.units import GB, KB, MB, MINUTE, fmt_bytes, fmt_duration


class TestConstants:
    def test_binary_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_paper_input_sizes_expressible(self):
        assert 21.8 * GB > 2.3e10


class TestFmtBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1536, "1.50 KB"),
            (5 * MB, "5.00 MB"),
            (2.5 * GB, "2.50 GB"),
        ],
    )
    def test_formats(self, n, expected):
        assert fmt_bytes(n) == expected

    def test_negative(self):
        assert fmt_bytes(-1536) == "-1.50 KB"


class TestFmtDuration:
    def test_subminute(self):
        assert fmt_duration(0.5) == "0.500s"

    def test_minutes(self):
        assert fmt_duration(75) == "1m15.0s"

    def test_hours(self):
        assert fmt_duration(3700) == "1h1m40s"

    def test_negative(self):
        assert fmt_duration(-MINUTE) == "-1m0.0s"

"""Tests for byte/time unit helpers."""

import pytest

from repro.common.units import (
    GB,
    KB,
    MB,
    MINUTE,
    fmt_bytes,
    fmt_duration,
    parse_bytes,
)


class TestConstants:
    def test_binary_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_paper_input_sizes_expressible(self):
        assert 21.8 * GB > 2.3e10


class TestFmtBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1536, "1.50 KB"),
            (5 * MB, "5.00 MB"),
            (2.5 * GB, "2.50 GB"),
        ],
    )
    def test_formats(self, n, expected):
        assert fmt_bytes(n) == expected

    def test_negative(self):
        assert fmt_bytes(-1536) == "-1.50 KB"


class TestFmtDuration:
    def test_subminute(self):
        assert fmt_duration(0.5) == "0.500s"

    def test_minutes(self):
        assert fmt_duration(75) == "1m15.0s"

    def test_hours(self):
        assert fmt_duration(3700) == "1h1m40s"

    def test_negative(self):
        assert fmt_duration(-MINUTE) == "-1m0.0s"


class TestParseBytes:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("100", 100.0),
            ("4096", 4096.0),
            ("1.5K", 1.5 * KB),
            ("64M", 64 * MB),
            ("64mb", 64 * MB),
            ("2GB", 2 * GB),
            ("2g", 2 * GB),
            ("1TB", 1024 * GB),
            ("512B", 512.0),
            ("  8K  ", 8 * KB),
            ("0", 0.0),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_bytes(text) == expected

    def test_round_trips_with_fmt_bytes(self):
        assert parse_bytes(fmt_bytes(64 * MB).replace(" ", "")) == 64 * MB

    @pytest.mark.parametrize(
        "text", ["", "MB", "12X", "1..5K", "twelve", "1 2K", "-64M"]
    )
    def test_rejects(self, text):
        with pytest.raises(ValueError, match="byte size"):
            parse_bytes(text)

"""Tests for deterministic RNG derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import derive_seed, seeded_rng


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = seeded_rng(42).random(10)
        b = seeded_rng(42).random(10)
        assert (a == b).all()

    def test_different_seed_different_stream(self):
        a = seeded_rng(1).random(10)
        b = seeded_rng(2).random(10)
        assert not (a == b).all()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "x", 3) == derive_seed(7, "x", 3)

    def test_labels_matter(self):
        assert derive_seed(7, "x") != derive_seed(7, "y")

    def test_base_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_always_nonnegative_64bit(self, base, label):
        seed = derive_seed(base, label)
        assert 0 <= seed < 2**63

    @given(st.integers(min_value=0, max_value=1000))
    def test_usable_as_numpy_seed(self, base):
        rng = seeded_rng(derive_seed(base, "split", 3))
        assert 0.0 <= rng.random() < 1.0

"""Tests for SlotPool queueing semantics."""

import pytest

from repro.common.errors import SchedulingError
from repro.simul import SimEngine, SlotPool


def test_capacity_validation():
    with pytest.raises(SchedulingError):
        SlotPool(SimEngine(), 0)


def test_grants_up_to_capacity_immediately():
    engine = SimEngine()
    pool = SlotPool(engine, 2)
    granted = []
    for i in range(3):
        pool.acquire(lambda i=i: granted.append(i))
    engine.run()
    assert granted == [0, 1]
    assert pool.queued == 1


def test_release_wakes_fifo_waiter():
    engine = SimEngine()
    pool = SlotPool(engine, 1)
    order = []

    def holder():
        order.append("first")
        engine.schedule(5.0, pool.release)

    pool.acquire(holder)
    pool.acquire(lambda: order.append("second"))
    pool.acquire(lambda: order.append("third"))
    engine.run()
    # Only one release happened, so exactly one waiter was woken.
    assert order == ["first", "second"]
    assert pool.in_use == 1


def test_release_without_acquire_rejected():
    pool = SlotPool(SimEngine(), 1)
    with pytest.raises(SchedulingError):
        pool.release()


def test_counters():
    engine = SimEngine()
    pool = SlotPool(engine, 3, name="cores")
    for _ in range(5):
        pool.acquire(lambda: None)
    engine.run()
    assert pool.capacity == 3
    assert pool.in_use == 3
    assert pool.available == 0
    assert pool.queued == 2
    pool.release()
    engine.run()
    assert pool.queued == 1

"""Tests for time-series metric bucketing."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.simul import MetricsRecorder
from repro.simul.metrics import merge_series


class TestIntervals:
    def test_full_bucket_utilization(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.0, 10.0, 1.0)
        series = rec.bucketize("cpu", 1.0)
        assert series.values.shape[0] == 10
        assert np.allclose(series.values, 1.0)

    def test_partial_overlap_prorated(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.5, 1.0, 1.0)
        series = rec.bucketize("cpu", 1.0, end=2.0)
        assert series.values[0] == pytest.approx(0.5)
        assert series.values[1] == pytest.approx(0.0)

    def test_value_scales(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.0, 1.0, 4.0)
        assert rec.bucketize("cpu", 1.0).values[0] == pytest.approx(4.0)

    def test_backwards_interval_rejected(self):
        rec = MetricsRecorder()
        with pytest.raises(ConfigurationError):
            rec.record_interval("cpu", "a", 2.0, 1.0)


class TestPoints:
    def test_point_becomes_rate(self):
        rec = MetricsRecorder()
        rec.record_event("net", "a", 0.5, 100.0)
        series = rec.bucketize("net", 2.0)
        assert series.values[0] == pytest.approx(50.0)  # 100 over 2s bucket

    def test_total_preserved(self):
        rec = MetricsRecorder()
        for t in (0.1, 0.9, 3.5):
            rec.record_event("net", "a", t, 10.0)
        series = rec.bucketize("net", 1.0)
        assert series.total(1.0) == pytest.approx(30.0)


class TestNodeAveraging:
    def test_average_across_nodes(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.0, 1.0, 1.0)
        rec.record_interval("cpu", "b", 0.0, 1.0, 0.0)
        series = rec.bucketize("cpu", 1.0)
        assert series.values[0] == pytest.approx(0.5)

    def test_single_node_selection(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.0, 1.0, 1.0)
        rec.record_interval("cpu", "b", 0.0, 1.0, 0.0)
        assert rec.bucketize("cpu", 1.0, node="a").values[0] == pytest.approx(1.0)

    def test_nodes_listing(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "b", 0.0, 1.0)
        rec.record_event("cpu", "a", 0.5, 1.0)
        assert rec.nodes("cpu") == ["a", "b"]

    def test_unknown_series_is_zero(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.0, 5.0)
        series = rec.bucketize("nothing", 1.0)
        assert series.values.sum() == 0.0


class TestSeriesStats:
    def test_mean_peak(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.0, 1.0, 2.0)
        rec.record_interval("cpu", "a", 1.0, 2.0, 4.0)
        series = rec.bucketize("cpu", 1.0)
        assert series.mean() == pytest.approx(3.0)
        assert series.peak() == pytest.approx(4.0)

    def test_bad_bucket_width(self):
        with pytest.raises(ConfigurationError):
            MetricsRecorder().bucketize("cpu", 0.0)

    def test_reset(self):
        rec = MetricsRecorder()
        rec.record_event("net", "a", 1.0, 5.0)
        rec.reset()
        assert rec.horizon == 0.0
        assert rec.bucketize("net", 1.0).values.sum() == 0.0


class TestMergeSeries:
    def test_merge_pads_to_longest(self):
        rec = MetricsRecorder()
        rec.record_interval("cpu", "a", 0.0, 3.0, 1.0)
        long = rec.bucketize("cpu", 1.0, node="a")
        rec2 = MetricsRecorder()
        rec2.record_interval("cpu", "a", 0.0, 1.0, 1.0)
        short = rec2.bucketize("cpu", 1.0, node="a")
        merged = merge_series([long, short])
        assert merged.values.shape[0] == 3
        assert merged.values[0] == pytest.approx(2.0)
        assert merged.values[2] == pytest.approx(1.0)

    def test_merge_empty(self):
        merged = merge_series([])
        assert merged.values.size == 0

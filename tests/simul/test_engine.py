"""Tests for the discrete-event simulation loop."""

import pytest

from repro.common.errors import SchedulingError
from repro.simul import SimEngine


class TestSchedule:
    def test_clock_starts_at_zero(self):
        assert SimEngine().now == 0.0

    def test_events_fire_in_time_order(self):
        engine = SimEngine()
        fired = []
        engine.schedule(2.0, fired.append, "b")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(3.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        engine = SimEngine()
        fired = []
        for label in ("x", "y", "z"):
            engine.schedule(1.0, fired.append, label)
        engine.run()
        assert fired == ["x", "y", "z"]

    def test_clock_advances_to_event_time(self):
        engine = SimEngine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            SimEngine().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = SimEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulingError):
            engine.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        engine = SimEngine()
        fired = []

        def chain(n):
            fired.append(engine.now)
            if n > 0:
                engine.schedule(1.0, chain, n - 1)

        engine.schedule(0.0, chain, 3)
        engine.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestCancel:
    def test_cancelled_event_skipped(self):
        engine = SimEngine()
        fired = []
        event = engine.schedule(1.0, fired.append, "no")
        engine.schedule(2.0, fired.append, "yes")
        event.cancel()
        engine.run()
        assert fired == ["yes"]

    def test_pending_excludes_cancelled(self):
        engine = SimEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        assert engine.pending() == 1


class TestRunUntil:
    def test_horizon_stops_clock(self):
        engine = SimEngine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(10.0, fired.append, "b")
        engine.run(until=5.0)
        assert fired == ["a"]
        assert engine.now == 5.0
        engine.run()
        assert fired == ["a", "b"]


class TestReset:
    def test_reset_clears_clock_and_events(self):
        engine = SimEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.schedule(1.0, lambda: None)
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending() == 0

"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tensor-train"])


class TestWorkloadsCommand:
    def test_lists_all(self):
        code, text = run_cli("workloads")
        assert code == 0
        for name in ("kmeans", "pca", "sql", "wordcount", "pagerank"):
            assert name in text


class TestRunCommand:
    def test_runs_and_prints_stage_table(self):
        code, text = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0",
            "--physical-records", "400",
            "--parallelism", "16",
        )
        assert code == 0
        assert "stage" in text
        assert "total:" in text
        assert "shuffle_map" in text

    def test_scale_flag(self):
        code, text = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "400",
            "--parallelism", "16", "--scale", "0.5",
        )
        assert code == 0


class TestPipelineCommands:
    def test_profile_optimize_run_roundtrip(self, tmp_path):
        db_path = str(tmp_path / "db.json")
        config_path = str(tmp_path / "config.json")
        common = [
            "wordcount",
            "--virtual-gb", "2.0",
            "--physical-records", "600",
            "--parallelism", "32",
        ]
        code, text = run_cli(
            "profile", *common, "--db", db_path,
            "--grid", "8", "32", "96", "--scales", "1.0",
        )
        assert code == 0
        assert "trained" in text

        code, text = run_cli(
            "optimize", *common, "--db", db_path, "--output", config_path
        )
        assert code == 0
        assert "entries" in text

        code, text = run_cli("run", *common, "--config", config_path)
        assert code == 0
        assert "total:" in text

    def test_optimize_prints_json_without_output(self, tmp_path):
        db_path = str(tmp_path / "db.json")
        common = [
            "wordcount", "--virtual-gb", "1.0",
            "--physical-records", "400", "--parallelism", "16",
        ]
        run_cli("profile", *common, "--db", db_path,
                "--grid", "8", "32", "--scales", "1.0")
        code, text = run_cli("optimize", *common, "--db", db_path)
        assert code == 0
        assert '"signature"' in text

    def test_compare_reports_improvement(self):
        code, text = run_cli(
            "compare", "wordcount",
            "--virtual-gb", "2.0", "--physical-records", "600",
            "--parallelism", "32",
            "--grid", "8", "32", "96", "--scales", "1.0",
        )
        assert code == 0
        assert "improvement:" in text


class TestHistoryAndReport:
    def test_run_writes_history_and_report_reads_it(self, tmp_path):
        history = str(tmp_path / "run.jsonl")
        code, text = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "300",
            "--parallelism", "16", "--history", history,
        )
        assert code == 0
        assert "history ->" in text

        code, text = run_cli("report", history)
        assert code == 0
        assert "total stage span" in text
        assert "shuffle_map" in text

    def test_run_gantt_flag(self):
        code, text = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "300",
            "--parallelism", "16", "--gantt",
        )
        assert code == 0
        assert "|" in text and "t = " in text

"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    err = io.StringIO()
    code = main(list(argv), out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestErrorHandling:
    def test_unknown_workload_one_line_error(self):
        code, text, err = run_cli("run", "tensor-train")
        assert code == 2
        assert text == ""
        assert err.startswith("error: ")
        assert "tensor-train" in err
        assert "kmeans" in err  # suggests the valid names
        assert err.count("\n") == 1  # one line, no traceback

    def test_unreadable_db_one_line_error(self, tmp_path):
        code, text, err = run_cli(
            "optimize", "wordcount", "--db", str(tmp_path / "missing.json")
        )
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_malformed_db_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, text, err = run_cli("optimize", "wordcount", "--db", str(bad))
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_unreadable_config_one_line_error(self, tmp_path):
        code, text, err = run_cli(
            "run", "wordcount", "--physical-records", "300",
            "--parallelism", "16", "--config", str(tmp_path / "missing.json"),
        )
        assert code == 2
        assert err.startswith("error: ")


class TestWorkloadsCommand:
    def test_lists_all(self):
        code, text, _ = run_cli("workloads")
        assert code == 0
        for name in ("kmeans", "pca", "sql", "wordcount", "pagerank"):
            assert name in text


class TestRunCommand:
    def test_runs_and_prints_stage_table(self):
        code, text, _ = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0",
            "--physical-records", "400",
            "--parallelism", "16",
        )
        assert code == 0
        assert "stage" in text
        assert "total:" in text
        assert "shuffle_map" in text

    def test_scale_flag(self):
        code, text, _ = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "400",
            "--parallelism", "16", "--scale", "0.5",
        )
        assert code == 0


class TestRecordFormatFlag:
    WORKLOAD = (
        "run", "wordcount-shuffle",
        "--virtual-gb", "1.0", "--physical-records", "400",
        "--parallelism", "16",
    )

    def test_invalid_record_format_one_line_error(self):
        code, text, err = run_cli(*self.WORKLOAD, "--record-format", "parquet")
        assert code == 2
        assert text == ""
        assert err.startswith("error: ")
        assert "parquet" in err and "columnar" in err
        assert err.count("\n") == 1  # one line, no traceback

    def test_columnar_output_matches_list(self):
        code_a, text_a, _ = run_cli(*self.WORKLOAD)
        code_b, text_b, _ = run_cli(
            *self.WORKLOAD, "--record-format", "columnar", "--fuse"
        )
        assert code_a == 0 and code_b == 0
        assert text_a == text_b

    def test_list_vs_columnar_ledger_gate(self, tmp_path):
        # The CI identity gate: two ledgered runs, then diff-runs with a
        # near-zero threshold must pass (simulated time and shuffle
        # volume are bit-identical across record formats).
        ledger = str(tmp_path / "runs.jsonl")
        code, _, _ = run_cli(*self.WORKLOAD, "--ledger", ledger)
        assert code == 0
        code, _, _ = run_cli(
            *self.WORKLOAD, "--record-format", "columnar", "--fuse",
            "--ledger", ledger,
        )
        assert code == 0
        code, text, _ = run_cli(
            "diff-runs", ledger,
            "0000-wordcount-shuffle-run", "0001-wordcount-shuffle-run",
            "--threshold", "0.001",
        )
        assert code == 0
        assert "ok: no regression" in text


class TestChaosFlags:
    WORKLOAD = (
        "run", "wordcount",
        "--virtual-gb", "1.0", "--physical-records", "400",
        "--parallelism", "16",
    )

    def test_chaos_kill_run_succeeds(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code, text, _ = run_cli(
            *self.WORKLOAD,
            "--chaos-kill", "C=0.2",
            "--metrics", str(metrics_path),
        )
        assert code == 0
        assert "total:" in text
        snapshot = json.loads(metrics_path.read_text())
        series = snapshot["counters"]["scheduler.nodes_lost"]
        assert [s["value"] for s in series] == [1.0]

    def test_chaos_results_match_failure_free_table(self):
        code_a, plain, _ = run_cli(*self.WORKLOAD)
        code_b, chaotic, _ = run_cli(
            *self.WORKLOAD, "--chaos-kill", "C=0.2", "--chaos-recovery", "5.0"
        )
        assert code_a == code_b == 0
        # Same stages at the same partition counts (partial recovery
        # re-runs are excluded from the table); times may differ.
        rows_of = lambda text: [  # noqa: E731
            line.split()[:3] for line in text.splitlines()[1:]
            if "shuffle_map" in line or "result" in line
        ]
        assert rows_of(plain) == rows_of(chaotic)

    def test_chaos_kill_bad_syntax_one_line_error(self):
        for bad in ("C", "=1.0", "C=abc"):
            code, text, err = run_cli(*self.WORKLOAD, "--chaos-kill", bad)
            assert code == 2
            assert err.startswith("error: ")
            assert err.count("\n") == 1

    def test_chaos_kill_unknown_node_one_line_error(self):
        code, _, err = run_cli(*self.WORKLOAD, "--chaos-kill", "Z=1.0")
        assert code == 2
        assert "unknown worker" in err

    def test_chaos_rate_flag(self):
        code, text, _ = run_cli(
            *self.WORKLOAD, "--chaos-rate", "0.4", "--chaos-recovery", "2.0"
        )
        assert code == 0
        assert "total:" in text


class TestPipelineCommands:
    def test_profile_optimize_run_roundtrip(self, tmp_path):
        db_path = str(tmp_path / "db.json")
        config_path = str(tmp_path / "config.json")
        common = [
            "wordcount",
            "--virtual-gb", "2.0",
            "--physical-records", "600",
            "--parallelism", "32",
        ]
        code, text, _ = run_cli(
            "profile", *common, "--db", db_path,
            "--grid", "8", "32", "96", "--scales", "1.0",
        )
        assert code == 0
        assert "trained" in text

        code, text, _ = run_cli(
            "optimize", *common, "--db", db_path, "--output", config_path
        )
        assert code == 0
        assert "entries" in text

        code, text, _ = run_cli("run", *common, "--config", config_path)
        assert code == 0
        assert "total:" in text

    def test_optimize_prints_json_without_output(self, tmp_path):
        db_path = str(tmp_path / "db.json")
        common = [
            "wordcount", "--virtual-gb", "1.0",
            "--physical-records", "400", "--parallelism", "16",
        ]
        run_cli("profile", *common, "--db", db_path,
                "--grid", "8", "32", "--scales", "1.0")
        code, text, _ = run_cli("optimize", *common, "--db", db_path)
        assert code == 0
        assert '"signature"' in text

    def test_compare_reports_improvement(self):
        code, text, _ = run_cli(
            "compare", "wordcount",
            "--virtual-gb", "2.0", "--physical-records", "600",
            "--parallelism", "32",
            "--grid", "8", "32", "96", "--scales", "1.0",
        )
        assert code == 0
        assert "improvement:" in text


class TestHistoryAndReport:
    def test_run_writes_history_and_report_reads_it(self, tmp_path):
        history = str(tmp_path / "run.jsonl")
        code, text, _ = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "300",
            "--parallelism", "16", "--history", history,
        )
        assert code == 0
        assert "history ->" in text

        code, text, _ = run_cli("report", history)
        assert code == 0
        assert "total stage span" in text
        assert "shuffle_map" in text

    def test_run_gantt_flag(self):
        code, text, _ = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "300",
            "--parallelism", "16", "--gantt",
        )
        assert code == 0
        assert "|" in text and "t = " in text


class TestMemoryBudgetFlags:
    WORKLOAD = (
        "run", "wordcount",
        "--virtual-gb", "1.0", "--physical-records", "400",
        "--parallelism", "16",
    )

    def test_budget_run_spills_and_ledgers_it(self, tmp_path):
        ledger_path = str(tmp_path / "runs.jsonl")
        code, text, _ = run_cli(
            *self.WORKLOAD, "--memory-budget", "8K",
            "--spill-dir", str(tmp_path / "spill"),
            "--ledger", ledger_path,
        )
        assert code == 0
        with open(ledger_path) as fh:
            entry = json.loads(fh.readline())
        assert entry["config"]["memory_budget"] == 8 * 1024
        assert entry["shuffle"]["spilled_bytes"] > 0
        assert entry["spill_event_count"] > 0
        # The context closed on the way out: spill files are gone, the
        # parent directory the user named survives.
        spill_dir = tmp_path / "spill"
        assert spill_dir.exists() and not list(spill_dir.iterdir())

    def test_budget_run_matches_unbudgeted(self, tmp_path):
        ledger_path = str(tmp_path / "runs.jsonl")
        for extra in ((), ("--memory-budget", "8K")):
            code, _, _ = run_cli(*self.WORKLOAD, *extra,
                                 "--ledger", ledger_path)
            assert code == 0
        code, text, _ = run_cli(
            "diff-runs", ledger_path,
            "0000-wordcount-run", "0001-wordcount-run",
            "--threshold", "0.001",
        )
        assert code == 0
        assert "ok: no regression" in text

    def test_bad_budget_one_line_error(self):
        code, text, err = run_cli(*self.WORKLOAD, "--memory-budget", "12X")
        assert code == 2
        assert err.startswith("error: ")
        assert "12X" in err
        assert err.count("\n") == 1

    def test_spill_dir_without_budget_one_line_error(self, tmp_path):
        code, text, err = run_cli(
            *self.WORKLOAD, "--spill-dir", str(tmp_path)
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "memory_budget" in err
        assert err.count("\n") == 1

    def test_zero_budget_one_line_error(self):
        code, text, err = run_cli(*self.WORKLOAD, "--memory-budget", "0")
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1


class TestObservabilityFlags:
    def test_run_writes_trace_and_metrics(self, tmp_path):
        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.json")
        code, text, _ = run_cli(
            "run", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "400",
            "--parallelism", "16",
            "--trace", trace, "--metrics", metrics,
        )
        assert code == 0
        assert f"trace -> {trace}" in text
        assert f"metrics -> {metrics}" in text

        with open(trace) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, "trace has no spans"
        for e in spans:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        cats = {e["cat"] for e in spans}
        assert {"job", "stage", "task"} <= cats

        with open(metrics) as fh:
            snap = json.load(fh)
        assert "shuffle.local_bytes" in snap["counters"]
        assert "shuffle.remote_bytes" in snap["counters"]
        assert "scheduler.speculative_launches" in snap["counters"]

    def test_compare_writes_trace_and_metrics(self, tmp_path):
        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.json")
        code, text, _ = run_cli(
            "compare", "wordcount",
            "--virtual-gb", "1.0", "--physical-records", "400",
            "--parallelism", "16",
            "--grid", "8", "32", "--scales", "1.0",
            "--trace", trace, "--metrics", metrics,
        )
        assert code == 0
        assert "improvement:" in text
        with open(trace) as fh:
            doc = json.load(fh)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # The pipeline phases and the vanilla/chopper runs all land on
        # one timeline as driver-lane spans.
        run_labels = {e["name"] for e in spans if e["cat"] == "run"}
        assert "vanilla" in run_labels and "chopper" in run_labels
        phase_labels = {e["name"] for e in spans if e["cat"] == "chopper"}
        assert {"profile", "train", "optimize"} <= phase_labels
        with open(metrics) as fh:
            snap = json.load(fh)
        assert "scheduler.tasks_completed" in snap["counters"]


WC_FAST = (
    "wordcount", "--virtual-gb", "1.0", "--physical-records", "400",
    "--parallelism", "16",
)


class TestLedgerCommands:
    def ledger_with_two_runs(self, tmp_path):
        ledger = str(tmp_path / "runs.jsonl")
        for _ in range(2):
            code, text, _ = run_cli("run", *WC_FAST, "--ledger", ledger)
            assert code == 0
        return ledger

    def test_run_appends_ledger_entries(self, tmp_path):
        ledger = self.ledger_with_two_runs(tmp_path)
        with open(ledger) as fh:
            entries = [json.loads(line) for line in fh]
        assert [e["run_id"] for e in entries] == [
            "0000-wordcount-run", "0001-wordcount-run",
        ]
        entry = entries[0]
        assert entry["stages"] and entry["jobs"]
        assert entry["config"]["default_parallelism"] == 16
        map_stage = next(
            s for s in entry["stages"] if s["kind"] == "shuffle_map"
        )
        assert len(map_stage["output_partition_bytes"]) == 16

    def test_report_renders_ledger_run_as_html(self, tmp_path):
        ledger = self.ledger_with_two_runs(tmp_path)
        out_path = str(tmp_path / "report.html")
        code, text, _ = run_cli("report", ledger, "--out", out_path)
        assert code == 0
        assert f"-> {out_path}" in text
        with open(out_path) as fh:
            html = fh.read()
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<html") == html.count("</html>") == 1
        assert "<svg" in html  # the stage waterfall
        assert "0001-wordcount-run" in html  # defaults to the latest run

    def test_report_selects_run_and_writes_stdout(self, tmp_path):
        ledger = self.ledger_with_two_runs(tmp_path)
        code, html, _ = run_cli("report", ledger, "--run", "0000-wordcount-run")
        assert code == 0
        assert html.startswith("<!DOCTYPE html>")
        assert "0000-wordcount-run" in html

    def test_report_still_reads_history_files(self, tmp_path):
        history = str(tmp_path / "run.jsonl")
        code, _, _ = run_cli("run", *WC_FAST, "--history", history)
        assert code == 0
        code, text, _ = run_cli("report", history)
        assert code == 0
        assert "total stage span" in text

    def test_diff_runs_identical_exit_zero(self, tmp_path):
        ledger = self.ledger_with_two_runs(tmp_path)
        code, text, _ = run_cli(
            "diff-runs", ledger, "0000-wordcount-run", "0001-wordcount-run"
        )
        assert code == 0
        assert "ok: no regression" in text

    def test_diff_runs_regression_exit_nonzero(self, tmp_path):
        ledger = str(tmp_path / "runs.jsonl")
        code, _, _ = run_cli("run", *WC_FAST, "--ledger", ledger)
        assert code == 0
        # Degrade the candidate: half the parallelism makes the run
        # materially slower than the 16-partition baseline.
        code, _, _ = run_cli(
            "run", "wordcount", "--virtual-gb", "1.0",
            "--physical-records", "400", "--parallelism", "8",
            "--ledger", ledger,
        )
        assert code == 0
        code, text, _ = run_cli(
            "diff-runs", ledger, "0000-wordcount-run", "0001-wordcount-run",
            "--threshold", "0.2",
        )
        assert code == 1
        assert "REGRESSION" in text
        # The same pair passes with a huge tolerance.
        code, _, _ = run_cli(
            "diff-runs", ledger, "0000-wordcount-run", "0001-wordcount-run",
            "--threshold", "1000", "--shuffle-threshold", "1000",
        )
        assert code == 0

    def test_profile_ledger_records_every_sweep_run(self, tmp_path):
        ledger = str(tmp_path / "runs.jsonl")
        db = str(tmp_path / "db.json")
        code, _, _ = run_cli(
            "profile", *WC_FAST, "--db", db,
            "--grid", "8", "16", "--scales", "1.0", "--ledger", ledger,
        )
        assert code == 0
        with open(ledger) as fh:
            entries = [json.loads(line) for line in fh]
        # 1 reference + 2 kinds x 2 grid points.
        assert len(entries) == 5
        labels = {e["label"] for e in entries}
        assert "reference@1.0" in labels
        assert any(label.startswith("profile-hash-") for label in labels)


class TestLedgerErrorHandling:
    def test_report_missing_ledger_one_line_error(self, tmp_path):
        code, text, err = run_cli("report", str(tmp_path / "missing.jsonl"))
        assert code == 2
        assert text == ""
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_report_corrupt_ledger_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        code, _, err = run_cli("report", str(bad))
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_report_empty_file_one_line_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, _, err = run_cli("report", str(empty))
        assert code == 2
        assert "empty" in err
        assert err.count("\n") == 1

    def test_report_unknown_run_one_line_error(self, tmp_path):
        ledger = str(tmp_path / "runs.jsonl")
        code, _, _ = run_cli("run", *WC_FAST, "--ledger", ledger)
        assert code == 0
        code, _, err = run_cli("report", ledger, "--run", "9999-nope-run")
        assert code == 2
        assert err.startswith("error: ")
        assert "9999-nope-run" in err
        assert err.count("\n") == 1

    def test_diff_runs_missing_ledger_one_line_error(self, tmp_path):
        code, _, err = run_cli(
            "diff-runs", str(tmp_path / "missing.jsonl"), "a", "b"
        )
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_diff_runs_unknown_run_one_line_error(self, tmp_path):
        ledger = str(tmp_path / "runs.jsonl")
        code, _, _ = run_cli("run", *WC_FAST, "--ledger", ledger)
        assert code == 0
        code, _, err = run_cli("diff-runs", ledger, "0000-wordcount-run", "nope")
        assert code == 2
        assert err.startswith("error: ")
        assert "nope" in err
        assert err.count("\n") == 1

    def test_diff_runs_corrupt_ledger_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"run_id": "0000-w-a"}\n{broken\n')
        code, _, err = run_cli("diff-runs", str(bad), "0000-w-a", "0001-w-b")
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

class TestTelemetryCli:
    def run_with_telemetry(self, tmp_path):
        log = str(tmp_path / "run.log")
        metrics = str(tmp_path / "metrics.json")
        code, text, _ = run_cli(
            "run", *WC_FAST, "--log", log, "--metrics", metrics, "--profile",
        )
        return code, text, log, metrics

    def test_run_writes_log_and_profile_summary(self, tmp_path):
        code, text, log, _ = self.run_with_telemetry(tmp_path)
        assert code == 0
        assert f"log -> {log} (" in text
        assert "records)" in text
        assert "profile: wall " in text
        assert "health: task_retries=0" in text

    def test_log_file_is_jsonl_with_monotone_seq(self, tmp_path):
        code, _, log, _ = self.run_with_telemetry(tmp_path)
        assert code == 0
        with open(log) as fh:
            records = [json.loads(line) for line in fh]
        assert records
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert all("event" in r and "logger" in r for r in records)

    def test_logs_command_formats_and_tails(self, tmp_path):
        _, _, log, _ = self.run_with_telemetry(tmp_path)
        code, text, _ = run_cli("logs", log, "--tail", "3")
        assert code == 0
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert all("t=" in line for line in lines)

        code, text, _ = run_cli("logs", log, "--event", "stage_submitted")
        assert code == 0
        assert "stage_submitted" in text
        assert "task_executed" not in text

    def test_logs_rejects_unknown_level(self, tmp_path):
        _, _, log, _ = self.run_with_telemetry(tmp_path)
        code, text, err = run_cli("logs", log, "--level", "LOUD")
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_logs_rejects_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.log"
        bad.write_text('{"seq": 0}\n{oops\n')
        code, _, err = run_cli("logs", str(bad))
        assert code == 2
        assert "2" in err  # names the offending line number

    def test_export_metrics_prometheus(self, tmp_path):
        from repro.obs.export import validate_prometheus

        _, _, _, metrics = self.run_with_telemetry(tmp_path)
        code, text, _ = run_cli("export-metrics", metrics)
        assert code == 0
        assert validate_prometheus(text) > 0
        assert "# TYPE scheduler_tasks_completed_total counter" in text

    def test_export_metrics_otlp(self, tmp_path):
        _, _, _, metrics = self.run_with_telemetry(tmp_path)
        out_path = str(tmp_path / "otlp.json")
        code, text, _ = run_cli(
            "export-metrics", metrics, "--otlp", "--out", out_path
        )
        assert code == 0
        assert f"-> {out_path}" in text
        with open(out_path) as fh:
            doc = json.load(fh)
        assert doc["resourceMetrics"]

    def test_export_metrics_rejects_non_snapshot(self, tmp_path):
        bogus = tmp_path / "trace.json"
        bogus.write_text(json.dumps({"traceEvents": []}))
        code, _, err = run_cli("export-metrics", str(bogus))
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_health_line_includes_cache_counters(self, tmp_path):
        _, text, _, _ = self.run_with_telemetry(tmp_path)
        assert "hits=" in text
        assert "misses=" in text
        assert "partitions_pruned=" in text

    def test_cache_counters_export_round_trip(self, tmp_path):
        metrics = str(tmp_path / "m.json")
        code, _, _ = run_cli(
            "run", "sql", "--physical-records", "1200", "--parallelism", "8",
            "--max-order", "150", "--cache", "sqlite",
            "--cache-path", str(tmp_path / "q.db"), "--metrics", metrics,
        )
        assert code == 0
        code, text, _ = run_cli("export-metrics", metrics)
        assert code == 0
        assert "cache_misses_total" in text


SQL_FAST = ("sql", "--physical-records", "1200", "--parallelism", "8")


class TestCacheCli:
    def cold_run(self, tmp_path, *extra):
        path = str(tmp_path / "q.db")
        code, text, err = run_cli(
            "run", *SQL_FAST, "--max-order", "150",
            "--cache", "sqlite", "--cache-path", path,
            "--metrics", str(tmp_path / "m.json"), *extra,
        )
        assert code == 0, err
        return path, text

    def test_warm_run_hits_and_prunes(self, tmp_path):
        path, cold_text = self.cold_run(tmp_path)
        assert "misses=1" in cold_text
        _, warm_text = self.cold_run(tmp_path)
        assert "hits=1" in warm_text
        assert "partitions_pruned=0" not in warm_text

    def test_cache_stats_and_inspect(self, tmp_path):
        path, _ = self.cold_run(tmp_path)
        code, text, _ = run_cli("cache", "stats", path)
        assert code == 0
        assert "backend: sqlite" in text
        assert "entries: 1" in text
        assert "orders" in text
        code, text, _ = run_cli("cache", "inspect", path)
        assert code == 0
        assert "table=orders" in text

    def test_cache_export_and_clear(self, tmp_path):
        path, _ = self.cold_run(tmp_path)
        out_path = str(tmp_path / "dump.json")
        code, text, _ = run_cli("cache", "export", path, "--out", out_path)
        assert code == 0
        with open(out_path) as fh:
            doc = json.load(fh)
        assert doc["backend"] == "sqlite"
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["table"] == "orders"
        code, text, _ = run_cli("cache", "clear", path)
        assert code == 0
        assert "cleared 1 entries" in text
        code, text, _ = run_cli("cache", "stats", path)
        assert "entries: 0" in text

    def test_explain_shows_pruning_decisions(self, tmp_path):
        path, _ = self.cold_run(tmp_path)
        code, text, _ = run_cli(
            "explain", *SQL_FAST, "--max-order", "150",
            "--cache", "sqlite", "--cache-path", path,
        )
        assert code == 0
        assert "== Partition pruning ==" in text
        assert "pruned via" in text
        # And explain must not poison the cache for later runs.
        _, warm_text = self.cold_run(tmp_path)
        assert "hits=1" in warm_text

    def test_explain_without_cache_matches_run_flags(self, tmp_path):
        code, text, _ = run_cli("explain", *SQL_FAST, "--max-order", "150")
        assert code == 0
        assert "Filter" in text

    def test_no_prune_flag_disables_pruning(self, tmp_path):
        path, _ = self.cold_run(tmp_path)
        _, warm_text = self.cold_run(tmp_path, "--no-prune")
        assert "partitions_pruned=0" in warm_text

    def test_unknown_backend_one_line_error(self, tmp_path):
        code, _, err = run_cli(
            "run", *SQL_FAST, "--cache", "redis",
            "--cache-path", str(tmp_path / "x"),
        )
        assert code == 2
        assert err.startswith("error: ")
        assert "redis" in err
        assert "sqlite" in err  # suggests the valid names
        assert err.count("\n") == 1

    def test_file_backend_without_path_one_line_error(self):
        code, _, err = run_cli("run", *SQL_FAST, "--cache", "sqlite")
        assert code == 2
        assert err.startswith("error: ")
        assert "cache path" in err
        assert err.count("\n") == 1

    def test_memory_backend_with_path_one_line_error(self, tmp_path):
        code, _, err = run_cli(
            "run", *SQL_FAST, "--cache", "memory",
            "--cache-path", str(tmp_path / "x"),
        )
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_cache_cmd_missing_file_one_line_error(self, tmp_path):
        code, _, err = run_cli("cache", "stats", str(tmp_path / "missing.db"))
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_cache_cmd_unrecognized_file_one_line_error(self, tmp_path):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"what even is this")
        code, _, err = run_cli("cache", "stats", str(junk))
        assert code == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1

    def test_max_order_rejected_for_non_sql(self):
        code, _, err = run_cli("run", *WC_FAST, "--max-order", "5")
        assert code == 2
        assert err.startswith("error: ")
        assert "--max-order" in err
        assert err.count("\n") == 1

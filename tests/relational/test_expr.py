"""Tests for relational column expressions."""

import pytest

from repro.common.errors import WorkloadError
from repro.relational.expr import avg, col, count_, lit, max_, min_, sum_

SCHEMA = ["a", "b", "c"]
ROW = (10, 3, "x")


def ev(expr, row=ROW, schema=SCHEMA):
    return expr.bind(schema)(row)


class TestColAndLit:
    def test_col_lookup(self):
        assert ev(col("a")) == 10
        assert ev(col("c")) == "x"

    def test_missing_column(self):
        with pytest.raises(KeyError):
            col("zz").bind(SCHEMA)

    def test_lit(self):
        assert ev(lit(42)) == 42


class TestArithmetic:
    def test_operators(self):
        assert ev(col("a") + col("b")) == 13
        assert ev(col("a") - 1) == 9
        assert ev(col("a") * 2) == 20
        assert ev(col("a") / 4) == 2.5
        assert ev(col("a") % 3) == 1

    def test_reflected(self):
        assert ev(1 + col("b")) == 4
        assert ev(20 - col("a")) == 10
        assert ev(3 * col("b")) == 9


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert ev(col("a") > 5) is True
        assert ev(col("a") <= 9) is False
        assert ev(col("c") == "x") is True
        assert ev(col("b") != 3) is False

    def test_boolean_logic(self):
        assert ev((col("a") > 5) & (col("b") < 10)) is True
        assert ev((col("a") > 50) | (col("b") == 3)) is True
        assert ev(~(col("a") > 5)) is False


class TestMeta:
    def test_references(self):
        expr = (col("a") + col("b")) > lit(0)
        assert expr.references() == {"a", "b"}

    def test_alias_label(self):
        assert (col("a") * 2).alias("double").label == "double"
        assert col("a").label == "a"


class TestAggregates:
    def run_agg(self, agg, values):
        acc = None
        for v in values:
            acc = agg.create(v) if acc is None else agg.merge_value(acc, v)
        return agg.finish(acc)

    def test_sum(self):
        assert self.run_agg(sum_(col("a")), [1, 2, 3]) == 6

    def test_count(self):
        assert self.run_agg(count_(), [0, 0, 0, 0]) == 4

    def test_min_max(self):
        assert self.run_agg(min_(col("a")), [5, 2, 9]) == 2
        assert self.run_agg(max_(col("a")), [5, 2, 9]) == 9

    def test_avg(self):
        assert self.run_agg(avg(col("a")), [2, 4, 6]) == pytest.approx(4.0)

    def test_merge_combiners(self):
        agg = avg(col("a"))
        left = agg.create(2)
        right = agg.merge_value(agg.create(4), 6)
        assert agg.finish(agg.merge(left, right)) == pytest.approx(4.0)


class TestNullSemantics:
    """SQL NULL handling: COUNT(col) skips NULLs, COUNT(*) does not,
    and sum/min/max/avg ignore NULL inputs."""

    run_agg = TestAggregates.run_agg

    def test_count_col_skips_nulls(self):
        assert self.run_agg(count_(col("a")), [1, None, 3, None]) == 2
        assert self.run_agg(count_(col("a")), [None, None]) == 0

    def test_count_star_counts_every_row(self):
        assert self.run_agg(count_(), [1, None, 3, None]) == 4

    def test_sum_skips_nulls(self):
        assert self.run_agg(sum_(col("a")), [1, None, 3]) == 4
        assert self.run_agg(sum_(col("a")), [None, None]) is None

    def test_min_max_skip_nulls(self):
        assert self.run_agg(min_(col("a")), [None, 5, None, 2]) == 2
        assert self.run_agg(max_(col("a")), [None, 5, None, 2]) == 5
        assert self.run_agg(min_(col("a")), [None]) is None

    def test_avg_skips_nulls(self):
        assert self.run_agg(avg(col("a")), [2, None, 4]) == pytest.approx(3.0)
        assert self.run_agg(avg(col("a")), [None, None]) is None

    def test_merge_combiners_with_null_side(self):
        agg = sum_(col("a"))
        assert agg.finish(agg.merge(agg.create(None), agg.create(3))) == 3


class TestStructuralEquality:
    """``==`` builds a predicate, so Python equality protocols (``in``,
    ``list.index``) must fail loudly; ``same_as`` is the identity check."""

    def test_membership_check_raises(self):
        with pytest.raises(WorkloadError, match="same_as"):
            col("a") in [col("a"), col("b")]

    def test_bool_coercion_raises(self):
        with pytest.raises(WorkloadError):
            bool(col("a") == col("a"))

    def test_same_as_compares_structure(self):
        assert col("a").same_as(col("a"))
        assert not col("a").same_as(col("b"))
        assert (col("a") + 1).same_as(col("a") + 1)
        assert not (col("a") + 1).same_as(col("a") + 2)
        assert not (col("a") + 1).same_as(col("a") - 1)

    def test_same_as_sees_alias_and_literal_type(self):
        assert not col("a").alias("x").same_as(col("a").alias("y"))
        assert not lit(1).same_as(lit(True))

    def test_agg_same_as(self):
        assert sum_(col("a")).same_as(sum_(col("a")))
        assert not sum_(col("a")).same_as(sum_(col("b")))
        assert not sum_(col("a")).same_as(sum_(col("a")).alias("s"))

    def test_substitution(self):
        expr = (col("a") + col("b")) > lit(0)
        sub = expr.substitute({"a": col("x") * 2})
        assert sub.references() == {"x", "b"}
        assert expr.references() == {"a", "b"}  # original untouched

"""Tests for relational column expressions."""

import pytest

from repro.relational.expr import avg, col, count_, lit, max_, min_, sum_

SCHEMA = ["a", "b", "c"]
ROW = (10, 3, "x")


def ev(expr, row=ROW, schema=SCHEMA):
    return expr.bind(schema)(row)


class TestColAndLit:
    def test_col_lookup(self):
        assert ev(col("a")) == 10
        assert ev(col("c")) == "x"

    def test_missing_column(self):
        with pytest.raises(KeyError):
            col("zz").bind(SCHEMA)

    def test_lit(self):
        assert ev(lit(42)) == 42


class TestArithmetic:
    def test_operators(self):
        assert ev(col("a") + col("b")) == 13
        assert ev(col("a") - 1) == 9
        assert ev(col("a") * 2) == 20
        assert ev(col("a") / 4) == 2.5
        assert ev(col("a") % 3) == 1

    def test_reflected(self):
        assert ev(1 + col("b")) == 4
        assert ev(20 - col("a")) == 10
        assert ev(3 * col("b")) == 9


class TestComparisonsAndLogic:
    def test_comparisons(self):
        assert ev(col("a") > 5) is True
        assert ev(col("a") <= 9) is False
        assert ev(col("c") == "x") is True
        assert ev(col("b") != 3) is False

    def test_boolean_logic(self):
        assert ev((col("a") > 5) & (col("b") < 10)) is True
        assert ev((col("a") > 50) | (col("b") == 3)) is True
        assert ev(~(col("a") > 5)) is False


class TestMeta:
    def test_references(self):
        expr = (col("a") + col("b")) > lit(0)
        assert expr.references() == {"a", "b"}

    def test_alias_label(self):
        assert (col("a") * 2).alias("double").label == "double"
        assert col("a").label == "a"


class TestAggregates:
    def run_agg(self, agg, values):
        acc = None
        for v in values:
            acc = agg.create(v) if acc is None else agg.merge_value(acc, v)
        return agg.finish(acc)

    def test_sum(self):
        assert self.run_agg(sum_(col("a")), [1, 2, 3]) == 6

    def test_count(self):
        assert self.run_agg(count_(), [0, 0, 0, 0]) == 4

    def test_min_max(self):
        assert self.run_agg(min_(col("a")), [5, 2, 9]) == 2
        assert self.run_agg(max_(col("a")), [5, 2, 9]) == 9

    def test_avg(self):
        assert self.run_agg(avg(col("a")), [2, 4, 6]) == pytest.approx(4.0)

    def test_merge_combiners(self):
        agg = avg(col("a"))
        left = agg.create(2)
        right = agg.merge_value(agg.create(4), 6)
        assert agg.finish(agg.merge(left, right)) == pytest.approx(4.0)

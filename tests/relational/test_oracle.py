"""Property tests: relational queries vs a pure-Python evaluator."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.relational import Table, avg, col, count_, max_, min_, sum_


def fresh_ctx():
    return AnalyticsContext(
        uniform_cluster(n_workers=2, cores=2), EngineConf(default_parallelism=4)
    )


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),          # key
        st.integers(-50, 50),       # value
        st.sampled_from("abc"),     # category
    ),
    min_size=0,
    max_size=40,
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, threshold=st.integers(-50, 50))
def test_filter_project_matches_python(rows, threshold):
    ctx = fresh_ctx()
    table = Table.from_rows(ctx, rows, ["k", "v", "cat"], 3)
    out = (
        table.where(col("v") > threshold)
        .select("k", (col("v") * 2).alias("vv"))
        .collect()
    )
    expected = [(k, v * 2) for k, v, _c in rows if v > threshold]
    assert sorted(out) == sorted(expected)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy)
def test_group_aggregates_match_python(rows):
    ctx = fresh_ctx()
    table = Table.from_rows(ctx, rows, ["k", "v", "cat"], 3)
    out = table.group_by("k").agg(
        count_(), sum_(col("v")), min_(col("v")), max_(col("v")), avg(col("v"))
    ).collect()

    expected = {}
    for k, v, _c in rows:
        acc = expected.setdefault(k, [0, 0, None, None])
        acc[0] += 1
        acc[1] += v
        acc[2] = v if acc[2] is None else min(acc[2], v)
        acc[3] = v if acc[3] is None else max(acc[3], v)

    assert len(out) == len(expected)
    for k, n, total, lo, hi, mean in out:
        e = expected[k]
        assert (n, total, lo, hi) == tuple(e)
        assert abs(mean - e[1] / e[0]) < 1e-9


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(left=rows_strategy, right=rows_strategy)
def test_join_matches_python(left, right):
    ctx = fresh_ctx()
    lt = Table.from_rows(ctx, left, ["k", "v", "cat"], 2)
    rt = Table.from_rows(
        ctx, [(k, c) for k, _v, c in right], ["k", "rcat"], 2
    )
    out = lt.join(rt, on="k").collect()
    expected = [
        (k, v, c, rc)
        for k, v, c in left
        for rk, _rv, rc in right
        if rk == k
    ]
    assert sorted(out) == sorted(expected)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy)
def test_order_by_matches_python(rows):
    ctx = fresh_ctx()
    table = Table.from_rows(ctx, rows, ["k", "v", "cat"], 3)
    out = table.order_by("v").collect()
    assert [r[1] for r in out] == sorted(r[1] for r in rows)

"""Optimized vs unoptimized lowering must collect identical rows.

The rewrite batches are only allowed to change *how* a query runs
(fewer stages, narrower shuffles), never *what* it returns — CI gates
on the same property over the full workloads. These tests drive the
property on randomized inputs, under threaded physical execution, and
through a node-loss recovery.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.relational import Table, avg, col, count_, sum_


def fresh_ctx(**conf):
    return AnalyticsContext(
        uniform_cluster(n_workers=4, cores=2),
        EngineConf(default_parallelism=4, **conf),
    )


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),          # key
        st.integers(-50, 50),       # value
        st.sampled_from("abc"),     # category
    ),
    min_size=0,
    max_size=40,
)

RIGHT = [(k, k % 3) for k in range(6)]


def build_query(ctx, rows, threshold, optimize):
    """Project + filter + hand-tuned repartition + join + agg + sort:
    every rewrite rule gets something to chew on."""
    t = Table.from_rows(ctx, rows, ["k", "v", "cat"], 3, optimize=optimize)
    r = Table.from_rows(ctx, RIGHT, ["k", "grp"], 2, optimize=optimize)
    return (
        t.select("k", "v", "cat")
        .where(col("v") > threshold)
        .join(r.repartition(4), on="k")
        .group_by("grp")
        .agg(sum_(col("v")).alias("total"), count_(col("v")), avg(col("v")))
        .order_by("grp")
    )


def run_both(rows, threshold, **conf):
    out = []
    for optimize in (True, False):
        ctx = fresh_ctx(**conf)
        out.append(build_query(ctx, rows, threshold, optimize).collect())
    return out


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, threshold=st.integers(-50, 50))
def test_optimized_matches_unoptimized(rows, threshold):
    opt, raw = run_both(rows, threshold)
    assert opt == raw  # bit-identical, order included


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, threshold=st.integers(-50, 50))
def test_identical_under_threaded_execution(rows, threshold):
    opt, raw = run_both(rows, threshold, physical_parallelism=4)
    serial_opt, _ = run_both(rows, threshold)
    assert opt == raw
    assert opt == serial_opt


def test_identical_through_node_loss():
    rows = [(i % 5, i, "abc"[i % 3]) for i in range(60)]
    chaos = dict(
        node_failure_times={"w0": 0.2},
        node_recovery_delay=5.0,
    )
    opt, raw = run_both(rows, 3, **chaos)
    clean_opt, _ = run_both(rows, 3)
    assert opt == raw
    assert opt == clean_opt


def test_optimizer_removes_stages_and_records_hits():
    rows = [(i % 5, i, "abc"[i % 3]) for i in range(60)]

    def run(optimize):
        ctx = fresh_ctx()
        build_query(ctx, rows, 3, optimize).collect()
        stages = sum(len(j.stages) for j in ctx.job_stats)
        return stages, list(ctx.plan_events)

    opt_stages, opt_events = run(True)
    raw_stages, raw_events = run(False)
    assert opt_stages < raw_stages
    assert raw_events == []
    hits = {}
    for event in opt_events:
        for name, n in event["rule_hits"].items():
            hits[name] = hits.get(name, 0) + n
    assert sum(hits.values()) > 0
    assert hits.get("DropRepartition", 0) >= 1


def test_conf_flag_controls_default(monkeypatch):
    monkeypatch.setenv("REPRO_LOGICAL_OPT", "0")
    ctx = fresh_ctx()
    assert ctx.conf.logical_optimizer is False
    t = Table.from_rows(ctx, [(1, 2)], ["a", "b"], 1)
    t.select("a").collect()
    assert ctx.plan_events == []

    monkeypatch.delenv("REPRO_LOGICAL_OPT")
    ctx = fresh_ctx()
    assert ctx.conf.logical_optimizer is True
    t = Table.from_rows(ctx, [(1, 2)], ["a", "b"], 1)
    t.select("a", "b").select("a").collect()
    assert len(ctx.plan_events) == 1

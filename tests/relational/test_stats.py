"""Zone-map statistics and conservative predicate evaluation."""

import numpy as np

from repro.relational import col, lit
from repro.relational.stats import (
    ColumnStats,
    RangeLayout,
    can_match,
    collect_column_stats,
)


def stats_of(values, column="x"):
    rows = [(v,) for v in values]
    return collect_column_stats(rows, [column])[column]


class TestCollectColumnStats:
    def test_numeric_min_max(self):
        s = stats_of([3, 1, 2])
        assert (s.low, s.high) == (1, 3)
        assert s.count == 3
        assert s.null_count == 0

    def test_vectorized_matches_scalar(self):
        values = list(np.arange(1000)[::-1])
        s = stats_of(values)
        assert (s.low, s.high) == (0, 999)

    def test_nulls_counted_and_excluded_from_bounds(self):
        s = stats_of([None, 5, None, 7])
        assert s.null_count == 2
        assert (s.low, s.high) == (5, 7)

    def test_all_null_column(self):
        s = stats_of([None, None, None])
        assert s.null_count == 3
        assert s.low is None and s.high is None

    def test_empty_partition(self):
        s = stats_of([])
        assert s.count == 0

    def test_incomparable_values_leave_bounds_open(self):
        s = stats_of([1, "a", 2.5])
        assert s.low is None and s.high is None
        assert s.count == 3

    def test_nan_excluded_from_bounds(self):
        # NaN compares False against everything, so np.min/min would
        # return order-dependent garbage; bounds come from the finite
        # values and the NaN rows are counted separately.
        s = stats_of([float("nan"), 5.0])
        assert (s.low, s.high) == (5.0, 5.0)
        assert s.nan_count == 1
        assert s.null_count == 0

    def test_all_nan_column_unbounded(self):
        s = stats_of([float("nan"), np.nan])
        assert s.low is None and s.high is None
        assert s.nan_count == 2

    def test_distinct_estimate(self):
        s = stats_of([1, 1, 2, 2, 3])
        assert s.distinct == 3

    def test_multiple_columns(self):
        rows = [(1, "a"), (2, "b")]
        by_col = collect_column_stats(rows, ["id", "name"])
        assert by_col["id"].high == 2
        assert by_col["name"].low == "a"


class TestCanMatch:
    def test_prunes_outside_range(self):
        maps = {"x": stats_of([10, 20])}
        assert not can_match(col("x") < lit(10), maps)
        assert not can_match(col("x") > lit(20), maps)
        assert can_match(col("x") <= lit(10), maps)
        assert can_match(col("x") >= lit(20), maps)
        assert can_match(col("x") == lit(15), maps)
        assert not can_match(col("x") == lit(5), maps)

    def test_flipped_operands(self):
        maps = {"x": stats_of([10, 20])}
        assert not can_match(lit(30) < col("x"), maps)
        assert can_match(lit(15) < col("x"), maps)

    def test_empty_partition_never_matches(self):
        maps = {"x": stats_of([])}
        assert not can_match(col("x") == lit(1), maps)
        assert not can_match(col("x") != lit(1), maps)

    def test_all_null_partition(self):
        maps = {"x": stats_of([None, None])}
        # NULL == anything is no-match, and != is True in Python. An
        # ordered comparison against None *raises* at runtime, so the
        # partition must be kept — pruning would silence the TypeError.
        assert not can_match(col("x") == lit(1), maps)
        assert can_match(col("x") < lit(1), maps)
        assert can_match(col("x") != lit(1), maps)

    def test_nulls_with_ordered_predicate_kept(self):
        # An ordered comparison against None raises at runtime; the
        # pruner must never claim such a partition is skippable.
        maps = {"x": stats_of([None, 5])}
        assert can_match(col("x") < lit(3), maps)

    def test_not_equal_all_same_value(self):
        maps = {"x": stats_of([7, 7, 7])}
        assert not can_match(col("x") != lit(7), maps)
        assert can_match(col("x") != lit(8), maps)

    def test_nan_rows_never_unsound(self):
        # The REVIEW.md repro: [nan, 5.0] under x < 100 must keep the
        # partition — the 5.0 row matches. With NaN folded into the
        # bounds every comparison against nan is False and the
        # partition would be pruned, silently dropping the row.
        maps = {"x": stats_of([float("nan"), 5.0])}
        assert can_match(col("x") < lit(100.0), maps)
        assert can_match(col("x") == lit(5.0), maps)
        # nan != x is True, so != survives even when the finite bounds
        # alone would refute it.
        assert can_match(col("x") != lit(5.0), maps)
        # The finite bounds still prune what they soundly can: a NaN
        # row itself can never satisfy an ordered/== predicate.
        assert not can_match(col("x") > lit(100.0), maps)
        assert not can_match(col("x") == lit(6.0), maps)

    def test_all_nan_partition_conservative(self):
        maps = {"x": stats_of([float("nan"), float("nan")])}
        # Unbounded: ordered/== read as "cannot tell", != as True.
        assert can_match(col("x") < lit(1.0), maps)
        assert can_match(col("x") != lit(1.0), maps)

    def test_and_or_composition(self):
        maps = {"x": stats_of([10, 20]), "y": stats_of([1, 2])}
        both = (col("x") > lit(5)) & (col("y") > lit(5))
        either = (col("x") > lit(5)) | (col("y") > lit(5))
        assert not can_match(both, maps)
        assert can_match(either, maps)

    def test_unknown_column_conservative(self):
        maps = {"x": stats_of([1, 2])}
        assert can_match(col("z") == lit(99), maps)

    def test_incomparable_literal_conservative(self):
        maps = {"x": stats_of([1, 2])}
        assert can_match(col("x") < lit("zebra"), maps)

    def test_unknown_expression_shape_conservative(self):
        maps = {"x": stats_of([1, 2])}
        assert can_match(col("x") == col("x"), maps)


class TestRangeLayout:
    def layout(self):
        # bounds [10, 20] -> partitions (-inf,10], (10,20], (20,+inf)
        return RangeLayout(column="x", bounds=(10, 20))

    def test_num_partitions(self):
        assert self.layout().num_partitions == 3

    def test_kept_partitions_point_lookup(self):
        assert self.layout().kept_partitions(col("x") == lit(5), 3) == {0}
        assert self.layout().kept_partitions(col("x") == lit(15), 3) == {1}
        assert self.layout().kept_partitions(col("x") == lit(25), 3) == {2}

    def test_kept_partitions_range(self):
        kept = self.layout().kept_partitions(col("x") < lit(12), 3)
        assert kept == {0, 1}

    def test_boundary_value_on_bound_keeps_both_neighbors(self):
        # Half-open (lo, hi] intervals are widened to closed [lo, hi]
        # before evaluation (a sound superset), so a point exactly on a
        # bound conservatively keeps the buckets on both sides — and
        # nothing else.
        assert self.layout().kept_partitions(col("x") == lit(10), 3) == {0, 1}

    def test_duplicate_bounds(self):
        layout = RangeLayout(column="x", bounds=(10, 10, 20))
        assert layout.num_partitions == 4
        # The middle (10, 10] interval is empty but must never break
        # pruning; a point at 10 keeps only buckets that can touch 10.
        kept = layout.kept_partitions(col("x") == lit(10), 4)
        assert 0 in kept
        assert kept == {0, 1, 2}
        # And a point past every duplicate still prunes the low buckets.
        assert layout.kept_partitions(col("x") == lit(15), 4) == {2}

    def test_single_partition_table(self):
        layout = RangeLayout(column="x", bounds=())
        assert layout.num_partitions == 1
        assert layout.kept_partitions(col("x") == lit(42), 1) == {0}

    def test_partition_count_mismatch_keeps_all(self):
        kept = self.layout().kept_partitions(col("x") == lit(5), 7)
        assert kept == set(range(7))

    def test_unrelated_column_keeps_all(self):
        kept = self.layout().kept_partitions(col("y") == lit(5), 3)
        assert kept == {0, 1, 2}


class TestColumnStatsDict:
    def test_round_trip_fields(self):
        s = ColumnStats(count=3, null_count=1, low=1, high=5, distinct=2)
        d = s.to_dict()
        assert d["count"] == 3 and d["high"] == 5

"""Partition pruning / result cache bit-identity oracle.

Pruning and the result cache are only allowed to change *which tasks
schedule*, never *what a query returns*: rows must be bit-identical with
pruning on or off, cold or warm, under threaded and process-parallel
execution, AQE, node-loss chaos, and with the logical optimizer
disabled outright.
"""

import json
import os
import subprocess
import sys

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.obs import LedgerCollector, MetricsRegistry
from repro.relational import RangeLayout, Table, col, lit
from repro.workloads import SQLWorkload

PER_SPLIT = 25
N_SPLITS = 8


def make_ctx(**conf):
    conf.setdefault("default_parallelism", N_SPLITS)
    return AnalyticsContext(
        uniform_cluster(n_workers=4, cores=2),
        EngineConf(**conf),
        metrics_registry=MetricsRegistry(),
    )


def id_source(ctx, version="v1"):
    """Splits hold contiguous id ranges: split i = [i*25, (i+1)*25)."""

    def gen(split, splits):
        lo = (split * PER_SPLIT * N_SPLITS) // splits
        hi = ((split + 1) * PER_SPLIT * N_SPLITS) // splits
        return [(i, i * 2) for i in range(lo, hi)]

    return ctx.source(gen, N_SPLITS, op_name="ids", version=version)


def run_query(ctx, limit=40, layout=None, optimize=True):
    # optimize=True pins the prune rewrite under test regardless of the
    # session's REPRO_LOGICAL_OPT; the opt-disabled oracle passes None.
    table = Table.from_rdd(
        id_source(ctx), ["id", "val"], layout=layout, optimize=optimize
    )
    return table.where(col("id") < lit(limit)).collect()


def pruned_total(ctx):
    return ctx.obs.metrics.counter_total("scan.partitions_pruned")


class TestInContextPruning:
    def test_second_query_prunes_and_matches_first(self):
        ctx = make_ctx()
        cold = run_query(ctx)
        assert pruned_total(ctx) == 0  # no zone maps yet
        warm = run_query(ctx)
        assert pruned_total(ctx) > 0  # zone maps collected by the cold run
        assert warm == cold
        ctx.close()

    def test_matches_pruning_disabled(self):
        ctx_on = make_ctx()
        run_query(ctx_on)
        warm = run_query(ctx_on)
        ctx_off = make_ctx(partition_pruning=False)
        run_query(ctx_off)
        unpruned = run_query(ctx_off)
        assert pruned_total(ctx_off) == 0
        assert warm == unpruned
        ctx_on.close()
        ctx_off.close()

    def test_range_layout_prunes_cold(self):
        bounds = tuple(PER_SPLIT * (i + 1) - 1 for i in range(N_SPLITS - 1))
        layout = RangeLayout(column="id", bounds=bounds)
        ctx = make_ctx()
        rows = run_query(ctx, layout=layout)
        assert pruned_total(ctx) > 0  # pruned with no prior run
        plain = make_ctx()
        assert rows == run_query(plain)
        ctx.close()
        plain.close()

    def test_empty_result_still_schedules_one_task(self):
        ctx = make_ctx()
        run_query(ctx)
        assert run_query(ctx, limit=-1) == []
        ctx.close()

    def test_nan_rows_never_pruned_away(self):
        """Float columns with NaN: warm pruning must keep the partition
        holding the finite match (NaN used to poison the zone-map
        bounds, pruning the partition and dropping its 5.0 row)."""

        def gen(split, splits):
            if split == 0:
                return [(float("nan"), 0), (5.0, 1)]
            return [(float(1000 + split), split)]

        def query(ctx):
            rdd = ctx.source(gen, 4, op_name="nans", version="v1")
            table = Table.from_rdd(rdd, ["x", "tag"], optimize=True)
            # NaN rows fail the filter, so results are NaN-free and
            # plainly comparable.
            return table.where(col("x") < lit(100.0)).collect()

        ctx = make_ctx()
        cold = query(ctx)
        warm = query(ctx)  # zone maps collected: splits 1-3 prunable
        assert pruned_total(ctx) > 0
        off = make_ctx(partition_pruning=False)
        query(off)
        base = query(off)
        assert cold == warm == base == [(5.0, 1)]
        ctx.close()
        off.close()


class TestExplainDryRun:
    def test_explain_moves_no_counters_or_cache_state(self):
        ctx = make_ctx(result_cache="memory")
        table = Table.from_rdd(id_source(ctx), ["id", "val"], optimize=True)
        query = table.where(col("id") < lit(40))
        query.collect()  # cold run: one counted miss, zone maps recorded
        ctx.query_cache.flush(ctx.zone_maps)  # write the entry, as close would
        before = (
            ctx.query_cache.hits,
            ctx.query_cache.misses,
            pruned_total(ctx),
            ctx.obs.metrics.counter_total("cache.hits"),
            ctx.obs.metrics.counter_total("cache.misses"),
        )
        text = query.explain()
        # Explain still reports the full decision, cached set included...
        assert "Partition pruning" in text
        assert "cache" in text
        # ...but as a pure observer: no hit/miss counted, no pruned
        # counter moved, no LRU touch, no pending miss registered.
        after = (
            ctx.query_cache.hits,
            ctx.query_cache.misses,
            pruned_total(ctx),
            ctx.obs.metrics.counter_total("cache.hits"),
            ctx.obs.metrics.counter_total("cache.misses"),
        )
        assert after == before
        assert ctx.query_cache.stats()["pending"] == 0
        assert all(e.hits == 0 for e in ctx.query_cache.backend.entries())
        ctx.close()


class TestExecutionModes:
    def warm_fingerprint(self, optimize=True, **conf):
        ctx = make_ctx(**conf)
        cold = run_query(ctx, optimize=optimize)
        warm = run_query(ctx, optimize=optimize)
        now = ctx.now
        ctx.close()
        return cold, warm, now

    def test_threads4_identical_to_serial(self):
        serial = self.warm_fingerprint()
        threaded = self.warm_fingerprint(physical_parallelism=4)
        assert threaded == serial

    def test_aqe_rows_identical(self):
        cold, warm, _ = self.warm_fingerprint(adaptive_execution=True)
        base_cold, base_warm, _ = self.warm_fingerprint()
        assert cold == base_cold
        assert warm == base_warm

    def test_node_loss_chaos_rows_identical(self):
        cold, warm, _ = self.warm_fingerprint(
            node_failure_times={"w0": 0.01}, node_recovery_delay=5.0
        )
        base_cold, base_warm, _ = self.warm_fingerprint()
        assert cold == base_cold
        assert warm == base_warm

    def test_logical_opt_disabled(self, monkeypatch):
        # optimize=None honors the env var: raw lowering, no pruning —
        # rows must still match the optimized-and-pruned baseline.
        monkeypatch.setenv("REPRO_LOGICAL_OPT", "0")
        cold, warm, _ = self.warm_fingerprint(optimize=None)
        monkeypatch.delenv("REPRO_LOGICAL_OPT")
        base_cold, base_warm, _ = self.warm_fingerprint()
        assert cold == base_cold
        assert warm == base_warm


WORKER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import SQLWorkload

ctx = AnalyticsContext(
    uniform_cluster(n_workers=4, cores=2),
    EngineConf(default_parallelism=8, result_cache="bitmap",
               result_cache_path={path!r}),
)
wl = SQLWorkload(physical_records=1200, max_order=150, optimize=True)
result = wl.run(ctx, scale=0.2)
hits = ctx.query_cache.hits
ctx.close()
print(json.dumps({{"rows": repr(result.value), "hits": hits}}))
"""


class TestProcessParallelism:
    def test_procs4_share_a_bitmap_cache(self, tmp_path):
        """Four concurrent processes over one warm bitmap cache all
        return the serial answer (and actually hit the cache)."""
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        src = os.path.abspath(src)
        path = str(tmp_path / "shared.bitmap")
        script = WORKER.format(src=src, path=path)

        # Seed the cache with one in-process cold run.
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=4, cores=2),
            EngineConf(default_parallelism=8, result_cache="bitmap",
                       result_cache_path=path),
        )
        workload = SQLWorkload(physical_records=1200, max_order=150,
                               optimize=True)
        serial = workload.run(ctx, scale=0.2)
        ctx.close()

        env = dict(os.environ, PYTHONHASHSEED="0")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            )
            for _ in range(4)
        ]
        outputs = []
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()
            outputs.append(json.loads(out.decode()))
        for payload in outputs:
            assert payload["rows"] == repr(serial.value)
            assert payload["hits"] >= 1  # warm: the seeded entry was used


class TestSQLWorkloadWarmRuns:
    def run_sql(self, tmp_path, tag, **wl_kwargs):
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=4, cores=2),
            EngineConf(
                default_parallelism=16,
                result_cache="sqlite",
                result_cache_path=str(tmp_path / "q.db"),
            ),
            metrics_registry=MetricsRegistry(),
        )
        collector = LedgerCollector().attach(ctx)
        workload = SQLWorkload(physical_records=1600, max_order=200,
                               optimize=True, **wl_kwargs)
        result = workload.run(ctx, scale=0.2)
        collector.detach()
        stats = {
            "rows": result.value,
            "now": ctx.now,
            "scan_tasks": sum(
                s["num_partitions"] for s in collector.stages
            ),
            "pruned": sum(s["pruned_partitions"] for s in collector.stages),
            "hits": ctx.query_cache.hits,
            "ledger_cache": collector.body()["partition_cache"],
        }
        ctx.close()
        return stats

    def test_warm_prunes_and_speeds_up(self, tmp_path):
        cold = self.run_sql(tmp_path, "cold")
        warm = self.run_sql(tmp_path, "warm")
        assert warm["rows"] == cold["rows"]
        assert cold["hits"] == 0 and warm["hits"] == 1
        assert cold["pruned"] == 0 and warm["pruned"] > 0
        # Strictly fewer partitions scheduled, strictly faster.
        assert warm["scan_tasks"] < cold["scan_tasks"]
        assert warm["now"] < cold["now"]
        # The ledger surfaces both the cache stats and zone-map coverage.
        assert warm["ledger_cache"]["cache"]["hits"] == 1
        assert any(
            t["table"] == "orders"
            for t in warm["ledger_cache"]["zone_maps"]
        )

    def test_hash_layout_cannot_prune(self, tmp_path):
        cold = self.run_sql(tmp_path, "cold", orders_layout="hash")
        warm = self.run_sql(tmp_path, "warm", orders_layout="hash")
        assert warm["rows"] == cold["rows"]
        assert warm["hits"] == 1  # the cache still hits...
        assert warm["pruned"] == 0  # ...but scrambled ids prove nothing

"""Logical-plan and rewrite-rule tests (golden explain() snapshots)."""

import textwrap

import pytest

from repro.common.errors import WorkloadError
from repro.relational import Table, col, count_, sum_
from repro.relational.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Project,
    Repartition,
    Scan,
    Sort,
    count_nodes,
    render_plan,
)
from repro.relational.rules import default_rule_runner

ORDERS = [
    (1, "ann", "widget", 10.0),
    (2, "bob", "widget", 20.0),
    (3, "ann", "gizmo", 5.0),
    (4, "cho", "gizmo", 2.5),
    (5, "ann", "widget", 7.5),
]
ORDER_SCHEMA = ["order_id", "cust", "product", "amount"]

CUSTOMERS = [("ann", "east"), ("bob", "west"), ("cho", "east")]
CUSTOMER_SCHEMA = ["cust", "region"]


# optimize=True pins the behavior under test: these tests inspect the
# rewritten plans regardless of the session's REPRO_LOGICAL_OPT.
@pytest.fixture
def orders(ctx):
    return Table.from_rows(
        ctx, ORDERS, ORDER_SCHEMA, 3, name="orders", optimize=True
    )


@pytest.fixture
def customers(ctx):
    return Table.from_rows(
        ctx, CUSTOMERS, CUSTOMER_SCHEMA, 2, name="customers", optimize=True
    )


def optimized(table):
    plan, stats = default_rule_runner().optimize(table.plan)
    return plan, stats


def golden(text):
    return textwrap.dedent(text).strip()


class TestExplainSnapshots:
    def test_sql_shaped_query(self, orders):
        query = (
            orders.select("cust", "product", "amount")
            .where(col("amount") > 5)
            .group_by("cust")
            .agg(sum_(col("amount")).alias("rev"))
            .order_by("rev")
        )
        assert query.explain() == golden("""
            == Logical plan ==
            Sort [rev]
              Aggregate [cust] aggs=[sum(amount) AS rev]
                Filter (col('amount') > lit(5))
                  Project [cust, product, amount]
                    Scan orders [order_id, cust, product, amount]

            == Optimized plan ==
            Sort [rev]
              Aggregate [cust] aggs=[sum(amount) AS rev]
                Project [cust, amount]
                  Filter (col('amount') > lit(5))
                    Scan orders [order_id, cust, product, amount]

            rules applied: PruneColumns: 1, PushDownPredicates: 1
        """)

    def test_explain_off_shows_logical_only(self, orders):
        query = Table(orders.plan, optimize=False).where(col("amount") > 5)
        text = query.explain()
        assert "== Logical plan ==" in text
        assert "== Optimized plan ==" not in text

    def test_no_op_query_reports_no_rules(self, orders):
        text = orders.where(col("amount") > 5).explain()
        assert "rules applied: none" in text


class TestPushDownPredicates:
    def test_through_project_substitutes(self, orders):
        query = orders.select(
            "cust", (col("amount") * 2).alias("double")
        ).where(col("double") > 10)
        plan, stats = optimized(query)
        assert stats.rule_hits["PushDownPredicates"] == 1
        assert render_plan(plan) == golden("""
            Project [cust, (col('amount') * lit(2)) AS double]
              Filter ((col('amount') * lit(2)) > lit(10))
                Scan orders [order_id, cust, product, amount]
        """)

    def test_below_sort(self, orders):
        query = orders.order_by("amount").where(col("amount") > 5)
        plan, _ = optimized(query)
        assert isinstance(plan, Sort)
        assert isinstance(plan.child, Filter)

    def test_into_aggregate_keys(self, orders):
        query = (
            orders.group_by("cust")
            .agg(sum_(col("amount")))
            .where(col("cust") != "bob")
        )
        plan, _ = optimized(query)
        assert isinstance(plan, Aggregate)
        assert isinstance(plan.child, Filter)

    def test_aggregate_output_predicate_stays_put(self, orders):
        query = (
            orders.group_by("cust")
            .agg(sum_(col("amount")).alias("rev"))
            .where(col("rev") > 10)
        )
        plan, _ = optimized(query)
        assert isinstance(plan, Filter)
        assert isinstance(plan.child, Aggregate)

    def test_key_predicate_filters_both_join_sides(self, orders, customers):
        query = orders.join(customers, on="cust").where(col("cust") != "bob")
        plan, _ = optimized(query)
        assert isinstance(plan, Join)
        assert isinstance(plan.left, Filter)
        assert isinstance(plan.right, Filter)

    def test_side_predicate_filters_one_side(self, orders, customers):
        query = orders.join(customers, on="cust").where(
            col("region") == "east"
        )
        plan, _ = optimized(query)
        assert isinstance(plan, Join)
        assert not isinstance(plan.left, Filter)
        assert isinstance(plan.right, Filter)

    def test_pushdown_preserves_rows(self, orders, customers):
        query = orders.join(customers, on="cust").where(
            (col("region") == "east") & (col("amount") > 3)
        )
        raw = Table(query.plan, optimize=False).collect()
        assert sorted(query.collect()) == sorted(raw)


class TestStructuralRules:
    def test_fold_projections(self, orders):
        query = orders.select("cust", "product", "amount").select(
            "cust", "amount"
        )
        plan, stats = optimized(query)
        assert stats.rule_hits["FoldProjections"] >= 1
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Scan)

    def test_identity_projection_dropped(self, orders):
        query = orders.select(*ORDER_SCHEMA)
        plan, _ = optimized(query)
        assert isinstance(plan, Scan)

    def test_repartition_before_aggregate_elided(self, orders):
        query = (
            orders.repartition(6).group_by("cust").agg(sum_(col("amount")))
        )
        plan, stats = optimized(query)
        assert stats.rule_hits["DropRepartition"] == 1
        assert isinstance(plan, Aggregate)
        assert not isinstance(plan.child, Repartition)

    def test_repartition_on_join_side_elided(self, orders, customers):
        query = orders.join(customers.repartition(4), on="cust")
        plan, stats = optimized(query)
        assert stats.rule_hits["DropRepartition"] == 1
        assert isinstance(plan.right, Scan)

    def test_back_to_back_repartitions_merge(self, orders):
        query = orders.repartition(4).repartition(2)
        plan, _ = optimized(query)
        assert isinstance(plan, Repartition)
        assert plan.n == 2
        assert isinstance(plan.child, Scan)

    def test_duplicate_sorts_collapse(self, orders):
        query = orders.order_by("amount").order_by("amount")
        plan, stats = optimized(query)
        assert stats.rule_hits["CollapseSorts"] == 1
        assert isinstance(plan, Sort)
        assert isinstance(plan.child, Scan)

    def test_different_sorts_kept(self, orders):
        query = orders.order_by("amount").order_by("cust")
        plan, _ = optimized(query)
        assert isinstance(plan, Sort) and isinstance(plan.child, Sort)

    def test_limit_pushes_below_project(self, orders):
        plan = Limit(orders.select("cust", "amount").plan, 2)
        out, stats = default_rule_runner().optimize(plan)
        assert stats.rule_hits["PushDownLimit"] == 1
        assert isinstance(out, Project)
        assert isinstance(out.child, Limit)

    def test_adjacent_limits_merge(self, orders):
        plan = Limit(Limit(orders.plan, 2), 5)
        out, _ = default_rule_runner().optimize(plan)
        assert isinstance(out, Limit) and out.n == 2
        assert isinstance(out.child, Scan)


class TestPruneColumns:
    def test_join_side_narrowed(self, ctx):
        wide = Table.from_rows(
            ctx,
            [(1, "a", "x", 9)],
            ["k", "a", "b", "c"],
            1,
            name="wide",
        )
        keys = Table.from_rows(ctx, [(1, "u")], ["k", "u"], 1, name="keys")
        query = keys.join(wide, on="k").select("k", "u", "a")
        plan, stats = optimized(query)
        assert stats.rule_hits["PruneColumns"] >= 1
        # The wide side enters the join as Project [k, a]: b and c never
        # cross the shuffle.
        join = plan.child if isinstance(plan, Project) else plan
        assert isinstance(join.right, Project)
        assert join.right.schema() == ("k", "a")
        assert query.collect() == [(1, "u", "a")]

    def test_root_schema_never_narrowed(self, orders):
        plan, _ = optimized(orders)
        assert plan.schema() == tuple(ORDER_SCHEMA)


class TestPlanNodes:
    def test_duplicate_output_names_rejected(self, orders):
        with pytest.raises(WorkloadError, match="duplicate column"):
            orders.select(col("cust"), col("amount").alias("cust"))

    def test_unknown_column_fails_at_build_time(self, orders):
        with pytest.raises(KeyError, match="zz"):
            orders.select("zz")
        with pytest.raises(KeyError, match="zz"):
            orders.where(col("zz") > 0)

    def test_same_as_is_structural(self, orders):
        a = orders.where(col("amount") > 5).plan
        b = orders.where(col("amount") > 5).plan
        c = orders.where(col("amount") > 6).plan
        assert a.same_as(b)
        assert not a.same_as(c)

    def test_count_nodes(self, orders):
        plan = orders.where(col("amount") > 5).select("cust").plan
        assert count_nodes(plan) == 3

    def test_negative_limit_rejected(self, orders):
        with pytest.raises(WorkloadError):
            Limit(orders.plan, -1)

    def test_fixed_partitions_survive_optimization(self, orders):
        query = orders.repartition(6).group_by("cust").agg(
            count_(), num_partitions=5
        )
        plan, _ = optimized(query)
        assert isinstance(plan, Aggregate)
        assert plan.num_partitions == 5

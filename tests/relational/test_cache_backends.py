"""Result-cache backends: round-trip, eviction, TTL, sniffing, errors."""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigurationError
from repro.relational import col, lit
from repro.relational.cache import (
    BITMAP_MAGIC,
    CacheEntry,
    MemoryCacheBackend,
    ResultCacheManager,
    open_backend,
    query_signature,
    sniff_backend,
)


def entry(key="k1", partitions=(0, 2, 5), n=8, **kwargs):
    return CacheEntry(
        key=key, table="orders", version="v1", num_partitions=n,
        partitions=tuple(partitions), **kwargs,
    )


def make_backend(kind, tmp_path, **kwargs):
    path = None
    if kind != "memory":
        path = str(tmp_path / f"cache.{kind}")
    return open_backend(kind, path=path, **kwargs)


BACKENDS = ["memory", "sqlite", "bitmap"]


class TestQuerySignature:
    def test_deterministic(self):
        a = query_signature("plan", "orders", "v1", 8, col("x") < lit(5))
        b = query_signature("plan", "orders", "v1", 8, col("x") < lit(5))
        assert a == b

    def test_sensitive_to_every_component(self):
        base = query_signature("plan", "orders", "v1", 8, col("x") < lit(5))
        assert base != query_signature("plan2", "orders", "v1", 8, col("x") < lit(5))
        assert base != query_signature("plan", "other", "v1", 8, col("x") < lit(5))
        assert base != query_signature("plan", "orders", "v2", 8, col("x") < lit(5))
        assert base != query_signature("plan", "orders", "v1", 9, col("x") < lit(5))
        # Predicate constants are part of the variant.
        assert base != query_signature("plan", "orders", "v1", 8, col("x") < lit(6))


@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendRoundTrip:
    def test_put_get(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put(entry())
        got = backend.get("k1")
        assert got is not None
        assert got.partitions == (0, 2, 5)
        assert got.table == "orders"
        assert got.hits == 1  # get() counts the hit
        backend.close()

    def test_get_missing(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        assert backend.get("nope") is None
        backend.close()

    def test_delete_and_clear(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put(entry("a"))
        backend.put(entry("b"))
        assert backend.delete("a") is True
        assert backend.delete("a") is False
        assert backend.clear() == 1
        assert backend.entries() == []
        backend.close()

    def test_lru_eviction(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path, max_entries=2)
        backend.put(entry("a"))
        backend.put(entry("b"))
        backend.get("a")  # refresh a; b becomes LRU
        backend.put(entry("c"))
        keys = {e.key for e in backend.entries()}
        assert keys == {"a", "c"}
        backend.close()

    def test_ttl_expiry_with_injected_clock(self, kind, tmp_path):
        ticks = iter(range(1, 100))
        backend = make_backend(
            kind, tmp_path, ttl=5.0, clock=lambda: float(next(ticks))
        )
        backend.put(entry("a"))  # created at t=1
        assert backend.get("a") is not None  # t=2: alive
        for _ in range(6):
            next(ticks)
        assert backend.get("a") is None  # past ttl: expired and dropped
        assert backend.entries() == []
        backend.close()

    def test_empty_partition_set(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put(entry("e", partitions=()))
        got = backend.get("e")
        assert got is not None and got.partitions == ()
        backend.close()

    def test_peek_is_read_only(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path, max_entries=2)
        backend.put(entry("a"))
        backend.put(entry("b"))
        got = backend.peek("a")
        assert got is not None and got.partitions == (0, 2, 5)
        assert got.hits == 0  # no hit counted
        assert backend.peek("nope") is None
        # Unlike get(), peek must not refresh recency: "a" stays LRU
        # and is the one evicted by the next put.
        backend.put(entry("c"))
        assert {e.key for e in backend.entries()} == {"b", "c"}
        backend.close()

    def test_peek_hides_expired_without_deleting(self, kind, tmp_path):
        ticks = iter(range(1, 100))
        backend = make_backend(
            kind, tmp_path, ttl=5.0, clock=lambda: float(next(ticks))
        )
        backend.put(entry("a"))  # created at t=1
        for _ in range(6):
            next(ticks)
        assert backend.peek("a") is None  # expired for readers...
        assert len(backend.entries()) == 1  # ...but not dropped
        backend.close()


class TestPersistence:
    @pytest.mark.parametrize("kind", ["sqlite", "bitmap"])
    def test_survives_reopen(self, kind, tmp_path):
        path = str(tmp_path / f"c.{kind}")
        backend = open_backend(kind, path=path)
        backend.put(entry("a"))
        backend.close()
        reopened = open_backend(kind, path=path)
        got = reopened.get("a")
        assert got is not None and got.partitions == (0, 2, 5)
        reopened.close()

    @pytest.mark.parametrize("kind", ["sqlite", "bitmap"])
    def test_sniff_backend(self, kind, tmp_path):
        path = str(tmp_path / f"c.{kind}")
        backend = open_backend(kind, path=path)
        backend.put(entry("a"))
        backend.close()
        assert sniff_backend(path) == kind

    def test_sniff_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            sniff_backend(str(tmp_path / "missing.db"))

    def test_sniff_unrecognized(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not a cache file")
        with pytest.raises(ConfigurationError):
            sniff_backend(str(path))

    def test_bitmap_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "c.bitmap"
        path.write_bytes(b"XXXX{}")
        with pytest.raises(ConfigurationError):
            open_backend("bitmap", path=str(path))

    def test_bitmap_corrupt_payload_rejected(self, tmp_path):
        path = tmp_path / "c.bitmap"
        path.write_bytes(BITMAP_MAGIC + b"{truncated")
        with pytest.raises(ConfigurationError):
            open_backend("bitmap", path=str(path)).entries()

    def test_bitmap_round_trips_wide_tables(self, tmp_path):
        path = str(tmp_path / "c.bitmap")
        backend = open_backend("bitmap", path=path)
        parts = tuple(range(0, 300, 7))
        backend.put(entry("wide", partitions=parts, n=300))
        assert backend.get("wide").partitions == parts
        backend.close()

    def test_sqlite_touch_preserves_concurrent_writes(self, tmp_path):
        # A lookup's LRU touch must only update its own row: entries
        # another process wrote between our load and the touch have to
        # survive (a full delete-and-rewrite from the stale snapshot
        # would silently drop them).
        path = str(tmp_path / "c.sqlite")
        ours = open_backend("sqlite", path=path)
        ours.put(entry("a"))
        stale = ours._load()  # snapshot taken before "b" exists
        theirs = open_backend("sqlite", path=path)
        theirs.put(entry("b"))
        theirs.close()
        touched = replace(stale["a"], hits=5)
        ours._touch_stored(touched, stale)
        keys = {e.key for e in ours.entries()}
        assert keys == {"a", "b"}  # "b" not clobbered by the touch
        assert ours.peek("a").hits == 5
        ours.close()

    def test_bitmap_get_is_write_behind(self, tmp_path):
        # Hits must not rewrite the file; the touch persists at the
        # next put or at close.
        path = str(tmp_path / "c.bitmap")
        backend = open_backend("bitmap", path=path)
        backend.put(entry("a"))
        before = open(path, "rb").read()
        assert backend.get("a").hits == 1
        assert open(path, "rb").read() == before  # untouched on disk
        backend.close()  # flushes the pending touch
        reopened = open_backend("bitmap", path=path)
        got = reopened.peek("a")
        assert got is not None and got.hits == 1
        reopened.close()

    def test_bitmap_put_flushes_pending_touches(self, tmp_path):
        path = str(tmp_path / "c.bitmap")
        backend = open_backend("bitmap", path=path)
        backend.put(entry("a"))
        backend.get("a")
        backend.put(entry("b"))  # full write carries the touch along
        backend.close()
        reopened = open_backend("bitmap", path=path)
        assert reopened.peek("a").hits == 1
        reopened.close()


class TestOpenBackendErrors:
    def test_unknown_kind(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown cache backend"):
            open_backend("redis", path=str(tmp_path / "x"))

    def test_memory_with_path(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not take"):
            open_backend("memory", path=str(tmp_path / "x"))

    @pytest.mark.parametrize("kind", ["sqlite", "bitmap"])
    def test_file_backend_without_path(self, kind):
        with pytest.raises(ConfigurationError, match="requires a cache path"):
            open_backend(kind)


class TestResultCacheManager:
    def predicate(self):
        return col("order_id") < lit(100)

    def test_miss_then_flush_then_hit(self):
        from repro.engine.storage import ZoneMapStore
        from repro.relational.stats import ColumnStats

        manager = ResultCacheManager(MemoryCacheBackend())
        pred = self.predicate()
        key = query_signature("p", "orders", "v1", 4, pred)
        assert manager.lookup(key, "orders", "v1", 4, pred) is None
        assert manager.misses == 1

        store = ZoneMapStore()
        for split in range(4):
            lo = split * 100
            store.put(
                ("orders", "v1", 4), split,
                {"order_id": ColumnStats(
                    count=10, null_count=0, low=lo, high=lo + 99, distinct=10,
                )},
            )
        assert manager.flush(store) == 1
        got = manager.lookup(key, "orders", "v1", 4, pred)
        assert got == {0}
        assert manager.hits == 1

    def test_flush_skips_unexecuted_scans(self):
        from repro.engine.storage import ZoneMapStore

        manager = ResultCacheManager(MemoryCacheBackend())
        pred = self.predicate()
        key = query_signature("p", "orders", "v1", 4, pred)
        manager.lookup(key, "orders", "v1", 4, pred)
        # No zone maps collected (e.g. `repro explain`): nothing written.
        assert manager.flush(ZoneMapStore()) == 0

    def test_version_mismatch_is_a_miss(self):
        manager = ResultCacheManager(MemoryCacheBackend())
        pred = self.predicate()
        key = query_signature("p", "orders", "v1", 4, pred)
        manager.backend.put(
            CacheEntry(key=key, table="orders", version="OLD",
                       num_partitions=4, partitions=(0,))
        )
        assert manager.lookup(key, "orders", "v1", 4, pred) is None
        assert manager.misses == 1

    def test_stats_shape(self):
        manager = ResultCacheManager(MemoryCacheBackend())
        s = manager.stats()
        assert s["backend"] == "memory"
        assert {"hits", "misses", "pending", "entries"} <= set(s)

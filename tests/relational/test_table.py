"""Tests for the relational Table layer."""

import pytest

from repro.common.errors import WorkloadError
from repro.relational import Table, avg, col, count_, lit, sum_

ORDERS = [
    (1, "ann", "widget", 10.0),
    (2, "bob", "widget", 20.0),
    (3, "ann", "gizmo", 5.0),
    (4, "cho", "gizmo", 2.5),
    (5, "ann", "widget", 7.5),
]
ORDER_SCHEMA = ["order_id", "cust", "product", "amount"]

CUSTOMERS = [("ann", "east"), ("bob", "west"), ("cho", "east")]
CUSTOMER_SCHEMA = ["cust", "region"]


@pytest.fixture
def orders(ctx):
    return Table.from_rows(ctx, ORDERS, ORDER_SCHEMA, 3, name="orders")


@pytest.fixture
def customers(ctx):
    return Table.from_rows(ctx, CUSTOMERS, CUSTOMER_SCHEMA, 2, name="customers")


class TestConstruction:
    def test_arity_checked(self, ctx):
        with pytest.raises(WorkloadError):
            Table.from_rows(ctx, [(1, 2)], ["a"], 1)

    def test_duplicate_columns_rejected(self, ctx):
        with pytest.raises(WorkloadError):
            Table.from_rows(ctx, [(1, 2)], ["a", "a"], 1)

    def test_count_and_collect(self, orders):
        assert orders.count() == 5
        assert sorted(orders.collect()) == sorted(ORDERS)


class TestRowOps:
    def test_select_names(self, orders):
        out = orders.select("cust", "amount").collect()
        assert sorted(out) == sorted((r[1], r[3]) for r in ORDERS)

    def test_select_expressions(self, orders):
        out = orders.select(
            col("order_id"), (col("amount") * 2).alias("double")
        )
        assert out.schema == ("order_id", "double")
        assert dict(out.collect())[1] == 20.0

    def test_where(self, orders):
        out = orders.where(col("amount") >= 7.5).count()
        assert out == 3

    def test_where_compound(self, orders):
        out = orders.where(
            (col("product") == "widget") & (col("amount") > 10)
        ).collect()
        assert out == [(2, "bob", "widget", 20.0)]

    def test_with_column_appends(self, orders):
        out = orders.with_column("tax", col("amount") * 0.1)
        assert out.schema[-1] == "tax"
        rows = {r[0]: r[-1] for r in out.collect()}
        assert rows[2] == pytest.approx(2.0)

    def test_with_column_replaces(self, orders):
        out = orders.with_column("amount", col("amount") + 1)
        assert out.schema == orders.schema
        amounts = {r[0]: r[3] for r in out.collect()}
        assert amounts[1] == 11.0


class TestGroupBy:
    def test_sum_per_key(self, orders):
        out = (
            orders.group_by("cust")
            .agg(sum_(col("amount")).alias("revenue"))
            .collect()
        )
        assert dict((k, v) for k, v in out) == {
            "ann": 22.5, "bob": 20.0, "cho": 2.5,
        }

    def test_multiple_aggregates(self, orders):
        out = orders.group_by("product").agg(
            count_(), sum_(col("amount")), avg(col("amount"))
        )
        assert out.schema == ("product", "count(lit(1))", "sum(amount)", "avg(amount)")
        rows = {r[0]: r[1:] for r in out.collect()}
        assert rows["widget"] == (3, 37.5, pytest.approx(12.5))

    def test_group_by_expression(self, orders):
        out = (
            orders.group_by((col("order_id") % 2).alias("parity"))
            .agg(count_())
            .collect()
        )
        assert dict(out) == {0: 2, 1: 3}

    def test_empty_args_rejected(self, orders):
        with pytest.raises(WorkloadError):
            orders.group_by()
        with pytest.raises(WorkloadError):
            orders.group_by("cust").agg()


class TestJoin:
    def test_inner_join(self, orders, customers):
        out = orders.join(customers, on="cust")
        assert out.schema == (
            "cust", "order_id", "product", "amount", "region"
        )
        regions = {r[1]: r[4] for r in out.collect()}
        assert regions[1] == "east" and regions[2] == "west"

    def test_join_then_aggregate(self, orders, customers):
        revenue = (
            orders.join(customers, on="cust")
            .group_by("region")
            .agg(sum_(col("amount")).alias("revenue"))
            .collect()
        )
        assert dict(revenue) == {"east": 25.0, "west": 20.0}

    def test_missing_key_rejected(self, orders, customers):
        with pytest.raises(WorkloadError):
            orders.join(customers, on="region")


class TestOrderingAndDisplay:
    def test_order_by(self, orders):
        out = orders.order_by("amount").collect()
        amounts = [r[3] for r in out]
        assert amounts == sorted(amounts)

    def test_order_by_expression(self, orders):
        out = orders.order_by((lit(0) - col("amount")).alias("neg")).collect()
        amounts = [r[3] for r in out]
        assert amounts == sorted(amounts, reverse=True)

    def test_limit(self, orders):
        assert len(orders.limit(2)) == 2

    def test_show(self, orders):
        text = orders.show(3)
        assert "order_id" in text
        assert text.count("\n") >= 3


class TestJoinCollisions:
    def test_right_columns_gain_suffix(self, ctx):
        left = Table.from_rows(
            ctx, [(1, "lv", "lx")], ["k", "v", "x"], 1, name="left"
        )
        right = Table.from_rows(
            ctx, [(1, "rv", "rx")], ["k", "v", "x"], 1, name="right"
        )
        out = left.join(right, on="k")
        assert out.schema == ("k", "v", "x", "v_r", "x_r")
        assert out.collect() == [(1, "lv", "lx", "rv", "rx")]

    def test_suffix_itself_collides(self, ctx):
        """A pre-existing `v_r` column forces a second suffix round."""
        left = Table.from_rows(
            ctx, [(1, "lv", "old")], ["k", "v", "v_r"], 1, name="left"
        )
        right = Table.from_rows(ctx, [(1, "rv")], ["k", "v"], 1, name="right")
        out = left.join(right, on="k")
        assert out.schema == ("k", "v", "v_r", "v_r_r")
        assert out.collect() == [(1, "lv", "old", "rv")]

    def test_rename_is_deterministic(self, ctx):
        left = Table.from_rows(ctx, [(1, "a")], ["k", "v"], 1)
        right = Table.from_rows(ctx, [(1, "b")], ["k", "v"], 1)
        first = left.join(right, on="k").schema
        second = left.join(right, on="k").schema
        assert first == second == ("k", "v", "v_r")

    def test_pushdown_filter_on_renamed_column(self, ctx):
        """Predicates on `v_r` must translate back to the right's `v`."""
        left = Table.from_rows(
            ctx, [(1, "a"), (2, "b")], ["k", "v"], 1, name="left"
        )
        right = Table.from_rows(
            ctx, [(1, "x"), (2, "y")], ["k", "v"], 1, name="right"
        )
        out = left.join(right, on="k").where(col("v_r") == "y")
        assert out.collect() == [(2, "b", "y")]


class TestNullRows:
    ROWS = [("a", 1.0), ("a", None), ("b", None), ("b", None), ("c", 3.0)]

    def test_count_column_vs_star(self, ctx):
        t = Table.from_rows(ctx, self.ROWS, ["k", "v"], 2)
        out = t.group_by("k").agg(count_(), count_(col("v"))).collect()
        assert sorted(out) == [("a", 2, 1), ("b", 2, 0), ("c", 1, 1)]

    def test_sum_and_avg_skip_nulls(self, ctx):
        t = Table.from_rows(ctx, self.ROWS, ["k", "v"], 2)
        out = t.group_by("k").agg(
            sum_(col("v")), avg(col("v"))
        ).collect()
        assert sorted(out) == [
            ("a", 1.0, 1.0), ("b", None, None), ("c", 3.0, 3.0),
        ]


class TestPartitioningPreservation:
    def test_key_preserving_select_keeps_partitioner(self, ctx, orders):
        agged = orders.group_by("cust").agg(sum_(col("amount")).alias("rev"))
        narrowed = agged.select("cust", "rev")
        assert narrowed.rdd.partitioner is not None

    def test_with_column_replace_keeps_partitioner(self, ctx, orders):
        agged = orders.group_by("cust").agg(sum_(col("amount")).alias("rev"))
        taxed = agged.with_column("rev", col("rev") * 0.9)
        assert taxed.rdd.partitioner is not None

    def test_key_dropping_select_forgets_partitioner(self, ctx, orders):
        agged = orders.group_by("cust").agg(sum_(col("amount")).alias("rev"))
        assert agged.select("rev").rdd.partitioner is None

    def test_key_rewriting_select_forgets_partitioner(self, ctx, orders):
        agged = orders.group_by("cust").agg(sum_(col("amount")).alias("rev"))
        rewritten = agged.select(
            (col("cust") + "!").alias("cust"), col("rev")
        )
        assert rewritten.rdd.partitioner is None

    @pytest.mark.parametrize("optimize", [True, False])
    def test_reaggregation_after_replace_is_narrow(self, ctx, optimize):
        """agg -> with_column(replace) -> agg must stay 2 stages: the
        second shuffle aligns with the first's partitioner."""
        rows = [(i % 4, float(i)) for i in range(20)]
        t = Table.from_rows(ctx, rows, ["k", "v"], 3, optimize=optimize)
        out = (
            t.group_by("k").agg(sum_(col("v")).alias("v"))
            .with_column("v", col("v") * 2)
            .group_by("k").agg(sum_(col("v")).alias("vv"))
        )
        result = out.collect()
        assert len(ctx.job_stats[-1].stages) == 2
        expected = {k: sum(v for kk, v in rows if kk == k) * 2
                    for k in range(4)}
        assert dict(result) == expected


class TestEngineIntegration:
    def test_query_is_ordinary_lineage(self, ctx, orders, customers):
        """The compiled query runs as normal stages CHOPPER could tune."""
        query = (
            orders.where(col("amount") > 1)
            .join(customers, on="cust")
            .group_by("region")
            .agg(sum_(col("amount")))
        )
        query.collect()
        kinds = [s.kind for s in ctx.job_stats[-1].stages]
        assert "shuffle_map" in kinds and kinds[-1] == "result"

    def test_aggregation_is_map_side_combined(self, ctx, orders):
        orders.group_by("cust").agg(sum_(col("amount"))).collect()
        map_stage = ctx.job_stats[-1].stages[0]
        # Combined output: at most one record per (map task, key).
        assert map_stage.shuffle_write_bytes > 0

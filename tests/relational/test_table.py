"""Tests for the relational Table layer."""

import pytest

from repro.common.errors import WorkloadError
from repro.relational import Table, avg, col, count_, lit, sum_

ORDERS = [
    (1, "ann", "widget", 10.0),
    (2, "bob", "widget", 20.0),
    (3, "ann", "gizmo", 5.0),
    (4, "cho", "gizmo", 2.5),
    (5, "ann", "widget", 7.5),
]
ORDER_SCHEMA = ["order_id", "cust", "product", "amount"]

CUSTOMERS = [("ann", "east"), ("bob", "west"), ("cho", "east")]
CUSTOMER_SCHEMA = ["cust", "region"]


@pytest.fixture
def orders(ctx):
    return Table.from_rows(ctx, ORDERS, ORDER_SCHEMA, 3, name="orders")


@pytest.fixture
def customers(ctx):
    return Table.from_rows(ctx, CUSTOMERS, CUSTOMER_SCHEMA, 2, name="customers")


class TestConstruction:
    def test_arity_checked(self, ctx):
        with pytest.raises(WorkloadError):
            Table.from_rows(ctx, [(1, 2)], ["a"], 1)

    def test_duplicate_columns_rejected(self, ctx):
        with pytest.raises(WorkloadError):
            Table.from_rows(ctx, [(1, 2)], ["a", "a"], 1)

    def test_count_and_collect(self, orders):
        assert orders.count() == 5
        assert sorted(orders.collect()) == sorted(ORDERS)


class TestRowOps:
    def test_select_names(self, orders):
        out = orders.select("cust", "amount").collect()
        assert sorted(out) == sorted((r[1], r[3]) for r in ORDERS)

    def test_select_expressions(self, orders):
        out = orders.select(
            col("order_id"), (col("amount") * 2).alias("double")
        )
        assert out.schema == ("order_id", "double")
        assert dict(out.collect())[1] == 20.0

    def test_where(self, orders):
        out = orders.where(col("amount") >= 7.5).count()
        assert out == 3

    def test_where_compound(self, orders):
        out = orders.where(
            (col("product") == "widget") & (col("amount") > 10)
        ).collect()
        assert out == [(2, "bob", "widget", 20.0)]

    def test_with_column_appends(self, orders):
        out = orders.with_column("tax", col("amount") * 0.1)
        assert out.schema[-1] == "tax"
        rows = {r[0]: r[-1] for r in out.collect()}
        assert rows[2] == pytest.approx(2.0)

    def test_with_column_replaces(self, orders):
        out = orders.with_column("amount", col("amount") + 1)
        assert out.schema == orders.schema
        amounts = {r[0]: r[3] for r in out.collect()}
        assert amounts[1] == 11.0


class TestGroupBy:
    def test_sum_per_key(self, orders):
        out = (
            orders.group_by("cust")
            .agg(sum_(col("amount")).alias("revenue"))
            .collect()
        )
        assert dict((k, v) for k, v in out) == {
            "ann": 22.5, "bob": 20.0, "cho": 2.5,
        }

    def test_multiple_aggregates(self, orders):
        out = orders.group_by("product").agg(
            count_(), sum_(col("amount")), avg(col("amount"))
        )
        assert out.schema == ("product", "count(lit(1))", "sum(amount)", "avg(amount)")
        rows = {r[0]: r[1:] for r in out.collect()}
        assert rows["widget"] == (3, 37.5, pytest.approx(12.5))

    def test_group_by_expression(self, orders):
        out = (
            orders.group_by((col("order_id") % 2).alias("parity"))
            .agg(count_())
            .collect()
        )
        assert dict(out) == {0: 2, 1: 3}

    def test_empty_args_rejected(self, orders):
        with pytest.raises(WorkloadError):
            orders.group_by()
        with pytest.raises(WorkloadError):
            orders.group_by("cust").agg()


class TestJoin:
    def test_inner_join(self, orders, customers):
        out = orders.join(customers, on="cust")
        assert out.schema == (
            "cust", "order_id", "product", "amount", "region"
        )
        regions = {r[1]: r[4] for r in out.collect()}
        assert regions[1] == "east" and regions[2] == "west"

    def test_join_then_aggregate(self, orders, customers):
        revenue = (
            orders.join(customers, on="cust")
            .group_by("region")
            .agg(sum_(col("amount")).alias("revenue"))
            .collect()
        )
        assert dict(revenue) == {"east": 25.0, "west": 20.0}

    def test_missing_key_rejected(self, orders, customers):
        with pytest.raises(WorkloadError):
            orders.join(customers, on="region")


class TestOrderingAndDisplay:
    def test_order_by(self, orders):
        out = orders.order_by("amount").collect()
        amounts = [r[3] for r in out]
        assert amounts == sorted(amounts)

    def test_order_by_expression(self, orders):
        out = orders.order_by((lit(0) - col("amount")).alias("neg")).collect()
        amounts = [r[3] for r in out]
        assert amounts == sorted(amounts, reverse=True)

    def test_limit(self, orders):
        assert len(orders.limit(2)) == 2

    def test_show(self, orders):
        text = orders.show(3)
        assert "order_id" in text
        assert text.count("\n") >= 3


class TestEngineIntegration:
    def test_query_is_ordinary_lineage(self, ctx, orders, customers):
        """The compiled query runs as normal stages CHOPPER could tune."""
        query = (
            orders.where(col("amount") > 1)
            .join(customers, on="cust")
            .group_by("region")
            .agg(sum_(col("amount")))
        )
        query.collect()
        kinds = [s.kind for s in ctx.job_stats[-1].stages]
        assert "shuffle_map" in kinds and kinds[-1] == "result"

    def test_aggregation_is_map_side_combined(self, ctx, orders):
        orders.group_by("cust").agg(sum_(col("amount"))).collect()
        map_stage = ctx.job_stats[-1].stages[0]
        # Combined output: at most one record per (map task, key).
        assert map_stage.shuffle_write_bytes > 0

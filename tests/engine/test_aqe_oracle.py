"""AQE determinism oracle: collected results identical AQE on/off.

The adaptive-execution contract is absolute: re-planning the reduce side
(coalesce, split, hash→range switch) may change *timing* but never a
collected value or its order — across serial execution, threaded task
bodies, process-pooled sweeps, and chaos node-loss recovery. Every test
here runs a skew-provoking pipeline twice and compares raw outputs.
"""

from __future__ import annotations

import json

import pytest

from repro.chopper import ChopperRunner
from repro.chopper.workload_db import WorkloadDB
from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.engine.partitioner import HashPartitioner
from repro.workloads import SQLWorkload, WordCountWorkload

# 50% of records carry key 0: the hash reduce side gets one partition
# ~8x its siblings, which trips split (identity pipelines), coalesce
# (tiny siblings), and switch (ordered pipelines) at the default knobs.
DATA = [((i % 40) if i % 2 else 0, i) for i in range(12000)]

AQE_KNOBS = dict(
    adaptive_execution=True,
    aqe_target_partition_bytes=16.0 * 1024,
    aqe_skew_threshold=2.0,
)


def quiet_cost() -> CostModelConfig:
    return CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0)


def run_pipeline(build, **conf_kwargs):
    conf_kwargs.setdefault("default_parallelism", 16)
    conf_kwargs.setdefault("cost", quiet_cost())
    ctx = AnalyticsContext(
        uniform_cluster(n_workers=3, cores=4), EngineConf(**conf_kwargs)
    )
    try:
        out = build(ctx)
        counters = {
            k: v[0]["value"]
            for k, v in ctx.obs.metrics.snapshot()["counters"].items()
            if k.startswith("aqe.") or k == "scheduler.stage_resubmissions"
        }
        return out, counters, ctx
    finally:
        ctx.close()


def pipe_identity_split(ctx):
    """Skewed identity shuffle + record-local chain: the split path."""
    return (
        ctx.parallelize(DATA, 8)
        .partition_by(HashPartitioner(16))
        .values()
        .map(lambda v: v * 2)
        .collect()
    )


def pipe_aggregate(ctx):
    """Map-side-combined fold: coalesce only (split-ineligible)."""
    return (
        ctx.parallelize(DATA, 8)
        .reduce_by_key(lambda a, b: a + b, 16)
        .collect()
    )


def pipe_group(ctx):
    return (
        ctx.parallelize(DATA, 8)
        .group_by_key(16)
        .map_values(len)
        .collect()
    )


def pipe_sort(ctx):
    """sortByKey with sampled bounds: the hash→range switch path."""
    return ctx.parallelize(DATA, 8).sort_by_key().collect()


def pipe_join(ctx):
    left = ctx.parallelize(DATA[:2000], 4)
    right = ctx.parallelize([(k, k * 10) for k in range(40)], 2)
    return left.join(right, 8).collect()


def pipe_sql(ctx):
    return SQLWorkload(
        physical_records=3000, skew=1.9
    ).run(ctx).value


PIPELINES = [
    pipe_identity_split,
    pipe_aggregate,
    pipe_group,
    pipe_sort,
    pipe_join,
    pipe_sql,
]


@pytest.mark.parametrize("pipe", PIPELINES, ids=lambda p: p.__name__)
class TestAqeOnOffIdentity:
    def test_serial(self, pipe):
        base, _, _ = run_pipeline(pipe)
        on, _, _ = run_pipeline(pipe, **AQE_KNOBS)
        assert base == on

    def test_threads4(self, pipe):
        base, _, _ = run_pipeline(pipe)
        on, _, _ = run_pipeline(pipe, physical_parallelism=4, **AQE_KNOBS)
        assert base == on


class TestAqeActuallyFires:
    """The identity tests above are vacuous if no re-plan ever happens."""

    def test_split_fires(self):
        _, counters, _ = run_pipeline(pipe_identity_split, **AQE_KNOBS)
        assert counters.get("aqe.partitions_split", 0) >= 1

    def test_coalesce_fires(self):
        _, counters, _ = run_pipeline(pipe_aggregate, **AQE_KNOBS)
        assert counters.get("aqe.partitions_coalesced", 0) >= 2
        assert counters.get("aqe.tasks_saved", 0) >= 1

    def test_switch_fires(self):
        _, counters, _ = run_pipeline(pipe_sort, **AQE_KNOBS)
        assert counters.get("aqe.shuffles_switched", 0) == 1

    def test_off_by_default_no_counters(self):
        _, counters, _ = run_pipeline(pipe_identity_split)
        assert not any(k.startswith("aqe.") for k in counters)


class TestAqeChaosRecovery:
    """A resubmitted map stage must re-derive the same adaptive plan."""

    def _mid_reduce_kill_time(self, pipe):
        _, _, _ctx = run_pipeline(pipe, **AQE_KNOBS)
        # the LAST result stage: sort pipelines run a sampling job first
        stats = [s for s in _ctx.stage_stats if s.kind == "result"][-1]
        start = min(t.start for t in stats.tasks)
        first_end = min(t.end for t in stats.tasks)
        assert first_end > start
        return (start + first_end) / 2.0

    @pytest.mark.parametrize(
        "pipe", [pipe_identity_split, pipe_aggregate, pipe_sort],
        ids=lambda p: p.__name__,
    )
    def test_node_loss_identical(self, pipe):
        kill = self._mid_reduce_kill_time(pipe)
        base, _, _ = run_pipeline(pipe)
        chaos_kwargs = dict(
            node_failure_times={"w0": kill}, node_recovery_delay=5.0
        )
        on, counters, _ = run_pipeline(pipe, **AQE_KNOBS, **chaos_kwargs)
        off, _, _ = run_pipeline(pipe, **chaos_kwargs)
        assert counters.get("scheduler.stage_resubmissions", 0) >= 1
        assert on == base
        assert off == base


class TestAqeProcessPool:
    """procs4: the ChopperRunner process-pooled sweep with AQE on must
    produce the same workload DB as the same sweep measured in-process."""

    def _sweep(self, jobs):
        runner = ChopperRunner(
            WordCountWorkload(skew=1.9),
            base_conf=EngineConf(default_parallelism=16, **AQE_KNOBS),
            db=WorkloadDB(),
        )
        runner.profile(
            p_grid=[4, 8], kinds=["hash"], scales=[0.04, 0.08], jobs=jobs
        )
        name = WordCountWorkload().name
        return json.dumps(
            [vars(o) for o in runner.db.observations(name)], default=str
        )

    def test_pooled_sweep_db_identical(self):
        assert self._sweep(jobs=1) == self._sweep(jobs=2)


class TestAdaptedCountsFeedWorkloadDb:
    """CHOPPER's collector stores the adapted (duration, P) pair."""

    def test_observation_uses_adapted_partitions(self):
        from repro.chopper.stats import StatisticsCollector

        def build(ctx):
            collector = StatisticsCollector("t", input_bytes=1.0)
            with collector.attached(ctx):
                pipe_aggregate(ctx)
            return collector.record

        record, counters, _ = run_pipeline(build, **AQE_KNOBS)
        assert counters.get("aqe.partitions_coalesced", 0) >= 2
        reduce_obs = next(
            o for o in record.observations if o.kind == "result"
        )
        assert reduce_obs.num_partitions < 16

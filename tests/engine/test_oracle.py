"""Oracle testing: random transformation chains vs a pure-Python model.

A hypothesis-driven sequence of RDD transformations is applied in
parallel to (a) the engine and (b) a plain Python list. After every
action the two must agree — the strongest correctness net over the
narrow/shuffle machinery, alignment, caching, and partitioner routing.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf


def fresh_ctx():
    return AnalyticsContext(
        uniform_cluster(n_workers=2, cores=2), EngineConf(default_parallelism=4)
    )


# Each op transforms (rdd, pyvalues) in lockstep. All records stay
# (int, int) pairs so every pair op is applicable at any point.
def op_map_values(rdd, vals):
    return (
        rdd.map_values(lambda v: v * 2 - 1),
        [(k, v * 2 - 1) for k, v in vals],
    )


def op_filter(rdd, vals):
    return (
        rdd.filter(lambda kv: kv[1] % 3 != 0),
        [(k, v) for k, v in vals if v % 3 != 0],
    )


def op_rekey(rdd, vals):
    return (
        rdd.map(lambda kv: (kv[1] % 5, kv[0])),
        [(v % 5, k) for k, v in vals],
    )


def op_reduce_by_key(rdd, vals):
    acc = {}
    for k, v in vals:
        acc[k] = acc.get(k, 0) + v
    return (rdd.reduce_by_key(lambda a, b: a + b, 3), sorted(acc.items()))


def op_repartition(rdd, vals):
    return (rdd.repartition(5), list(vals))


def op_coalesce(rdd, vals):
    return (rdd.coalesce(2), list(vals))


def op_cache(rdd, vals):
    return (rdd.cache(), list(vals))


def op_union_self(rdd, vals):
    return (rdd.union(rdd.map_values(lambda v: v + 100)),
            list(vals) + [(k, v + 100) for k, v in vals])


def op_distinct(rdd, vals):
    return (rdd.distinct(3), sorted(set(vals)))


OPS = [
    op_map_values,
    op_filter,
    op_rekey,
    op_reduce_by_key,
    op_repartition,
    op_coalesce,
    op_cache,
    op_union_self,
    op_distinct,
]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.lists(
        st.tuples(st.integers(0, 9), st.integers(-20, 20)),
        min_size=0, max_size=40,
    ),
    ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=6),
    parts=st.integers(1, 6),
)
def test_random_chains_match_python_oracle(data, ops, parts):
    ctx = fresh_ctx()
    rdd = ctx.parallelize(data, parts)
    vals = list(data)
    for op in ops:
        rdd, vals = op(rdd, vals)
    assert sorted(rdd.collect()) == sorted(vals)
    # count agrees too (and exercises a second job over the same graph,
    # including shuffle reuse).
    assert rdd.count() == len(vals)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.lists(
        st.tuples(st.integers(0, 6), st.integers(-10, 10)),
        min_size=1, max_size=30,
    ),
    ops_a=st.lists(st.sampled_from(OPS[:6]), min_size=0, max_size=3),
    ops_b=st.lists(st.sampled_from(OPS[:6]), min_size=0, max_size=3),
)
def test_random_joins_match_python_oracle(data, ops_a, ops_b):
    ctx = fresh_ctx()
    left, lvals = ctx.parallelize(data, 3), list(data)
    right, rvals = ctx.parallelize(data[::-1], 2), list(data[::-1])
    for op in ops_a:
        left, lvals = op(left, lvals)
    for op in ops_b:
        right, rvals = op(right, rvals)

    joined = left.join(right, 3).collect()

    expected = []
    rmap = {}
    for k, v in rvals:
        rmap.setdefault(k, []).append(v)
    for k, v in lvals:
        for rv in rmap.get(k, []):
            expected.append((k, (v, rv)))
    assert sorted(joined) == sorted(expected)

"""Tests for task scheduling: waves, heterogeneity, locality, failures."""

import pytest

from repro.cluster import NodeSpec, Cluster, uniform_cluster
from repro.cluster.cluster import GBPS
from repro.common.units import GB
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig


def make_ctx(cluster, **conf_kwargs):
    conf_kwargs.setdefault("default_parallelism", 8)
    conf_kwargs.setdefault(
        "cost", CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0)
    )
    return AnalyticsContext(cluster, EngineConf(**conf_kwargs))


class TestWaves:
    def test_fewer_tasks_than_cores_one_wave(self):
        ctx = make_ctx(uniform_cluster(n_workers=2, cores=4))
        ctx.parallelize(range(100), 4).collect()
        stage = ctx.job_stats[-1].stages[0]
        starts = {t.start for t in stage.tasks}
        assert len(starts) == 1  # all launched immediately

    def test_more_tasks_than_cores_queue(self):
        ctx = make_ctx(uniform_cluster(n_workers=2, cores=2))
        ctx.parallelize(range(100), 12).collect()
        stage = ctx.job_stats[-1].stages[0]
        starts = sorted({t.start for t in stage.tasks})
        assert len(starts) > 1  # later waves start after slots free

    def test_makespan_scales_with_waves(self):
        cluster = uniform_cluster(n_workers=1, cores=2)
        ctx_one = make_ctx(cluster)
        ctx_one.parallelize(range(100), 2).collect()
        one_wave = ctx_one.job_stats[-1].duration

        ctx_two = make_ctx(uniform_cluster(n_workers=1, cores=2))
        ctx_two.parallelize(range(100), 4).collect()
        two_waves = ctx_two.job_stats[-1].duration
        assert two_waves > one_wave


class TestHeterogeneity:
    def _hetero_cluster(self):
        workers = [
            NodeSpec("fast", cores=4, speed=2.0, memory=8 * GB, net_bw=10 * GBPS,
                     executor_memory=4 * GB),
            NodeSpec("slow", cores=4, speed=0.5, memory=8 * GB, net_bw=10 * GBPS,
                     executor_memory=4 * GB),
        ]
        master = NodeSpec("m", cores=1, speed=1.0, memory=8 * GB, net_bw=10 * GBPS,
                          executor_memory=GB)
        return Cluster(workers=workers, master=master)

    def test_fast_node_takes_more_tasks(self):
        # Make compute dominate the fixed task overhead so speed matters.
        cfg = CostModelConfig(
            task_overhead=0.001, per_byte_compute=1e-4,
            jitter_sigma=0.0, driver_dispatch_interval=0.0,
        )
        ctx = make_ctx(self._hetero_cluster(), cost=cfg)
        ctx.parallelize(list(range(40_000)), 32).collect()
        stage = ctx.job_stats[-1].stages[0]
        by_node = {"fast": 0, "slow": 0}
        for t in stage.tasks:
            by_node[t.node] += 1
        assert by_node["fast"] > by_node["slow"]

    def test_task_duration_divides_by_speed(self):
        cfg = CostModelConfig(
            task_overhead=0.001, per_byte_compute=1e-4,
            jitter_sigma=0.0, driver_dispatch_interval=0.0,
        )
        ctx = make_ctx(self._hetero_cluster(), cost=cfg)
        ctx.parallelize(list(range(8000)), 8).collect()
        stage = ctx.job_stats[-1].stages[0]
        fast = [t.duration for t in stage.tasks if t.node == "fast"]
        slow = [t.duration for t in stage.tasks if t.node == "slow"]
        if fast and slow:
            assert min(slow) > max(fast) * 1.5


class TestLocality:
    def test_cached_tasks_return_to_cache_node(self):
        ctx = make_ctx(uniform_cluster(n_workers=3, cores=4))
        rdd = ctx.parallelize(list(range(3000)), 6).cache()
        rdd.count()
        locations = {
            i: ctx.block_store.location(rdd.id, i) for i in range(6)
        }
        rdd.count()
        stage = ctx.job_stats[-1].stages[0]
        hits = sum(1 for t in stage.tasks if t.node == locations[t.task_index])
        assert hits == 6  # free cores everywhere: all tasks go home


class TestFailureInjection:
    def test_failures_retry_and_still_produce_correct_results(self):
        ctx = make_ctx(
            uniform_cluster(n_workers=2, cores=2), task_failure_rate=0.2
        )
        out = ctx.parallelize([(i % 3, 1) for i in range(60)], 6).reduce_by_key(
            lambda a, b: a + b, 3
        ).collect_as_map()
        assert out == {0: 20, 1: 20, 2: 20}

    def test_failures_cost_time(self):
        def run(rate):
            ctx = make_ctx(
                uniform_cluster(n_workers=2, cores=2),
                task_failure_rate=rate,
                max_task_attempts=8,
            )
            ctx.parallelize(list(range(2000)), 16).collect()
            return ctx.now

        assert run(0.3) > run(0.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(Exception):
            EngineConf(task_failure_rate=1.5)


class TestCostEffects:
    def test_oversize_partition_penalty(self):
        """One giant partition costs more than the same data split up."""
        cfg = CostModelConfig(
            partition_knee=1024.0, task_overhead=0.0,
            jitter_sigma=0.0, driver_dispatch_interval=0.0,
        )

        def run(n_parts):
            ctx = AnalyticsContext(
                uniform_cluster(n_workers=1, cores=1),
                EngineConf(default_parallelism=4, cost=cfg),
            )
            ctx.parallelize(list(range(2000)), n_parts).collect()
            return ctx.now

        assert run(1) > run(16)

    def test_per_task_overhead_dominates_many_tiny_partitions(self):
        cfg = CostModelConfig(
            task_overhead=0.5, jitter_sigma=0.0, driver_dispatch_interval=0.0
        )

        def run(n_parts):
            ctx = AnalyticsContext(
                uniform_cluster(n_workers=1, cores=2),
                EngineConf(default_parallelism=4, cost=cfg),
            )
            ctx.parallelize(list(range(100)), n_parts).collect()
            return ctx.now

        assert run(64) > run(4)

    def test_remote_shuffle_slower_on_slow_links(self):
        def run(net_bw):
            ctx = AnalyticsContext(
                uniform_cluster(n_workers=4, cores=2, net_bw=net_bw),
                EngineConf(default_parallelism=8),
            )
            pairs = ctx.parallelize([(i, i) for i in range(5000)], 8)
            pairs.group_by_key(8).count()
            return ctx.now

        assert run(1e5) > run(10 * GBPS)


class TestNetworkContention:
    def test_contention_slows_shuffle_reads(self):
        def run(contention):
            cfg = CostModelConfig(
                jitter_sigma=0.0, driver_dispatch_interval=0.0,
                network_contention=contention,
            )
            ctx = AnalyticsContext(
                uniform_cluster(n_workers=4, cores=4, net_bw=1e6),
                EngineConf(default_parallelism=16, cost=cfg),
            )
            pairs = ctx.parallelize([(i, i) for i in range(20_000)], 16)
            pairs.group_by_key(16).count()
            return ctx.now

        assert run(True) > run(False)

    def test_contention_preserves_results(self):
        cfg = CostModelConfig(network_contention=True)
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=3, cores=2),
            EngineConf(default_parallelism=6, cost=cfg),
        )
        out = ctx.parallelize([(i % 4, 1) for i in range(80)], 6)
        assert out.reduce_by_key(lambda a, b: a + b, 4).collect_as_map() == {
            k: 20 for k in range(4)
        }


class TestDelayScheduling:
    def _cached_ctx(self, locality_wait):
        cfg = CostModelConfig(
            task_overhead=0.001, per_byte_compute=1e-4,
            jitter_sigma=0.0, driver_dispatch_interval=0.0,
        )
        return AnalyticsContext(
            uniform_cluster(n_workers=3, cores=2),
            EngineConf(default_parallelism=6, cost=cfg,
                       locality_wait=locality_wait),
        )

    def _locality_hits(self, ctx):
        rdd = ctx.parallelize(list(range(30_000)), 6).cache()
        rdd.count()
        locations = {i: ctx.block_store.location(rdd.id, i) for i in range(6)}
        # Occupy no cores; but create imbalance: tasks all prefer their
        # cache node, which may be busy when greedily spread.
        rdd.map(lambda x: x + 1).count()
        stage = ctx.job_stats[-1].stages[0]
        return sum(1 for t in stage.tasks if t.node == locations[t.task_index])

    def test_waiting_improves_locality(self):
        greedy = self._locality_hits(self._cached_ctx(0.0))
        patient = self._locality_hits(self._cached_ctx(30.0))
        assert patient >= greedy
        assert patient == 6  # with a generous wait every task goes home

    def test_wait_expires_and_task_still_runs(self):
        ctx = self._cached_ctx(0.05)
        rdd = ctx.parallelize(list(range(3000)), 6).cache()
        assert rdd.count() == 3000
        assert rdd.count() == 3000  # second pass completes despite waits

    def test_results_unaffected(self):
        ctx = self._cached_ctx(5.0)
        pairs = ctx.parallelize([(i % 3, 1) for i in range(60)], 6)
        assert pairs.reduce_by_key(lambda a, b: a + b, 3).collect_as_map() == {
            0: 20, 1: 20, 2: 20,
        }

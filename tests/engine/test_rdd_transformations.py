"""Correctness tests for RDD transformations (values, not timing)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.common.errors import WorkloadError
from repro.engine import AnalyticsContext, EngineConf, HashPartitioner


def make_ctx():
    return AnalyticsContext(
        uniform_cluster(n_workers=2, cores=2), EngineConf(default_parallelism=4)
    )


class TestNarrowOps:
    def test_map(self, ctx):
        assert sorted(ctx.parallelize([1, 2, 3]).map(lambda x: x * 2).collect()) == [
            2, 4, 6,
        ]

    def test_filter(self, ctx):
        out = ctx.parallelize(range(10)).filter(lambda x: x % 2 == 0).collect()
        assert sorted(out) == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        out = ctx.parallelize([1, 2]).flat_map(lambda x: [x] * x).collect()
        assert sorted(out) == [1, 2, 2]

    def test_map_partitions_receives_split(self, ctx):
        rdd = ctx.parallelize(range(8), num_partitions=4)
        out = rdd.map_partitions(lambda s, recs: [s]).collect()
        assert sorted(out) == [0, 1, 2, 3]

    def test_glom(self, ctx):
        rdd = ctx.parallelize(range(6), num_partitions=3)
        assert len(rdd.glom().collect()) == 3

    def test_key_by_keys_values(self, ctx):
        rdd = ctx.parallelize([1, 2, 3]).key_by(lambda x: x % 2)
        assert sorted(rdd.keys().collect()) == [0, 1, 1]
        assert sorted(rdd.values().collect()) == [1, 2, 3]

    def test_map_values_preserves_partitioner(self, ctx):
        rdd = ctx.parallelize([(1, 1), (2, 2)]).partition_by(HashPartitioner(2))
        mapped = rdd.map_values(lambda v: v + 1)
        assert mapped.partitioner == HashPartitioner(2)
        assert sorted(mapped.collect()) == [(1, 2), (2, 3)]

    def test_flat_map_values(self, ctx):
        out = ctx.parallelize([(1, 2)]).flat_map_values(lambda v: [v, v]).collect()
        assert sorted(out) == [(1, 2), (1, 2)]

    def test_plain_map_drops_partitioner(self, ctx):
        rdd = ctx.parallelize([(1, 1)]).partition_by(HashPartitioner(2))
        assert rdd.map(lambda kv: kv).partitioner is None

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], num_partitions=2)
        b = ctx.parallelize([3], num_partitions=1)
        unioned = a.union(b)
        assert unioned.num_partitions == 3
        assert sorted(unioned.collect()) == [1, 2, 3]

    def test_coalesce_merges_contiguously(self, ctx):
        rdd = ctx.parallelize(range(8), num_partitions=8).coalesce(3)
        assert rdd.num_partitions == 3
        assert sorted(rdd.collect()) == list(range(8))

    def test_coalesce_no_op_when_growing(self, ctx):
        rdd = ctx.parallelize(range(4), num_partitions=2)
        assert rdd.coalesce(10) is rdd

    def test_repartition_changes_count_and_keeps_data(self, ctx):
        rdd = ctx.parallelize(range(20), num_partitions=2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(20))

    def test_sample_fraction_bounds(self, ctx):
        with pytest.raises(WorkloadError):
            ctx.parallelize(range(10)).sample(1.5)

    def test_sample_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), num_partitions=4)
        a = rdd.sample(0.1, seed=3).collect()
        b = rdd.sample(0.1, seed=3).collect()
        assert a == b
        assert 40 < len(a) < 200


class TestShuffleOps:
    def test_reduce_by_key(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(30)], num_partitions=5)
        out = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=2)
        assert out.collect_as_map() == {0: 10, 1: 10, 2: 10}

    def test_group_by_key(self, ctx):
        pairs = ctx.parallelize([(1, "a"), (1, "b"), (2, "c")], num_partitions=2)
        grouped = pairs.group_by_key(num_partitions=2).collect_as_map()
        assert sorted(grouped[1]) == ["a", "b"]
        assert grouped[2] == ["c"]

    def test_aggregate_by_key(self, ctx):
        pairs = ctx.parallelize([(1, 2), (1, 3), (2, 4)], num_partitions=2)
        out = pairs.aggregate_by_key(
            0, lambda acc, v: acc + v, lambda a, b: a + b, num_partitions=2
        )
        assert out.collect_as_map() == {1: 5, 2: 4}

    def test_combine_by_key_with_list_combiners(self, ctx):
        pairs = ctx.parallelize([(1, 1), (1, 2), (2, 3)], num_partitions=2)
        out = pairs.combine_by_key(
            lambda v: [v],
            lambda c, v: c + [v],
            lambda c1, c2: c1 + c2,
            num_partitions=2,
        ).collect_as_map()
        assert sorted(out[1]) == [1, 2]

    def test_group_by(self, ctx):
        out = ctx.parallelize(range(10)).group_by(lambda x: x % 2, 2).collect_as_map()
        assert sorted(out[0]) == [0, 2, 4, 6, 8]

    def test_distinct(self, ctx):
        out = ctx.parallelize([1, 1, 2, 2, 3]).distinct(2).collect()
        assert sorted(out) == [1, 2, 3]

    def test_partition_by_places_keys_correctly(self, ctx):
        part = HashPartitioner(3)
        rdd = ctx.parallelize([(i, i) for i in range(30)], num_partitions=4)
        by_part = rdd.partition_by(part).glom().collect()
        for pid, records in enumerate(by_part):
            for k, _v in records:
                assert part.partition(k) == pid

    def test_partition_by_already_partitioned_is_noop(self, ctx):
        part = HashPartitioner(3)
        rdd = ctx.parallelize([(1, 1)], num_partitions=2).partition_by(part)
        assert rdd.partition_by(HashPartitioner(3)) is rdd

    def test_sort_by_key_global_order(self, ctx):
        data = [(i % 17, i) for i in range(100)]
        out = ctx.parallelize(data, num_partitions=4).sort_by_key(3).collect()
        assert [k for k, _ in out] == sorted(k for k, _ in data)

    def test_reduce_by_key_reuses_parent_partitioner(self, ctx):
        part = HashPartitioner(3)
        rdd = ctx.parallelize([(1, 1), (2, 2)], 2).partition_by(part)
        reduced = rdd.reduce_by_key(lambda a, b: a + b)
        # No new shuffle: the dependency is narrow.
        assert not reduced.shuffle_deps()
        assert reduced.collect_as_map() == {1: 1, 2: 2}


class TestJoins:
    def test_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b")], 2)
        b = ctx.parallelize([(1, "x"), (3, "y")], 2)
        assert a.join(b, 2).collect() == [(1, ("a", "x"))]

    def test_join_duplicate_keys_cross_product(self, ctx):
        a = ctx.parallelize([(1, "a1"), (1, "a2")], 1)
        b = ctx.parallelize([(1, "b1"), (1, "b2")], 1)
        out = a.join(b, 2).collect()
        assert len(out) == 4

    def test_left_outer_join(self, ctx):
        a = ctx.parallelize([(1, "a"), (2, "b")], 2)
        b = ctx.parallelize([(1, "x")], 1)
        out = dict(a.left_outer_join(b, 2).collect())
        assert out[1] == ("a", "x")
        assert out[2] == ("b", None)

    def test_cogroup(self, ctx):
        a = ctx.parallelize([(1, "a")], 1)
        b = ctx.parallelize([(1, "x"), (2, "y")], 1)
        out = dict(a.cogroup(b, 2).collect())
        assert out[1] == (["a"], ["x"])
        assert out[2] == ([], ["y"])

    def test_join_on_copartitioned_parents_is_narrow(self, ctx):
        part = HashPartitioner(4)
        a = ctx.parallelize([(i, i) for i in range(10)], 2).reduce_by_key(
            lambda x, y: x + y, partitioner=part
        )
        b = ctx.parallelize([(i, -i) for i in range(10)], 2).reduce_by_key(
            lambda x, y: x + y, partitioner=part
        )
        joined = a.join(b)
        cogroup = joined.deps[0].parent
        # Both cogroup dependencies are narrow: no third shuffle.
        assert not cogroup.shuffle_deps()
        assert len(joined.collect()) == 10


class TestProperties:
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=60),
           st.integers(1, 6))
    def test_collect_is_identity(self, data, n):
        ctx = make_ctx()
        assert sorted(ctx.parallelize(data, n).collect()) == sorted(data)

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)),
                    min_size=1, max_size=60),
           st.integers(1, 5))
    def test_reduce_by_key_matches_python(self, pairs, n):
        ctx = make_ctx()
        expected = {}
        for k, v in pairs:
            expected[k] = expected.get(k, 0) + v
        out = ctx.parallelize(pairs, 3).reduce_by_key(
            lambda a, b: a + b, num_partitions=n
        ).collect_as_map()
        assert out == expected

    @settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=50))
    def test_distinct_matches_set(self, data):
        ctx = make_ctx()
        assert sorted(ctx.parallelize(data, 3).distinct(2).collect()) == sorted(
            set(data)
        )

"""Tests for the extended RDD API (set ops, ordering, stats)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.common.errors import WorkloadError
from repro.engine import AnalyticsContext, EngineConf


def make_ctx():
    return AnalyticsContext(
        uniform_cluster(n_workers=2, cores=2), EngineConf(default_parallelism=4)
    )


class TestZipWithIndex:
    def test_indexes_are_global_and_ordered(self, ctx):
        rdd = ctx.parallelize(list("abcdefgh"), 3).zip_with_index()
        out = rdd.collect()
        assert [i for _r, i in out] == list(range(8))
        assert [r for r, _i in out] == list("abcdefgh")

    def test_empty_partitions_ok(self, ctx):
        out = ctx.parallelize([1, 2], 5).zip_with_index().collect()
        assert sorted(i for _r, i in out) == [0, 1]


class TestSetOps:
    def test_subtract(self, ctx):
        a = ctx.parallelize(range(10), 3)
        b = ctx.parallelize(range(5), 2)
        assert sorted(a.subtract(b, 4).collect()) == [5, 6, 7, 8, 9]

    def test_subtract_removes_duplicates_of_present_keys(self, ctx):
        a = ctx.parallelize([1, 1, 2, 3], 2)
        b = ctx.parallelize([1], 1)
        assert sorted(a.subtract(b, 2).collect()) == [2, 3]

    def test_intersection_is_distinct(self, ctx):
        a = ctx.parallelize([1, 1, 2, 3, 4], 2)
        b = ctx.parallelize([1, 2, 2, 5], 2)
        assert sorted(a.intersection(b, 2).collect()) == [1, 2]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(0, 20), max_size=30),
           st.lists(st.integers(0, 20), max_size=30))
    def test_set_ops_match_python_sets(self, xs, ys):
        ctx = make_ctx()
        a = ctx.parallelize(xs, 2)
        b = ctx.parallelize(ys, 2)
        assert set(a.subtract(b, 2).collect()) == set(xs) - set(ys)
        assert set(a.intersection(b, 2).collect()) == set(xs) & set(ys)


class TestOrderingActions:
    def test_take_ordered(self, ctx):
        rdd = ctx.parallelize([5, 3, 9, 1, 7, 2], 3)
        assert rdd.take_ordered(3) == [1, 2, 3]

    def test_take_ordered_with_key(self, ctx):
        rdd = ctx.parallelize([(1, "b"), (2, "a"), (3, "c")], 2)
        assert rdd.take_ordered(2, key=lambda kv: kv[1]) == [(2, "a"), (1, "b")]

    def test_top(self, ctx):
        rdd = ctx.parallelize([5, 3, 9, 1, 7], 3)
        assert rdd.top(2) == [9, 7]

    def test_take_more_than_data(self, ctx):
        assert ctx.parallelize([2, 1], 2).take_ordered(10) == [1, 2]


class TestNumericActions:
    def test_fold(self, ctx):
        assert ctx.parallelize(range(5), 3).fold(0, lambda a, b: a + b) == 10

    def test_max_min(self, ctx):
        rdd = ctx.parallelize([3, -1, 7, 2], 3)
        assert rdd.max() == 7
        assert rdd.min() == -1

    def test_stats(self, ctx):
        rdd = ctx.parallelize([1.0, 2.0, 3.0, 4.0], 3)
        stats = rdd.stats()
        assert stats["count"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["stdev"] == pytest.approx(1.1180, rel=1e-3)

    def test_stats_empty_raises(self, ctx):
        with pytest.raises(WorkloadError):
            ctx.parallelize([], 2).stats()

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=40))
    def test_stats_match_numpy(self, xs):
        import numpy as np

        ctx = make_ctx()
        stats = ctx.parallelize(xs, 3).stats()
        assert stats["mean"] == pytest.approx(float(np.mean(xs)), abs=1e-6)
        assert stats["stdev"] == pytest.approx(float(np.std(xs)), abs=1e-5)

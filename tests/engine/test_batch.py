"""RecordBatch round-trip exactness and byte-accounting identity.

The columnar format's whole contract is "invisible": any list of 2-tuples
must survive ``from_records`` → ``to_records`` value-for-value and
type-for-type, and ``sizes_array`` must reproduce ``estimate_size``
bit-for-bit. Hypothesis drives the nasty corners — NUL-bearing unicode,
int64 overflow, NaN/-0.0 floats, bool-vs-int, mixed columns.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.sizing import estimate_size
from repro.engine.batch import RecordBatch, as_record_list

TEXT = st.text(
    alphabet=st.characters(min_codepoint=0, max_codepoint=0x10FFFF),
    max_size=12,
)
SCALARS = st.one_of(
    TEXT,
    st.integers(),
    st.floats(allow_nan=False),
    st.booleans(),
    st.none(),
)


def assert_round_trip(records):
    batch = RecordBatch.from_records(records)
    if not records:
        assert batch is None
        return
    out = batch.to_records()
    assert out == records
    # Type-for-type: bool must not come back as int, int not as float,
    # numpy scalars must not leak out.
    for (k0, v0), (k1, v1) in zip(records, out):
        assert type(k0) is type(k1), (k0, k1)
        assert type(v0) is type(v1), (v0, v1)


class TestRoundTrip:
    @given(st.lists(st.tuples(TEXT, st.integers()), max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_str_int_records(self, records):
        assert_round_trip(records)

    @given(st.lists(st.tuples(TEXT, st.floats(allow_nan=False)), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_str_float_records(self, records):
        assert_round_trip(records)

    @given(st.lists(st.tuples(SCALARS, SCALARS), max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_mixed_key_records(self, records):
        assert_round_trip(records)

    @given(st.lists(st.tuples(st.floats(), st.floats()), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_nan_and_signed_zero_floats(self, records):
        batch = RecordBatch.from_records(records)
        if not records:
            assert batch is None
            return
        out = batch.to_records()
        assert len(out) == len(records)
        for (k0, v0), (k1, v1) in zip(records, out):
            # NaN keys must come back as the *same object* — dict-based
            # grouping folds NaNs by identity, so a minted copy would
            # change every downstream groupBy.
            if k0 != k0:
                assert k1 is k0
            else:
                assert k1 == k0 and type(k1) is type(k0)
            if v0 != v0:
                assert v1 is v0
            else:
                assert v1 == v0 and type(v1) is type(v0)

    def test_trailing_nul_strings_stay_exact(self):
        records = [("a\x00", 1), ("b", 2), ("\x00\x00", 3)]
        assert_round_trip(records)
        # The column must not have been lifted (numpy would strip NULs).
        batch = RecordBatch.from_records(records)
        assert not isinstance(batch.keys, np.ndarray)

    def test_int64_overflow_stays_exact(self):
        records = [("k", 2**63), ("j", -(2**70)), ("i", 5)]
        assert_round_trip(records)

    def test_bool_columns_stay_bool(self):
        assert_round_trip([("a", True), ("b", False)])

    def test_non_pair_records_rejected(self):
        assert RecordBatch.from_records([("a", 1, 2)]) is None
        assert RecordBatch.from_records([["a", 1]]) is None
        assert RecordBatch.from_records(["a"]) is None

    def test_tuple_subclass_rejected(self):
        class Point(tuple):
            pass

        assert RecordBatch.from_records([Point(("a", 1))]) is None


class TestSizing:
    @given(st.lists(st.tuples(TEXT, st.one_of(st.integers(), TEXT)),
                    min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_sizes_match_estimate_size(self, records):
        batch = RecordBatch.from_records(records)
        sizes = batch.sizes_array()
        expect = [estimate_size(r) for r in records]
        # Bit-identity, not approx: accounting must not drift.
        assert sizes.tolist() == expect

    def test_sizes_on_float_values(self):
        records = [("a", 1.5), ("bb", -2.0)]
        batch = RecordBatch.from_records(records)
        assert batch.sizes_array().tolist() == [
            estimate_size(r) for r in records
        ]


class TestOps:
    def test_take_preserves_types(self):
        batch = RecordBatch.from_records([("a", 1), ("b", 2), ("c", 3)])
        taken = batch.take(np.array([2, 0]))
        assert taken.to_records() == [("c", 3), ("a", 1)]

    def test_take_on_list_columns(self):
        batch = RecordBatch.from_records([(None, 1), ("b", 2)])
        taken = batch.take(np.array([1]))
        assert taken.to_records() == [("b", 2)]

    def test_concat_in_order(self):
        a = RecordBatch.from_records([("a", 1)])
        b = RecordBatch.from_records([("b", 2), ("c", 3)])
        assert RecordBatch.concat([a, b]).to_records() == [
            ("a", 1), ("b", 2), ("c", 3)
        ]

    def test_concat_mixed_column_kinds(self):
        a = RecordBatch.from_records([("a", 1)])
        b = RecordBatch.from_records([("b", None)])
        assert RecordBatch.concat([a, b]).to_records() == [
            ("a", 1), ("b", None)
        ]

    def test_pickle_round_trip_protocol5(self):
        records = [("a", 1), ("b", 2)]
        batch = RecordBatch.from_records(records)
        clone = pickle.loads(pickle.dumps(batch, protocol=5))
        assert isinstance(clone, RecordBatch)
        assert clone.to_records() == records

    def test_as_record_list(self):
        records = [("a", 1)]
        assert as_record_list(records) is records
        assert as_record_list(RecordBatch.from_records(records)) == records

    def test_len(self):
        assert len(RecordBatch.from_records([("a", 1), ("b", 2)])) == 2


if __name__ == "__main__":
    pytest.main([__file__, "-q"])

"""Tests for speculative execution (Spark's spark.speculation)."""

from repro.cluster import Cluster, NodeSpec, uniform_cluster
from repro.cluster.cluster import GBPS
from repro.common.units import GB
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.obs import MetricsRegistry


def straggler_cluster():
    """One pathologically slow node among fast ones."""
    workers = [
        NodeSpec("fast-0", cores=4, speed=1.0, memory=8 * GB, net_bw=10 * GBPS,
                 executor_memory=4 * GB),
        NodeSpec("fast-1", cores=4, speed=1.0, memory=8 * GB, net_bw=10 * GBPS,
                 executor_memory=4 * GB),
        # Few slow cores: stragglers are a minority, so the speculation
        # quantile (75% of tasks completed) is reachable while they run.
        NodeSpec("slow", cores=2, speed=0.12, memory=8 * GB, net_bw=10 * GBPS,
                 executor_memory=4 * GB),
    ]
    master = NodeSpec("m", cores=1, speed=1.0, memory=8 * GB, net_bw=10 * GBPS,
                      executor_memory=GB)
    return Cluster(workers=workers, master=master)


def run(speculation: bool, cluster=None):
    cost = CostModelConfig(
        task_overhead=0.01, per_byte_compute=1e-4,
        jitter_sigma=0.0, driver_dispatch_interval=0.0,
    )
    ctx = AnalyticsContext(
        cluster or straggler_cluster(),
        EngineConf(default_parallelism=12, cost=cost, speculation=speculation),
    )
    out = ctx.parallelize(list(range(24_000)), 12).map(lambda x: x).collect()
    return ctx, out


class TestSpeculation:
    def test_off_by_default(self):
        ctx = AnalyticsContext(uniform_cluster(2, 2))
        assert not ctx.conf.speculation

    def test_speculation_beats_stragglers(self):
        ctx_off, out_off = run(False)
        ctx_on, out_on = run(True)
        assert sorted(out_on) == sorted(out_off)
        assert ctx_on.task_scheduler.speculative_launches >= 1
        # The duplicate attempt on a fast node wins the race against the
        # 8x-slower node, shortening the stage makespan.
        assert ctx_on.now < 0.7 * ctx_off.now
        assert ctx_on.task_scheduler.speculative_wins >= 1

    def test_no_speculation_without_stragglers(self):
        cluster = uniform_cluster(n_workers=3, cores=4)
        ctx, _out = run(True, cluster=cluster)
        # Uniform tasks on a uniform cluster: nothing exceeds the
        # multiplier threshold.
        assert ctx.task_scheduler.speculative_launches == 0

    def test_results_correct_with_shuffles(self):
        cost = CostModelConfig(
            task_overhead=0.01, per_byte_compute=1e-4,
            jitter_sigma=0.0, driver_dispatch_interval=0.0,
        )
        ctx = AnalyticsContext(
            straggler_cluster(),
            EngineConf(default_parallelism=12, cost=cost, speculation=True),
        )
        pairs = ctx.parallelize([(i % 7, 1) for i in range(14_000)], 12)
        out = pairs.reduce_by_key(lambda a, b: a + b, 6).collect_as_map()
        assert out == {k: 2000 for k in range(7)}

    def test_cores_conserved_after_races(self):
        ctx, _out = run(True)
        for worker in ctx.cluster.workers:
            assert ctx.task_scheduler.free_cores(worker.name) == worker.cores

    def test_speculation_with_failures(self):
        cost = CostModelConfig(
            task_overhead=0.01, per_byte_compute=1e-4,
            jitter_sigma=0.0, driver_dispatch_interval=0.0,
        )
        ctx = AnalyticsContext(
            straggler_cluster(),
            EngineConf(
                default_parallelism=12, cost=cost, speculation=True,
                task_failure_rate=0.1, max_task_attempts=8,
            ),
        )
        out = ctx.parallelize(list(range(6000)), 12).count()
        assert out == 6000
        for worker in ctx.cluster.workers:
            assert ctx.task_scheduler.free_cores(worker.name) == worker.cores


class TestSchedulerMetrics:
    """The metrics registry must agree with the scheduler's own counters."""

    @staticmethod
    def quiet_conf(**overrides):
        cost = CostModelConfig(
            task_overhead=0.01, per_byte_compute=1e-4,
            jitter_sigma=0.0, driver_dispatch_interval=0.0,
        )
        return EngineConf(default_parallelism=12, cost=cost, **overrides)

    def test_speculation_counters_match_registry(self):
        registry = MetricsRegistry()
        ctx = AnalyticsContext(
            straggler_cluster(),
            self.quiet_conf(speculation=True),
            metrics_registry=registry,
        )
        ctx.parallelize(list(range(24_000)), 12).map(lambda x: x).collect()
        sched = ctx.task_scheduler
        assert sched.speculative_launches >= 1
        assert sched.speculative_wins >= 1
        assert (
            registry.counter_value("scheduler.speculative_launches")
            == sched.speculative_launches
        )
        assert (
            registry.counter_value("scheduler.speculative_wins")
            == sched.speculative_wins
        )
        assert registry.counter_value("scheduler.task_retries") == 0

    def test_retry_counters_match_registry(self):
        registry = MetricsRegistry()
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=3, cores=4),
            self.quiet_conf(task_failure_rate=0.25, max_task_attempts=8),
            metrics_registry=registry,
        )
        out = ctx.parallelize(list(range(6000)), 12).count()
        assert out == 6000
        sched = ctx.task_scheduler
        assert sched.task_retries >= 1  # 25% failure rate over 12 tasks
        assert (
            registry.counter_value("scheduler.task_retries") == sched.task_retries
        )
        assert (
            registry.counter_value("scheduler.tasks_failed") == sched.task_retries
        )

    def test_speculation_with_failures_counters_consistent(self):
        registry = MetricsRegistry()
        ctx = AnalyticsContext(
            straggler_cluster(),
            self.quiet_conf(
                speculation=True, task_failure_rate=0.1, max_task_attempts=8
            ),
            metrics_registry=registry,
        )
        out = ctx.parallelize(list(range(6000)), 12).count()
        assert out == 6000
        sched = ctx.task_scheduler
        assert (
            registry.counter_value("scheduler.speculative_launches")
            == sched.speculative_launches
        )
        assert (
            registry.counter_value("scheduler.task_retries") == sched.task_retries
        )
        launched = registry.counter_value("scheduler.tasks_launched")
        done = registry.counter_value("scheduler.tasks_completed")
        failed = registry.counter_value("scheduler.tasks_failed")
        # Every launched attempt wins, fails, or is cancelled as the
        # losing side of a speculation race — and only races launched by
        # speculation can produce losers.
        cancelled = launched - done - failed
        assert 0 <= cancelled <= sched.speculative_launches

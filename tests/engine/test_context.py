"""Tests for AnalyticsContext configuration and driver-side helpers."""

import pytest

from repro.cluster import uniform_cluster
from repro.common.errors import ConfigurationError
from repro.engine import AnalyticsContext, Broadcast, EngineConf


class TestEngineConf:
    def test_defaults_match_paper(self):
        conf = EngineConf()
        assert conf.default_parallelism == 300
        assert not conf.copartition_scheduling
        assert not conf.speculation

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConf(default_parallelism=0)
        with pytest.raises(ConfigurationError):
            EngineConf(task_failure_rate=-0.1)


class TestContext:
    def test_default_cluster_is_paper_testbed(self):
        ctx = AnalyticsContext()
        assert ctx.cluster.worker_names == ["A", "B", "C", "D", "E"]

    def test_counters_are_unique(self, ctx):
        ids = {ctx.next_rdd_id() for _ in range(10)}
        assert len(ids) == 10

    def test_parallelize_defaults(self, ctx):
        rdd = ctx.parallelize(range(3))
        assert rdd.num_partitions == 3  # min(parallelism, len)
        big = ctx.parallelize(range(100))
        assert big.num_partitions == ctx.default_parallelism

    def test_union_helper(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([2], 1)
        assert sorted(ctx.union([a, b]).collect()) == [1, 2]

    def test_broadcast_returns_value_and_records_traffic(self, ctx):
        bc = ctx.broadcast([1, 2, 3])
        assert isinstance(bc, Broadcast)
        assert bc.value == [1, 2, 3]
        series = ctx.metrics.bucketize("net_bytes", 1.0)
        assert series.values.sum() > 0

    def test_sample_keys_runs_a_job(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(100)], 4)
        keys = ctx.sample_keys(pairs)
        assert keys
        assert set(keys) <= set(range(100))
        assert len(ctx.job_stats) == 1  # the sampling pass was a real job

    def test_reset_stats(self, ctx):
        ctx.parallelize(range(10), 2).count()
        assert ctx.stage_stats
        ctx.reset_stats()
        assert not ctx.stage_stats and not ctx.job_stats

    def test_now_tracks_simulated_time(self, ctx):
        before = ctx.now
        ctx.parallelize(range(10), 2).count()
        assert ctx.now > before

    def test_result_cache_ttl_uses_wall_clock(self):
        # result_cache_ttl is documented in wall-clock seconds, so the
        # backend must be opened with a wall clock; without a TTL the
        # deterministic tick clock keeps cache files byte-stable.
        import time

        from repro.relational.cache import _TickClock

        with_ttl = AnalyticsContext(
            uniform_cluster(n_workers=1, cores=1),
            EngineConf(default_parallelism=1, result_cache="memory",
                       result_cache_ttl=3600.0),
        )
        assert with_ttl.query_cache.backend.clock is time.time
        with_ttl.close()
        without = AnalyticsContext(
            uniform_cluster(n_workers=1, cores=1),
            EngineConf(default_parallelism=1, result_cache="memory"),
        )
        assert isinstance(without.query_cache.backend.clock, _TickClock)
        without.close()

    def test_cache_capacity_follows_executor_memory(self):
        from repro.common.units import GB

        cluster = uniform_cluster(n_workers=2, cores=2, memory=8 * GB,
                                  executor_memory=4 * GB)
        ctx = AnalyticsContext(cluster, EngineConf(
            default_parallelism=4, cache_memory_fraction=0.5
        ))
        # A block of half the executor memory fits; a larger one does not.
        assert ctx.block_store.put(1, 0, [], 1.9 * GB, "w0")
        assert not ctx.block_store.put(1, 1, [], 2.5 * GB, "w0")

"""Tests for stage formation, signatures, and stage-level scheduling."""

from repro.engine import HashPartitioner
from repro.engine.stage import RESULT, SHUFFLE_MAP


def job_stage_kinds(ctx):
    return [s.kind for s in ctx.job_stats[-1].stages]


class TestStageFormation:
    def test_narrow_chain_is_one_stage(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x).filter(lambda x: True)
        rdd.collect()
        assert job_stage_kinds(ctx) == [RESULT]

    def test_shuffle_cuts_stage(self, ctx):
        pairs = ctx.parallelize([(1, 1)], 2)
        pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        assert job_stage_kinds(ctx) == [SHUFFLE_MAP, RESULT]

    def test_two_chained_shuffles(self, ctx):
        pairs = ctx.parallelize([(i % 3, i) for i in range(20)], 3)
        out = (
            pairs.reduce_by_key(lambda a, b: a + b, 2)
            .map(lambda kv: (kv[1] % 2, 1))
            .reduce_by_key(lambda a, b: a + b, 2)
        )
        out.collect()
        assert job_stage_kinds(ctx) == [SHUFFLE_MAP, SHUFFLE_MAP, RESULT]

    def test_join_produces_parallel_map_stages(self, ctx):
        a = ctx.parallelize([(1, "a")], 2)
        b = ctx.parallelize([(1, "b")], 2)
        a.join(b, 2).collect()
        kinds = job_stage_kinds(ctx)
        assert kinds.count(SHUFFLE_MAP) == 2
        assert kinds[-1] == RESULT

    def test_copartitioned_join_skips_map_stages(self, ctx):
        part = HashPartitioner(3)
        a = ctx.parallelize([(1, 1)], 2).reduce_by_key(lambda x, y: x, partitioner=part)
        b = ctx.parallelize([(1, 2)], 2).reduce_by_key(lambda x, y: x, partitioner=part)
        a.join(b).collect()
        kinds = job_stage_kinds(ctx)
        # Two scan shuffles (into the aggregations) + fused result stage:
        # the aggregations themselves are narrow into the join.
        assert kinds.count(SHUFFLE_MAP) == 2
        assert len(kinds) == 3

    def test_result_partition_count_follows_reducer(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(10)], 4)
        pairs.reduce_by_key(lambda a, b: a + b, 7).collect()
        result = ctx.job_stats[-1].stages[-1]
        assert result.num_partitions == 7


class TestSignatures:
    def test_iterations_share_signature(self, ctx):
        """Same-structure stages (paper's KMeans 12-17) share a signature."""
        base = ctx.parallelize([(i % 3, i) for i in range(20)], 3).cache()
        sigs = []
        for _ in range(3):
            base.reduce_by_key(lambda a, b: a + b, 2).collect()
            sigs.append(
                tuple(s.signature for s in ctx.job_stats[-1].stages)
            )
        assert sigs[0] == sigs[1] == sigs[2]

    def test_different_structure_different_signature(self, ctx):
        base = ctx.parallelize([(1, 1)], 2)
        base.reduce_by_key(lambda a, b: a + b, 2).collect()
        sig_reduce = ctx.job_stats[-1].stages[-1].signature
        base.group_by_key(2).collect()
        sig_group = ctx.job_stats[-1].stages[-1].signature
        # The shared map stage is structurally identical, but the consumer
        # (result) stages differ.
        assert sig_reduce != sig_group

    def test_signature_independent_of_partition_count(self, ctx):
        base = ctx.parallelize([(1, 1)], 2)
        base.reduce_by_key(lambda a, b: a + b, 2).collect()
        sig_a = ctx.job_stats[-1].stages[-1].signature
        base.reduce_by_key(lambda a, b: a + b, 5).collect()
        sig_b = ctx.job_stats[-1].stages[-1].signature
        assert sig_a == sig_b

    def test_distinct_sources_distinct_signatures(self, ctx):
        a = ctx.source(lambda s, n: [(s, 1)], 2, op_name="table-a")
        b = ctx.source(lambda s, n: [(s, 1)], 2, op_name="table-b")
        assert a.signature != b.signature

    def test_map_vs_result_stage_of_same_rdd_differ(self, ctx):
        pairs = ctx.parallelize([(1, 1)], 2).map(lambda kv: kv)
        pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        stages = ctx.job_stats[-1].stages
        assert stages[0].signature != stages[1].signature


class TestStageStats:
    def test_input_bytes_positive(self, ctx):
        ctx.parallelize(list(range(1000)), 4).collect()
        assert ctx.job_stats[-1].stages[0].input_bytes > 0

    def test_shuffle_bytes_metric_is_max_of_read_write(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(100)], 4)
        pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        for stage in ctx.job_stats[-1].stages:
            assert stage.shuffle_bytes == max(
                stage.shuffle_read_bytes, stage.shuffle_write_bytes
            )

    def test_map_stage_writes_result_stage_reads(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(100)], 4)
        pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        map_stage, result_stage = ctx.job_stats[-1].stages
        assert map_stage.shuffle_write_bytes > 0
        assert map_stage.shuffle_read_bytes == 0
        assert result_stage.shuffle_read_bytes > 0
        # Read volume equals write volume: nothing lost in transit.
        assert result_stage.shuffle_read_bytes == map_stage.shuffle_write_bytes

    def test_task_count_matches_partitions(self, ctx):
        ctx.parallelize(range(10), 5).collect()
        stage = ctx.job_stats[-1].stages[0]
        assert len(stage.tasks) == 5

    def test_stage_duration_positive_and_bounded_by_job(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(100)], 4)
        pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        job = ctx.job_stats[-1]
        for stage in job.stages:
            assert 0 < stage.duration <= job.duration + 1e-9

    def test_partitioner_kind_recorded_for_reduce_stage(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(20)], 4)
        pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        result = ctx.job_stats[-1].stages[-1]
        assert result.partitioner_kind == "hash"

    def test_skew_metric(self, ctx):
        ctx.parallelize(range(100), 4).collect()
        stage = ctx.job_stats[-1].stages[0]
        assert stage.skew() >= 1.0

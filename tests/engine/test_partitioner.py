"""Tests for hash/range partitioners and the stable hash."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.engine import HashPartitioner, RangePartitioner, make_partitioner
from repro.engine.partitioner import stable_hash


class TestStableHash:
    @given(st.one_of(st.integers(), st.text(), st.floats(allow_nan=False)))
    def test_deterministic(self, key):
        assert stable_hash(key) == stable_hash(key)

    def test_handles_tuples(self):
        assert stable_hash((1, "a")) != stable_hash((1, "b"))
        assert stable_hash(("a", 1)) != stable_hash((1, "a"))

    def test_handles_bytes_and_objects(self):
        assert isinstance(stable_hash(b"xy"), int)
        assert isinstance(stable_hash(object), int)

    @given(st.integers())
    def test_nonnegative(self, key):
        assert stable_hash(key) >= 0


class TestHashPartitioner:
    def test_range_of_outputs(self):
        part = HashPartitioner(7)
        for key in range(1000):
            assert 0 <= part.partition(key) < 7

    def test_identical_keys_same_partition(self):
        part = HashPartitioner(10)
        assert part.partition("hot") == part.partition("hot")

    def test_equality_structural(self):
        assert HashPartitioner(5) == HashPartitioner(5)
        assert HashPartitioner(5) != HashPartitioner(6)

    def test_not_equal_to_range(self):
        assert HashPartitioner(5) != RangePartitioner(5, [1, 2, 3, 4])

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(0)

    def test_roughly_uniform_on_distinct_keys(self):
        part = HashPartitioner(4)
        counts = [0] * 4
        for key in range(10_000):
            counts[part.partition(key)] += 1
        # Distinct integer keys spread within ~15% of perfectly even.
        assert max(counts) < 1.15 * 2500
        assert min(counts) > 0.85 * 2500


class TestRangePartitioner:
    def test_bounds_routing(self):
        part = RangePartitioner(3, [10, 20])
        assert part.partition(5) == 0
        assert part.partition(15) == 1
        assert part.partition(25) == 2

    def test_from_sample_balances_uniform_keys(self):
        keys = list(range(1000))
        part = RangePartitioner.from_sample(keys, 4, seed=1)
        counts = [0] * 4
        for key in keys:
            counts[part.partition(key)] += 1
        assert max(counts) < 2 * min(counts) + 50

    def test_from_sample_isolates_hot_key(self):
        # 80% of records share one key: range bounds learned by count
        # quantiles concentrate the hot key into few partitions.
        keys = [500] * 800 + list(range(200))
        part = RangePartitioner.from_sample(keys, 4, seed=1)
        hot = part.partition(500)
        assert 0 <= hot < 4

    def test_empty_sample(self):
        part = RangePartitioner.from_sample([], 4)
        assert part.bounds == []
        assert part.num_partitions == 4  # task count preserved
        assert part.partition(123) == 0

    def test_duplicate_bounds_deduped_on_construction(self):
        part = RangePartitioner(5, [1, 1, 2, 2])
        assert part.bounds == [1, 2]
        assert part.num_partitions == 5
        # Routing is well-defined and monotone after the dedupe.
        assert part.partition(0) == 0
        assert part.partition(1) == 0
        assert part.partition(2) == 1
        assert part.partition(3) == 2

    def test_dedupe_makes_equivalent_schemes_equal(self):
        # Co-partitioning compares partitioners structurally; duplicated
        # split points used to make equivalent schemes look different.
        assert RangePartitioner(4, [1, 1, 2]) == RangePartitioner(4, [1, 2, 2])

    def test_from_sample_few_distinct_keys(self):
        # One distinct key can produce at most one bound: trailing
        # partitions stay empty but every key routes in range.
        part = RangePartitioner.from_sample([7] * 100, 4, seed=0)
        assert len(part.bounds) <= 1
        assert part.num_partitions == 4
        assert 0 <= part.partition(7) < 4

    def test_from_sample_bounds_strictly_increasing(self):
        keys = [1] * 50 + [2] * 50 + [3] * 2
        part = RangePartitioner.from_sample(keys, 8, seed=0)
        assert all(
            a < b for a, b in zip(part.bounds, part.bounds[1:])
        )
        seen = {part.partition(k) for k in keys}
        assert len(seen) == len(part.bounds) + 1

    def test_too_many_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner(2, [1, 2, 3])

    def test_too_many_bounds_counted_after_dedupe(self):
        # Three duplicated bounds collapse to one -> fits 2 partitions.
        part = RangePartitioner(2, [5, 5, 5])
        assert part.bounds == [5]

    def test_descending_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            RangePartitioner(3, [5, 1])

    def test_equality_includes_bounds(self):
        assert RangePartitioner(3, [1, 2]) == RangePartitioner(3, [1, 2])
        assert RangePartitioner(3, [1, 2]) != RangePartitioner(3, [1, 3])

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
           st.integers(1, 10))
    def test_partition_always_in_range(self, keys, n):
        part = RangePartitioner.from_sample(keys, n, seed=0)
        for key in keys:
            assert 0 <= part.partition(key) < n

    @given(st.lists(st.integers(), min_size=2, max_size=100), st.integers(2, 8))
    def test_ordering_preserved(self, keys, n):
        """Keys in a lower range never land in a higher partition."""
        part = RangePartitioner.from_sample(keys, n, seed=0)
        ordered = sorted(keys)
        partitions = [part.partition(k) for k in ordered]
        assert partitions == sorted(partitions)


class TestMakePartitioner:
    def test_hash(self):
        part = make_partitioner("hash", 5)
        assert isinstance(part, HashPartitioner)
        assert part.num_partitions == 5

    def test_range_requires_sample(self):
        with pytest.raises(ConfigurationError):
            make_partitioner("range", 5)

    def test_range_with_sample(self):
        part = make_partitioner("range", 3, sample_keys=range(100))
        assert isinstance(part, RangePartitioner)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_partitioner("zigzag", 3)

"""Tests for the task cost model's individual terms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import NodeSpec
from repro.cluster.cluster import GBPS
from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.engine.costmodel import CostModel, CostModelConfig


@pytest.fixture
def node():
    return NodeSpec("n", cores=4, speed=1.0, memory=8 * GB, net_bw=GBPS,
                    disk_bw=100 * MB, executor_memory=4 * GB)


@pytest.fixture
def model():
    return CostModel(CostModelConfig(partition_knee=64 * MB))


class TestConfig:
    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModelConfig(task_overhead=-1.0)

    def test_zero_knee_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModelConfig(partition_knee=0.0)


class TestOversizeFactor:
    def test_small_partitions_no_penalty(self, model):
        assert model.oversize_factor(10 * MB) == 1.0
        assert model.oversize_factor(64 * MB) == 1.0

    def test_penalty_grows_superlinearly(self, model):
        f2 = model.oversize_factor(128 * MB)
        f4 = model.oversize_factor(256 * MB)
        assert f4 - 1.0 > 2 * (f2 - 1.0)

    @given(st.floats(min_value=0, max_value=1e12))
    def test_factor_at_least_one(self, nbytes):
        assert CostModel().oversize_factor(nbytes) >= 1.0

    def test_monotone(self, model):
        sizes = [MB, 32 * MB, 64 * MB, 100 * MB, 1 * GB]
        factors = [model.oversize_factor(s) for s in sizes]
        assert factors == sorted(factors)


class TestComputeTime:
    def test_scales_with_bytes(self, model, node):
        t1 = model.compute_time(node, 1e6, 0, 1e6)
        t2 = model.compute_time(node, 2e6, 0, 2e6)
        assert t2 > t1

    def test_divides_by_speed(self, model, node):
        fast = NodeSpec("f", cores=4, speed=2.0, memory=8 * GB, net_bw=GBPS,
                        executor_memory=4 * GB)
        assert model.compute_time(fast, 1e6, 0, 1e6) == pytest.approx(
            model.compute_time(node, 1e6, 0, 1e6) / 2
        )

    def test_records_contribute(self, model, node):
        assert model.compute_time(node, 0, 1000, 0) > 0


class TestIoTerms:
    def test_input_io(self, model, node):
        assert model.input_io_time(node, 100 * MB) == pytest.approx(1.0)
        assert model.input_io_time(node, 0) == 0.0

    def test_shuffle_write(self, model, node):
        assert model.shuffle_write_time(node, 100 * MB) == pytest.approx(1.0)

    def test_shuffle_fetch_block_latency(self, model, node):
        t = model.shuffle_fetch_time(node, 0.0, {}, 1000, lambda s, d: GBPS)
        assert t == pytest.approx(1000 * model.config.shuffle_block_latency)

    def test_shuffle_fetch_remote_bandwidth(self, model, node):
        t = model.shuffle_fetch_time(
            node, 0.0, {"other": GBPS}, 0, lambda s, d: GBPS
        )
        assert t == pytest.approx(1.0)

    def test_shuffle_fetch_local_uses_disk(self, model, node):
        t = model.shuffle_fetch_time(node, 100 * MB, {}, 0, lambda s, d: GBPS)
        assert t == pytest.approx(1.0)


class TestDiskTransactions:
    def test_minimum_one(self, model):
        assert model.disk_transactions(1.0) == 1.0
        assert model.disk_transactions(0.0) == 0.0

    def test_scales(self, model):
        per = model.config.disk_transaction_bytes
        assert model.disk_transactions(10 * per) == pytest.approx(10.0)


class TestSpillFactor:
    def test_no_spill_within_budget(self, node, model):
        assert model.spill_factor(node, 10 * MB) == 1.0

    def test_spill_grows_with_excess(self, node, model):
        budget = node.executor_memory * model.config.memory_fraction / node.cores
        f2 = model.spill_factor(node, 2 * budget)
        f4 = model.spill_factor(node, 4 * budget)
        assert f2 == pytest.approx(2.0)
        assert f4 > f2

    def test_spill_slows_compute(self, model):
        from repro.common.units import GB as _GB

        tiny = NodeSpec("tiny", cores=4, speed=1.0, memory=1 * _GB,
                        net_bw=GBPS, executor_memory=0.5 * _GB)
        big_partition = 1 * _GB
        slow = model.compute_time(tiny, big_partition, 0, big_partition)
        # Same bytes but a comfortable working set: strictly faster.
        fast = model.compute_time(tiny, big_partition, 0, 10 * MB)
        assert slow > fast

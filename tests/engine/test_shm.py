"""Shared-memory data plane: round trips, zero-copy, lifecycle.

The leak tests are the important ones: every segment created by a test
must be gone — from ``/dev/shm`` and the mmap scratch directory — by the
time the test ends, including when a pool worker dies mid-task.
"""

import glob
import os
import tempfile

import numpy as np
import pytest

from repro.engine import shm
from repro.engine.batch import RecordBatch


def _segment_names():
    """Names of repro segments currently visible to this process."""
    names = set()
    if os.path.isdir("/dev/shm"):
        names.update(
            n for n in os.listdir("/dev/shm") if n.startswith("repro-")
        )
    scratch = os.path.join(
        tempfile.gettempdir(),
        f"repro-shm-{os.getuid() if hasattr(os, 'getuid') else 0}",
    )
    names.update(os.path.basename(p) for p in glob.glob(scratch + "/*"))
    return names


@pytest.fixture(autouse=True)
def no_leaks():
    before = _segment_names()
    yield
    shm.cleanup_segments()
    leaked = _segment_names() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


BACKENDS = ["shm", "mmap"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_SHM_BACKEND", request.param)
    return request.param


class TestRoundTrip:
    def test_large_payload_uses_segment(self, backend):
        obj = {"cols": np.arange(10_000, dtype=np.int64), "tag": "x"}
        payload = shm.encode_shared(obj)
        assert payload.segment is not None
        assert payload.segment[0] == backend
        decoded = shm.decode_shared(payload)
        assert decoded.obj["tag"] == "x"
        assert np.array_equal(decoded.obj["cols"], obj["cols"])
        decoded.close()

    def test_small_payload_inlines(self, backend):
        payload = shm.encode_shared([1, 2, 3])
        assert payload.segment is None
        assert payload.inline is not None
        decoded = shm.decode_shared(payload)
        assert decoded.obj == [1, 2, 3]

    def test_off_backend_always_inlines(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_BACKEND", "off")
        obj = np.arange(100_000, dtype=np.float64)
        payload = shm.encode_shared(obj)
        assert payload.segment is None
        decoded = shm.decode_shared(payload)
        assert np.array_equal(decoded.obj, obj)

    def test_copy_decode_owns_its_memory(self, backend):
        obj = np.arange(10_000, dtype=np.int64)
        payload = shm.encode_shared(obj)
        decoded = shm.decode_shared(payload, copy=True)
        arr = decoded.obj
        shm.cleanup_segments()  # segment gone; the copy must survive
        assert int(arr.sum()) == int(obj.sum())

    def test_record_batch_helpers(self, backend):
        batch = RecordBatch(
            np.arange(8_000, dtype=np.int64),
            np.arange(8_000, dtype=np.float64),
        )
        payload = batch.to_shared()
        decoded = RecordBatch.from_shared(payload)
        assert np.array_equal(decoded.obj.keys, batch.keys)
        assert np.array_equal(decoded.obj.values, batch.values)
        decoded.close()

    def test_zero_copy_columns_alias_segment(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shared memory on this platform")
        batch = RecordBatch(
            np.arange(8_000, dtype=np.int64),
            np.arange(8_000, dtype=np.float64),
        )
        payload = batch.to_shared()
        decoded = RecordBatch.from_shared(payload)
        # The decoded key column is a view, not a copy: no ndarray base
        # owning fresh memory of the same size.
        assert not decoded.obj.keys.flags.owndata
        decoded.close()


class TestLifecycle:
    def test_cleanup_unlinks_owned_segments(self, backend):
        shm.encode_shared(np.arange(10_000, dtype=np.int64))
        shm.encode_shared(np.arange(10_000, dtype=np.int64))
        assert shm.cleanup_segments() == 2
        assert shm.cleanup_segments() == 0  # idempotent

    def test_unlink_ref_is_idempotent(self, backend):
        payload = shm.encode_shared(np.arange(10_000, dtype=np.int64))
        ref = payload.segment
        assert shm.unlink_ref(ref) is True
        assert shm.unlink_ref(ref) is False
        shm._LIVE.pop(ref[1], None)  # already unlinked by name

    def test_unlink_never_created_returns_false(self, backend):
        assert shm.unlink_ref((backend, "repro-never-created-xyz")) is False

    def test_driver_chosen_name(self, backend):
        name = shm.next_name("test-")
        payload = shm.encode_shared(
            np.arange(10_000, dtype=np.int64), name=name
        )
        assert payload.segment == (backend, name)
        # A crashed receiver never reports back; the creator sweeps by
        # the name it chose up front.
        assert shm.unlink_ref((backend, name)) is True
        shm._LIVE.pop(name, None)

    def test_next_name_unique(self):
        names = {shm.next_name() for _ in range(100)}
        assert len(names) == 100
        assert all(str(os.getpid()) in n for n in names)

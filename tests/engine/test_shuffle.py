"""Tests for the shuffle manager's registry and fetch accounting."""

import pytest

from repro.common.errors import ShuffleError
from repro.engine.batch import RecordBatch
from repro.engine.shuffle import ShuffleManager


@pytest.fixture
def mgr():
    return ShuffleManager(block_header=10.0)


def put(mgr, shuffle_id, map_id, node, blocks):
    return mgr.put_map_output(shuffle_id, map_id, node, blocks)


class TestRegistry:
    def test_fetch_unregistered_raises(self, mgr):
        with pytest.raises(ShuffleError):
            mgr.fetch(99, 0, "a")

    def test_reregister_same_dims_is_noop(self, mgr):
        """Resubmitted map stages re-register; stored blocks must survive."""
        mgr.register(1, 1, 2)
        put(mgr, 1, 0, "a", {0: ([("k", 1)], 100.0)})
        mgr.register(1, 1, 2)
        assert mgr.bytes_written(1) == pytest.approx(110.0)
        records, _stats = mgr.fetch(1, 0, "a")
        assert records == [("k", 1)]

    def test_reregister_different_dims_raises(self, mgr):
        mgr.register(1, 2, 2)
        with pytest.raises(ShuffleError, match="different dimensions"):
            mgr.register(1, 2, 4)
        with pytest.raises(ShuffleError, match="different dimensions"):
            mgr.register(1, 3, 2)

    def test_out_of_range_map_id(self, mgr):
        mgr.register(1, 2, 2)
        with pytest.raises(ShuffleError):
            put(mgr, 1, 5, "a", {0: ([("k", 1)], 1.0)})

    def test_out_of_range_reduce_id(self, mgr):
        mgr.register(1, 1, 2)
        with pytest.raises(ShuffleError):
            put(mgr, 1, 0, "a", {7: ([("k", 1)], 1.0)})


class TestWriteAccounting:
    def test_header_added_per_nonempty_block(self, mgr):
        mgr.register(1, 1, 3)
        written = put(
            mgr, 1, 0, "a",
            {0: ([("k", 1)], 100.0), 1: ([], 0.0), 2: ([("j", 2)], 50.0)},
        )
        assert written == pytest.approx(100.0 + 50.0 + 2 * 10.0)

    def test_bytes_written_accumulates(self, mgr):
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("k", 1)], 30.0)})
        put(mgr, 1, 1, "b", {0: ([("k", 2)], 20.0)})
        assert mgr.bytes_written(1) == pytest.approx(30.0 + 20.0 + 2 * 10.0)

    def test_num_reduces(self, mgr):
        mgr.register(3, 1, 7)
        assert mgr.num_reduces(3) == 7


class TestFetch:
    def test_fetch_before_all_maps_raises(self, mgr):
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("k", 1)], 1.0)})
        with pytest.raises(ShuffleError):
            mgr.fetch(1, 0, "a")

    def test_fetch_collects_records_in_map_order(self, mgr):
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 1.0)})
        put(mgr, 1, 1, "b", {0: ([("y", 2)], 1.0)})
        records, _stats = mgr.fetch(1, 0, "a")
        assert records == [("x", 1), ("y", 2)]

    def test_local_vs_remote_accounting(self, mgr):
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 100.0)})
        put(mgr, 1, 1, "b", {0: ([("y", 2)], 40.0)})
        _records, stats = mgr.fetch(1, 0, "a")
        assert stats.local_bytes == pytest.approx(110.0)
        assert stats.remote_bytes_by_src == {"b": pytest.approx(50.0)}
        assert stats.remote_bytes == pytest.approx(50.0)
        assert stats.total_bytes == pytest.approx(160.0)
        assert stats.n_blocks == 2

    def test_empty_blocks_not_fetched(self, mgr):
        mgr.register(1, 2, 2)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 1.0)})
        put(mgr, 1, 1, "b", {1: ([("y", 2)], 1.0)})
        records, stats = mgr.fetch(1, 0, "c")
        assert records == [("x", 1)]
        assert stats.n_blocks == 1

    def test_map_output_nodes(self, mgr):
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 100.0)})
        put(mgr, 1, 1, "a", {0: ([("y", 2)], 30.0)})
        by_node = mgr.map_output_nodes(1, 0)
        assert by_node == {"a": pytest.approx(150.0)}

    def test_clear(self, mgr):
        mgr.register(1, 1, 1)
        mgr.clear()
        with pytest.raises(ShuffleError):
            mgr.bytes_written(1)


class TestReexecution:
    def test_overwrite_map_output_does_not_double_count(self, mgr):
        """Speculative/retried map tasks replace their blocks."""
        mgr.register(1, 1, 2)
        put(mgr, 1, 0, "a", {0: ([("k", 1)], 100.0)})
        put(mgr, 1, 0, "b", {0: ([("k", 1)], 100.0)})
        assert mgr.bytes_written(1) == pytest.approx(110.0)
        records, stats = mgr.fetch(1, 0, "b")
        assert records == [("k", 1)]
        assert stats.local_bytes == pytest.approx(110.0)

    def test_rerun_on_different_node_moves_block(self, mgr):
        """A map task re-run on another node relocates its output fully."""
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 100.0)})
        put(mgr, 1, 1, "c", {0: ([("y", 2)], 40.0)})
        # Map 0 re-runs on node b (retry or speculation win there).
        put(mgr, 1, 0, "b", {0: ([("x", 1)], 100.0)})
        # Locality view reports the new node only — no ghost copy on a.
        by_node = mgr.map_output_nodes(1, 0)
        assert by_node == {"b": pytest.approx(110.0), "c": pytest.approx(50.0)}
        assert mgr.bytes_written(1) == pytest.approx(110.0 + 50.0)
        # Fetch accounting follows the block to its new home.
        _records, stats = mgr.fetch(1, 0, "b")
        assert stats.local_bytes == pytest.approx(110.0)
        assert stats.remote_bytes_by_src == {"c": pytest.approx(50.0)}


class TestZeroCopyFetch:
    def test_single_block_returns_registered_container(self, mgr):
        """One non-empty contributing block: fetch hands it back uncopied."""
        mgr.register(1, 2, 2)
        block = [("x", 1), ("y", 2)]
        put(mgr, 1, 0, "a", {0: (block, 1.0)})
        put(mgr, 1, 1, "b", {1: ([("z", 3)], 1.0)})
        records, _stats = mgr.fetch(1, 0, "a")
        assert records is block

    def test_single_batch_block_returns_same_batch(self, mgr):
        mgr.register(1, 2, 2)
        batch = RecordBatch.from_records([("x", 1), ("y", 2)])
        put(mgr, 1, 0, "a", {0: (batch, 1.0)})
        put(mgr, 1, 1, "b", {1: ([("z", 3)], 1.0)})
        records, _stats = mgr.fetch(1, 0, "a")
        assert records is batch

    def test_multi_block_fetch_does_not_mutate_registered_lists(self, mgr):
        mgr.register(1, 2, 1)
        block_a = [("x", 1)]
        block_b = [("y", 2)]
        put(mgr, 1, 0, "a", {0: (block_a, 1.0)})
        put(mgr, 1, 1, "b", {0: (block_b, 1.0)})
        records, _stats = mgr.fetch(1, 0, "a")
        assert records == [("x", 1), ("y", 2)]
        assert records is not block_a and records is not block_b
        # Repeated fetches (task retries, speculation) see pristine blocks.
        assert block_a == [("x", 1)] and block_b == [("y", 2)]
        again, _stats = mgr.fetch(1, 0, "a")
        assert again == [("x", 1), ("y", 2)]

    def test_multi_block_fetch_does_not_mutate_registered_batches(self, mgr):
        mgr.register(1, 2, 1)
        batch_a = RecordBatch.from_records([("x", 1.5), ("y", 2.5)])
        batch_b = RecordBatch.from_records([("z", 3.5)])
        put(mgr, 1, 0, "a", {0: (batch_a, 1.0)})
        put(mgr, 1, 1, "b", {0: (batch_b, 1.0)})
        records, _stats = mgr.fetch(1, 0, "a")
        assert isinstance(records, RecordBatch)
        assert records.to_records() == [("x", 1.5), ("y", 2.5), ("z", 3.5)]
        assert batch_a.to_records() == [("x", 1.5), ("y", 2.5)]
        assert batch_b.to_records() == [("z", 3.5)]

    def test_mixed_block_types_flatten_to_records(self, mgr):
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: (RecordBatch.from_records([("x", 1)]), 1.0)})
        put(mgr, 1, 1, "b", {0: ([("y", 2)], 1.0)})
        records, _stats = mgr.fetch(1, 0, "a")
        assert list(records) == [("x", 1), ("y", 2)]


class TestNodeLoss:
    def test_invalidate_node_reports_lost_maps(self, mgr):
        mgr.register(1, 2, 1)
        mgr.register(2, 1, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 100.0)})
        put(mgr, 1, 1, "b", {0: ([("y", 2)], 40.0)})
        put(mgr, 2, 0, "a", {0: ([("z", 3)], 10.0)})
        lost = mgr.invalidate_node("a")
        assert lost == {1: [0], 2: [0]}
        assert mgr.missing_map_ids(1) == [0]
        assert mgr.missing_map_ids(2) == [0]
        # Surviving bytes only.
        assert mgr.bytes_written(1) == pytest.approx(50.0)
        assert mgr.bytes_written(2) == pytest.approx(0.0)

    def test_invalidate_node_without_outputs_is_empty(self, mgr):
        mgr.register(1, 1, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 1.0)})
        assert mgr.invalidate_node("zz") == {}
        assert mgr.missing_map_ids(1) == []

    def test_fetch_after_loss_raises_typed_failure(self, mgr):
        from repro.common.errors import FetchFailure

        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 100.0)})
        put(mgr, 1, 1, "b", {0: ([("y", 2)], 40.0)})
        mgr.invalidate_node("a")
        with pytest.raises(FetchFailure) as exc_info:
            mgr.fetch(1, 0, "b")
        failure = exc_info.value
        assert isinstance(failure, ShuffleError)
        assert failure.shuffle_id == 1
        assert failure.map_ids == [0]
        assert failure.node == "a"

    def test_rebuilt_output_heals_shuffle(self, mgr):
        mgr.register(1, 2, 1)
        put(mgr, 1, 0, "a", {0: ([("x", 1)], 100.0)})
        put(mgr, 1, 1, "b", {0: ([("y", 2)], 40.0)})
        mgr.invalidate_node("a")
        put(mgr, 1, 0, "b", {0: ([("x", 1)], 100.0)})
        assert mgr.missing_map_ids(1) == []
        records, _stats = mgr.fetch(1, 0, "b")
        assert records == [("x", 1), ("y", 2)]

"""Unit tests for the AQE decision logic on synthetic histograms.

The pure functions in :mod:`repro.engine.adaptive` decide what the DAG
scheduler does at runtime; these tests pin their behavior on hand-built
size histograms, independent of any engine execution. The end-to-end
bit-identity properties live in ``test_aqe_oracle.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.common.errors import ConfigurationError
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.adaptive import (
    AdaptiveTaskSpec,
    bucket_records,
    hot_partitions,
    plan_partitions,
    should_switch,
    slice_map_ranges,
    splittable_shuffle,
)
from repro.engine.partitioner import HashPartitioner, RangePartitioner

MB = 1024.0 * 1024.0


class TestHotPartitions:
    def test_uniform_has_no_hot(self):
        assert hot_partitions(
            [10.0] * 8, skew_threshold=4.0, target_bytes=1.0
        ) == set()

    def test_hot_partition_flagged(self):
        sizes = [10.0, 10.0, 10.0, 100.0]
        assert hot_partitions(
            sizes, skew_threshold=4.0, target_bytes=1.0
        ) == {3}

    def test_threshold_is_strict(self):
        # exactly threshold x median is NOT hot (strict >)
        sizes = [10.0, 10.0, 10.0, 40.0]
        assert (
            hot_partitions(sizes, skew_threshold=4.0, target_bytes=1.0)
            == set()
        )

    def test_small_absolute_sizes_not_hot(self):
        # 100x the median but under target_bytes: splitting buys nothing
        sizes = [1.0, 1.0, 1.0, 100.0]
        assert (
            hot_partitions(sizes, skew_threshold=4.0, target_bytes=200.0)
            == set()
        )

    def test_median_ignores_empty_partitions(self):
        # range partitioners leave empty trailing buckets; a zero median
        # must not make every non-empty partition "hot"
        sizes = [0.0] * 6 + [10.0, 11.0]
        assert (
            hot_partitions(sizes, skew_threshold=4.0, target_bytes=1.0)
            == set()
        )

    def test_all_empty(self):
        assert hot_partitions(
            [0.0, 0.0], skew_threshold=4.0, target_bytes=1.0
        ) == set()


class TestShouldSwitch:
    def test_balanced_histogram_keeps_partitioner(self):
        assert not should_switch([10.0, 11.0, 9.0, 10.0], skew_threshold=4.0)

    def test_skewed_histogram_switches(self):
        assert should_switch([10.0, 10.0, 10.0, 50.0], skew_threshold=4.0)

    def test_degenerate_inputs_never_switch(self):
        assert not should_switch([], skew_threshold=4.0)
        assert not should_switch([100.0], skew_threshold=4.0)
        assert not should_switch([0.0, 100.0], skew_threshold=4.0)


class TestSliceMapRanges:
    def test_even_bytes_even_cuts(self):
        assert slice_map_ranges([100.0] * 8, 4) == [
            (0, 2), (2, 4), (4, 6), (6, 8),
        ]

    def test_ranges_are_contiguous_and_complete(self):
        per_map = [5.0, 80.0, 5.0, 5.0, 80.0, 5.0, 5.0, 15.0]
        ranges = slice_map_ranges(per_map, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(per_map)
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        assert all(hi > lo for lo, hi in ranges)

    def test_want_capped_by_map_count(self):
        ranges = slice_map_ranges([10.0, 10.0], 8)
        assert ranges == [(0, 1), (1, 2)]

    def test_degenerate_inputs_single_range(self):
        assert slice_map_ranges([], 4) == [(0, 0)]
        assert slice_map_ranges([10.0] * 4, 1) == [(0, 4)]
        assert slice_map_ranges([0.0] * 4, 2) == [(0, 4)]


class TestPlanPartitions:
    def test_no_change_returns_none(self):
        # partitions already near target: nothing to coalesce or split
        assert (
            plan_partitions(
                [60.0 * MB] * 8, skew_threshold=4.0, target_bytes=64 * MB
            )
            is None
        )

    def test_single_partition_returns_none(self):
        assert (
            plan_partitions(
                [1.0], skew_threshold=4.0, target_bytes=64 * MB
            )
            is None
        )

    def test_tiny_partitions_coalesced_toward_target(self):
        sizes = [1.0 * MB] * 16
        plan = plan_partitions(
            sizes, skew_threshold=4.0, target_bytes=4 * MB
        )
        assert plan is not None
        assert plan.n_split == 0
        assert plan.n_coalesced == 16
        assert [s.splits for s in plan.specs] == [
            tuple(range(i, i + 4)) for i in range(0, 16, 4)
        ]
        # coalesced runs must cover every original partition exactly once
        covered = [p for s in plan.specs for p in s.splits]
        assert covered == list(range(16))
        assert plan.after_sizes == [4.0 * MB] * 4

    def test_coalesce_respects_target_boundary(self):
        sizes = [3.0 * MB, 3.0 * MB, 3.0 * MB]
        plan = plan_partitions(
            sizes, skew_threshold=4.0, target_bytes=6 * MB
        )
        assert plan is not None
        assert [s.splits for s in plan.specs] == [(0, 1), (2,)]

    def test_hot_partition_split_into_slices(self):
        sizes = [10.0 * MB, 10.0 * MB, 10.0 * MB, 400.0 * MB]
        per_map = [100.0 * MB] * 4

        plan = plan_partitions(
            sizes,
            skew_threshold=4.0,
            target_bytes=100 * MB,
            shuffle_id=7,
            map_sizes=lambda rid: per_map,
        )
        assert plan is not None
        assert plan.n_split == 1
        slices = [s for s in plan.specs if s.is_slice]
        assert len(slices) == 4
        assert all(s.splits == (3,) for s in slices)
        assert all(s.shuffle_id == 7 for s in slices)
        assert [s.slice_index for s in slices] == [0, 1, 2, 3]
        assert all(s.n_slices == 4 for s in slices)
        # slice ranges tile the map outputs
        assert slices[0].map_range[0] == 0
        assert slices[-1].map_range[1] == 4

    def test_no_split_without_map_sizes(self):
        # aggregating pipelines pass map_sizes=None: the hot partition
        # must run unsplit (slice-wise folds are not bit-identical)
        sizes = [10.0 * MB, 10.0 * MB, 10.0 * MB, 400.0 * MB]
        plan = plan_partitions(
            sizes, skew_threshold=4.0, target_bytes=100 * MB
        )
        if plan is not None:
            assert plan.n_split == 0
            assert not any(s.is_slice for s in plan.specs)

    def test_max_slices_respected(self):
        sizes = [1.0 * MB, 1.0 * MB, 64.0 * MB]
        per_map = [1.0 * MB] * 64
        plan = plan_partitions(
            sizes,
            skew_threshold=4.0,
            target_bytes=2 * MB,
            max_slices=4,
            shuffle_id=1,
            map_sizes=lambda rid: per_map,
        )
        assert plan is not None
        assert sum(1 for s in plan.specs if s.is_slice) == 4

    def test_plan_is_deterministic(self):
        sizes = [3.0 * MB, 1.0 * MB, 50.0 * MB, 2.0 * MB, 1.0 * MB]
        per_map = [12.5 * MB] * 4
        kwargs = dict(
            skew_threshold=4.0,
            target_bytes=5 * MB,
            shuffle_id=0,
            map_sizes=lambda rid: per_map,
        )
        a = plan_partitions(sizes, **kwargs)
        b = plan_partitions(sizes, **kwargs)
        assert a is not None
        assert a.specs == b.specs
        assert a.after_sizes == b.after_sizes


class TestAdaptiveTaskSpec:
    def test_plain(self):
        spec = AdaptiveTaskSpec(splits=(3,))
        assert spec.is_plain and not spec.is_slice

    def test_slice(self):
        spec = AdaptiveTaskSpec(
            splits=(3,), map_range=(0, 2), shuffle_id=1, n_slices=2
        )
        assert spec.is_slice and not spec.is_plain

    def test_coalesced(self):
        spec = AdaptiveTaskSpec(splits=(3, 4, 5))
        assert not spec.is_plain and not spec.is_slice


class TestSplittableShuffle:
    def setup_method(self):
        self.ctx = AnalyticsContext(
            uniform_cluster(n_workers=2, cores=2),
            EngineConf(default_parallelism=4),
        )

    def teardown_method(self):
        self.ctx.close()

    def _result_stage(self, rdd):
        return self.ctx.dag_scheduler._build_stages(rdd)

    def test_identity_shuffle_with_record_local_chain(self):
        pairs = self.ctx.parallelize([(i, i) for i in range(20)], 4)
        rdd = (
            pairs.partition_by(HashPartitioner(4))
            .values()
            .map(lambda v: v + 1)
            .filter(lambda v: v > 0)
        )
        dep = splittable_shuffle(self._result_stage(rdd))
        assert dep is not None

    def test_aggregate_shuffle_not_splittable(self):
        pairs = self.ctx.parallelize([(i % 3, 1) for i in range(20)], 4)
        rdd = pairs.reduce_by_key(lambda a, b: a + b, 4)
        assert splittable_shuffle(self._result_stage(rdd)) is None

    def test_sorted_shuffle_not_splittable(self):
        pairs = self.ctx.parallelize([(i, i) for i in range(20)], 4)
        rdd = pairs.sort_by_key(4)
        assert splittable_shuffle(self._result_stage(rdd)) is None

    def test_non_record_local_step_blocks_split(self):
        pairs = self.ctx.parallelize([(i, i) for i in range(20)], 4)
        rdd = (
            pairs.partition_by(HashPartitioner(4))
            .glom()  # partition-level op: no RecordOp
        )
        assert splittable_shuffle(self._result_stage(rdd)) is None

    def test_cached_chain_blocks_split(self):
        pairs = self.ctx.parallelize([(i, i) for i in range(20)], 4)
        rdd = pairs.partition_by(HashPartitioner(4)).values().cache()
        assert splittable_shuffle(self._result_stage(rdd)) is None


class TestBucketRecords:
    def _check(self, vectorized):
        records = [(i % 7, i) for i in range(100)]
        part = HashPartitioner(4)
        out = bucket_records(
            records, part, lambda r: r[0], write_scale=2.0,
            vectorized=vectorized,
        )
        # every record lands in its partitioner bucket, input order kept
        rebuilt = []
        for rid in sorted(out):
            recs, nbytes = out[rid]
            assert nbytes > 0
            assert all(part.partition(r[0]) == rid for r in recs)
            rebuilt.extend(recs)
        assert sorted(rebuilt) == sorted(records)
        for rid, (recs, _) in out.items():
            assert recs == [r for r in records if part.partition(r[0]) == rid]
        return out

    def test_scalar_path(self):
        self._check(vectorized=False)

    def test_vectorized_path_matches_scalar(self):
        vec = self._check(vectorized=True)
        scalar = self._check(vectorized=False)
        assert {k: v[0] for k, v in vec.items()} == {
            k: v[0] for k, v in scalar.items()
        }
        for rid in vec:
            assert vec[rid][1] == pytest.approx(scalar[rid][1])

    def test_empty(self):
        assert bucket_records([], HashPartitioner(2), lambda r: r, 1.0) == {}


class TestFromWeightedKeys:
    def test_balances_weighted_mass(self):
        # key 0 holds half the mass: it must get its own partition
        keys = [0] * 50 + list(range(1, 51))
        weights = [1.0] * len(keys)
        part = RangePartitioner.from_weighted_keys(keys, weights, 2)
        assert part.num_partitions == 2
        zero_bucket = part.partition(0)
        others = {part.partition(k) for k in range(1, 51)}
        assert others != {zero_bucket}

    def test_equal_keys_stay_together(self):
        # bounds never cut inside an equal-key run
        keys = [1] * 10 + [2] * 10
        part = RangePartitioner.from_weighted_keys(keys, [1.0] * 20, 4)
        assert part.partition(1) != part.partition(2)
        ones = {part.partition(1)}
        assert len(ones) == 1

    def test_empty_keys(self):
        part = RangePartitioner.from_weighted_keys([], [], 3)
        assert part.num_partitions == 3

    def test_deterministic(self):
        keys = [i % 13 for i in range(200)]
        weights = [float(1 + i % 5) for i in range(200)]
        a = RangePartitioner.from_weighted_keys(keys, weights, 5)
        b = RangePartitioner.from_weighted_keys(keys, weights, 5)
        assert a == b


class TestConfValidation:
    def test_skew_threshold_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            EngineConf(aqe_skew_threshold=1.0)

    def test_target_bytes_positive(self):
        with pytest.raises(ConfigurationError):
            EngineConf(aqe_target_partition_bytes=0)

    def test_max_subpartitions_at_least_two(self):
        with pytest.raises(ConfigurationError):
            EngineConf(aqe_max_subpartitions=1)

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_AQE", "1")
        assert EngineConf().adaptive_execution is True
        monkeypatch.setenv("REPRO_AQE", "0")
        assert EngineConf().adaptive_execution is False
        monkeypatch.delenv("REPRO_AQE")
        assert not EngineConf().adaptive_execution

"""Vectorized kernels must be bit-identical to the scalar hot paths.

``stable_hash_many`` / ``partition_many`` / ``estimate_sizes`` are pure
speedups: every test here pins them against the per-record scalar
functions, including the ugly corners (int64 edges, overflow fallback,
NaN, ragged tuples, unicode) where a numpy reimplementation could
silently diverge.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.sizing import estimate_partition_size, estimate_size, estimate_sizes
from repro.engine import HashPartitioner, RangePartitioner
from repro.engine.partitioner import stable_hash, stable_hash_many

any_key = st.one_of(
    st.integers(),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.floats(allow_nan=False),
    st.booleans(),
    st.tuples(st.integers(), st.text(max_size=5)),
)


class TestStableHashMany:
    @given(st.lists(any_key, max_size=30))
    def test_matches_scalar(self, keys):
        assert stable_hash_many(keys) == [stable_hash(k) for k in keys]

    def test_int_edges(self):
        keys = [
            0, 1, -1, 127, 128, -128, -129, 255, 256,
            2**31 - 1, -(2**31), 2**53, -(2**53) - 1,
            2**63 - 1, -(2**63), 2**64, -(2**70),  # last two: overflow fallback
        ]
        assert stable_hash_many(keys) == [stable_hash(k) for k in keys]

    def test_string_and_bytes_edges(self):
        keys = ["", "a", "éclair 中文", "x" * 300]
        assert stable_hash_many(keys) == [stable_hash(k) for k in keys]
        bkeys = [b"", b"\x00\xff", b"y" * 300]
        assert stable_hash_many(bkeys) == [stable_hash(k) for k in bkeys]

    def test_numpy_scalars(self):
        keys = [np.int64(5), np.int64(-3), np.int32(7)]
        assert stable_hash_many(keys) == [stable_hash(k) for k in keys]


class TestPartitionMany:
    @given(st.lists(any_key, max_size=30), st.integers(min_value=1, max_value=16))
    def test_hash_matches_scalar(self, keys, n):
        p = HashPartitioner(n)
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    @given(
        st.lists(st.integers(-1000, 1000), min_size=1, max_size=40),
        st.lists(st.integers(-1000, 1000), max_size=30),
    )
    def test_range_int_matches_scalar(self, sample, keys):
        p = RangePartitioner.from_sample(sample, 4)
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    @given(
        st.lists(st.text(max_size=6), min_size=1, max_size=40),
        st.lists(st.text(max_size=6), max_size=30),
    )
    def test_range_text_matches_scalar(self, sample, keys):
        p = RangePartitioner.from_sample(sample, 3)
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    def test_range_float_edges_match_scalar(self):
        p = RangePartitioner.from_sample([0.0, 1.5, 3.25, 10.0], 3)
        keys = [-1.0, 0.0, 1.5, 2.0, math.inf, -math.inf, math.nan, 1e300]
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    def test_range_huge_ints_match_scalar(self):
        # Beyond 2**53 a float64 searchsorted would round; the kernel
        # must detect this and fall back to exact bisection.
        p = RangePartitioner.from_sample([2**53, 2**53 + 1, 2**60], 3)
        keys = [2**53 - 1, 2**53, 2**53 + 1, 2**53 + 2, 2**60, -(2**60)]
        assert p.partition_many(keys) == [p.partition(k) for k in keys]

    def test_empty(self):
        assert HashPartitioner(4).partition_many([]) == []
        p = RangePartitioner.from_sample([1, 2, 3], 4)
        assert p.partition_many([]) == []


records = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.none(),
    st.booleans(),
    st.tuples(st.integers(), st.floats(allow_nan=False)),
    st.tuples(st.text(max_size=8), st.integers()),
    st.lists(st.integers(), max_size=5),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=4),
)


class TestEstimateSizes:
    @given(st.lists(records, max_size=30))
    def test_matches_scalar(self, recs):
        assert estimate_sizes(recs) == [estimate_size(r) for r in recs]

    def test_numpy_records(self):
        recs = [np.arange(10), np.zeros((3, 4)), np.arange(2)]
        assert estimate_sizes(recs) == [estimate_size(r) for r in recs]
        scalars = [np.float64(1.5), np.float64(-2.0)]
        assert estimate_sizes(scalars) == [estimate_size(r) for r in scalars]

    def test_ragged_tuples(self):
        recs = [(1, 2), (1, 2, 3), (4,)]
        assert estimate_sizes(recs) == [estimate_size(r) for r in recs]

    def test_partition_size_vectorized_identical(self):
        recs = [("word-%d" % (i % 7), i * 1.5) for i in range(500)]
        assert estimate_partition_size(recs, vectorized=True) == (
            estimate_partition_size(recs)
        )

    def test_partition_size_sampling(self):
        recs = list(range(1000))
        exact = estimate_partition_size(recs)
        sampled = estimate_partition_size(recs, sample_cap=100)
        # Uniform records: the extrapolated estimate is exact.
        assert sampled == pytest.approx(exact)
        small = [1, 2, 3]
        assert estimate_partition_size(small, sample_cap=100) == (
            estimate_partition_size(small)
        )

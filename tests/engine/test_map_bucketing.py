"""Regression test for map-side output bucketing.

``TaskRunner._run_map_task`` used to rebuild the per-bucket
``(records, bytes)`` tuple on every record — quadratic over bucket size.
It now appends into mutable accumulators. These tests pin down that the
optimized bucketing hands ``put_map_output`` byte-for-byte the same
payloads as the naive tuple-rebuild reference, on both the combined
(``reduce_by_key``) and pass-through (``group_by_key``) map paths.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import pytest

from repro.cluster import uniform_cluster
from repro.common.sizing import estimate_size
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.engine.executor import TaskRunner
from repro.engine.shuffle import ShuffleManager


def _reference_run_map_task(self, stage, split, tctx):
    """The pre-optimization bucketing: tuple rebuild per record."""
    dep = stage.shuffle_dep
    assert dep is not None
    records = stage.rdd.materialize(split, tctx)

    if dep.map_side_combine:
        agg = dep.aggregator
        combined: Dict[Any, Any] = {}
        for record in records:
            k = dep.key_fn(record)
            v = record[1]
            if k in combined:
                combined[k] = agg.merge_value(combined[k], v)
            else:
                combined[k] = agg.create_combiner(v)
        out_records: List = list(combined.items())
        write_scale = 1.0
    else:
        out_records = records
        write_scale = stage.rdd.size_scale

    buckets: Dict[int, Tuple[List, float]] = {}
    for record in out_records:
        rid = dep.partitioner.partition(dep.key_fn(record))
        recs, nbytes = buckets.get(rid, ([], 0.0))
        buckets[rid] = (
            recs + [record],
            nbytes + estimate_size(record) * write_scale,
        )

    written = self.ctx.shuffle_manager.put_map_output(
        dep.shuffle_id, split, tctx.node, buckets
    )
    tctx.note_shuffle_write(written)


def _capture_payloads(monkeypatch, job, reference: bool):
    """Run ``job`` once; return every put_map_output payload, in order."""
    payloads = []
    original_put = ShuffleManager.put_map_output

    def recording_put(self, shuffle_id, map_id, node, buckets):
        # shuffle_id comes from a process-global counter, so it differs
        # between the two comparison runs; the payload proper is
        # (map split, bucket contents, bucket byte sizes).
        payloads.append(
            (
                map_id,
                {rid: (list(recs), nbytes) for rid, (recs, nbytes) in buckets.items()},
            )
        )
        return original_put(self, shuffle_id, map_id, node, buckets)

    monkeypatch.setattr(ShuffleManager, "put_map_output", recording_put)
    if reference:
        monkeypatch.setattr(TaskRunner, "_run_map_task", _reference_run_map_task)
    cost = CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0)
    # physical_parallelism pinned to 1: this test intercepts
    # put_map_output at the worker boundary, where threaded execution
    # calls it in completion order (the *applied* order stays serial).
    ctx = AnalyticsContext(
        uniform_cluster(n_workers=2, cores=2),
        EngineConf(default_parallelism=4, cost=cost, physical_parallelism=1),
    )
    result = job(ctx)
    monkeypatch.undo()
    return payloads, result


def _skewed_pairs(ctx):
    # A hot key plus a long tail: buckets of very different sizes.
    data = [(i % 5 if i % 3 else 0, i) for i in range(4000)]
    return ctx.parallelize(data, 4)


JOBS = {
    "combined": lambda ctx: _skewed_pairs(ctx)
    .reduce_by_key(lambda a, b: a + b, 3)
    .collect_as_map(),
    "passthrough": lambda ctx: _skewed_pairs(ctx)
    .group_by_key(3)
    .map_values(len)
    .collect_as_map(),
}


class TestMapBucketingRegression:
    @pytest.mark.parametrize("name", sorted(JOBS))
    def test_payloads_match_naive_reference(self, monkeypatch, name):
        job = JOBS[name]
        got, result = _capture_payloads(monkeypatch, job, reference=False)
        want, ref_result = _capture_payloads(monkeypatch, job, reference=True)
        assert result == ref_result
        assert got == want  # identical buckets, byte sums, and ordering

    def test_payloads_nontrivial(self, monkeypatch):
        payloads, _ = _capture_payloads(
            monkeypatch, JOBS["passthrough"], reference=False
        )
        assert payloads, "job produced no map output"
        # Every reduce bucket carries records and a positive byte size.
        assert any(len(buckets) > 1 for _, buckets in payloads)
        for _mid, buckets in payloads:
            for recs, nbytes in buckets.values():
                assert recs and nbytes > 0

"""Tests for accumulators."""

import pytest

from repro.common.errors import ConfigurationError
from repro.engine.accumulators import make_accumulator


class TestAccumulator:
    def test_numeric_default_add(self):
        acc = make_accumulator(0)
        acc.add(3)
        acc += 4
        assert acc.value == 7
        assert acc.adds == 2

    def test_custom_add_op(self):
        acc = make_accumulator([], add_op=lambda a, b: a + [b], name="log")
        acc.add("x")
        acc.add("y")
        assert acc.value == ["x", "y"]

    def test_non_numeric_requires_add_op(self):
        with pytest.raises(ConfigurationError):
            make_accumulator([])

    def test_reset(self):
        acc = make_accumulator(0)
        acc.add(5)
        acc.reset()
        assert acc.value == 0 and acc.adds == 0

    def test_counts_records_during_run(self, ctx):
        acc = ctx.accumulator(0, name="records")
        rdd = ctx.parallelize(range(100), 4)

        def count_records(_s, recs):
            acc.add(len(recs))
            return recs

        rdd.map_partitions(count_records).collect()
        assert acc.value == 100

    def test_failed_attempts_do_not_double_count(self):
        from repro.cluster import uniform_cluster
        from repro.engine import AnalyticsContext, EngineConf

        ctx = AnalyticsContext(
            uniform_cluster(n_workers=2, cores=2),
            EngineConf(
                default_parallelism=4, task_failure_rate=0.3,
                max_task_attempts=8,
            ),
        )
        acc = ctx.accumulator(0)
        rdd = ctx.parallelize(range(60), 6)

        def touch(_s, recs):
            acc.add(len(recs))
            return recs

        assert rdd.map_partitions(touch).count() == 60
        # Failed attempts never execute the pipeline, so each partition
        # contributes exactly once.
        assert acc.value == 60

"""Narrow-stage operator fusion: one kernel, identical observables.

``operator_fusion=True`` compiles adjacent map/filter/mapValues steps
into a single per-partition pass (loop-fused, or vectorized on columnar
batches when every step supplies an opt-in ``vec`` kernel). Everything
the simulation observes — results, per-step byte accounting, the clock,
caching, error behaviour — must be identical to the step-at-a-time path.
"""

import json

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.rdd import MapPartitionsRDD
from repro.obs import MetricsRegistry


def make_ctx(**kwargs):
    kwargs.setdefault("default_parallelism", 4)
    return AnalyticsContext(paper_cluster(), EngineConf(**kwargs))


def chain(ctx):
    return (
        ctx.parallelize([("w%d" % (i % 5), i) for i in range(40)], 4)
        .filter(lambda kv: kv[1] % 2 == 0)
        .map_values(lambda v: v + 1)
        .map(lambda kv: (kv[0], kv[1] * 2))
    )


def run_fingerprint(**conf_kwargs):
    registry = MetricsRegistry()
    ctx = AnalyticsContext(
        paper_cluster(),
        EngineConf(default_parallelism=4, **conf_kwargs),
        metrics_registry=registry,
    )
    result = chain(ctx).reduce_by_key(lambda a, b: a + b, numeric_add=True)
    collected = sorted(result.collect())
    return collected, ctx.now, json.dumps(registry.snapshot(), default=str)


class TestFusionChain:
    def test_chain_detected(self):
        ctx = make_ctx(operator_fusion=True)
        top = chain(ctx)
        fused = top._fusion_chain()
        assert fused is not None
        assert [s._record_op.kind for s in fused] == [
            "filter", "map_values", "map"
        ]

    def test_chain_off_without_conf(self):
        ctx = make_ctx()
        assert chain(ctx)._fusion_chain() is None

    def test_single_step_not_fused(self):
        ctx = make_ctx(operator_fusion=True)
        rdd = ctx.parallelize([("a", 1)], 2).map(lambda kv: kv)
        assert rdd._fusion_chain() is None

    def test_chain_breaks_at_partition_level_op(self):
        ctx = make_ctx(operator_fusion=True)
        rdd = (
            ctx.parallelize([("a", 1)], 2)
            .map(lambda kv: kv)
            .flat_map(lambda kv: [kv])  # no RecordOp: breaks the chain
            .map(lambda kv: kv)
            .map_values(lambda v: v)
        )
        fused = rdd._fusion_chain()
        assert fused is not None and len(fused) == 2

    def test_chain_breaks_at_cached_step(self):
        ctx = make_ctx(operator_fusion=True)
        cached = chain(ctx).cache()
        top = cached.map_values(lambda v: v).map(lambda kv: kv)
        fused = top._fusion_chain()
        assert fused is not None
        assert cached not in fused and len(fused) == 2

    def test_fused_results_and_accounting_identical(self):
        assert run_fingerprint() == run_fingerprint(operator_fusion=True)

    def test_fused_vectorized_columnar_identical(self):
        assert run_fingerprint() == run_fingerprint(
            operator_fusion=True,
            vectorized_kernels=True,
            record_format="columnar",
        )

    def test_cached_top_of_chain_identical(self):
        def run(**kwargs):
            ctx = make_ctx(**kwargs)
            top = chain(ctx).cache()
            first = sorted(top.collect())
            second = sorted(top.collect())  # cache-hit path
            return first, second, ctx.now

        assert run() == run(operator_fusion=True)

    def test_fused_error_behaviour_matches_unfused(self):
        # A malformed record must blow up identically (same exception
        # type from the same unpacking) whether or not the chain fused.
        def run(**kwargs):
            ctx = make_ctx(**kwargs)
            rdd = (
                ctx.parallelize([("a", 1), "oops"], 1)
                .map_values(lambda v: v)
                .map(lambda kv: kv)
            )
            with pytest.raises(Exception) as info:
                rdd.collect()
            return type(info.value.__cause__ or info.value)

        assert run() == run(operator_fusion=True)


class TestVecKernels:
    def test_vec_chain_runs_on_columns(self):
        ctx = make_ctx(
            operator_fusion=True, vectorized_kernels=True,
            record_format="columnar",
        )
        rdd = (
            ctx.parallelize([("w%d" % i, i) for i in range(20)], 2)
            .filter(
                lambda kv: kv[1] >= 5,
                vec=lambda keys, values: values >= 5,
            )
            .map_values(float, vec=lambda values: values.astype(np.float64))
        )
        out = sorted(rdd.reduce_by_key(
            lambda a, b: a + b, numeric_add=True, map_side_combine=False
        ).collect())
        expect = sorted((f"w{i}", float(i)) for i in range(5, 20))
        assert out == expect
        for k, v in out:
            assert type(k) is str and type(v) is float

    def test_vec_and_scalar_paths_agree(self):
        def run(**kwargs):
            ctx = make_ctx(**kwargs)
            rdd = (
                ctx.parallelize([("w%d" % (i % 7), i) for i in range(50)], 4)
                .filter(
                    lambda kv: len(kv[0]) >= 2,
                    vec=lambda keys, values: np.char.str_len(keys) >= 2,
                )
                .map_values(float, vec=lambda v: v.astype(np.float64))
            )
            agg = rdd.reduce_by_key(
                lambda a, b: a + b, numeric_add=True, map_side_combine=False
            )
            return sorted(agg.collect()), ctx.now

        base = run()
        assert base == run(operator_fusion=True)
        assert base == run(
            operator_fusion=True, vectorized_kernels=True,
            record_format="columnar",
        )


class TestMapPartitionsPlumbing:
    def test_record_op_absent_on_partition_ops(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([1, 2], 2).flat_map(lambda x: [x])
        assert isinstance(rdd, MapPartitionsRDD)
        assert rdd._record_op is None

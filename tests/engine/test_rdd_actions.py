"""Correctness tests for RDD actions and caching."""

import pytest

from repro.common.errors import WorkloadError


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(17), 4).count() == 17

    def test_first(self, ctx):
        assert ctx.parallelize([5, 6, 7], 2).first() == 5

    def test_first_empty_raises(self, ctx):
        with pytest.raises(WorkloadError):
            ctx.parallelize([], 1).first()

    def test_take(self, ctx):
        assert ctx.parallelize(range(100), 5).take(3) == [0, 1, 2]

    def test_take_more_than_available(self, ctx):
        assert ctx.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 11), 3).reduce(lambda a, b: a + b) == 55

    def test_reduce_with_empty_partitions(self, ctx):
        assert ctx.parallelize([7], 4).reduce(lambda a, b: a + b) == 7

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(WorkloadError):
            ctx.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_sum_mean(self, ctx):
        rdd = ctx.parallelize([1.0, 2.0, 3.0], 2)
        assert rdd.sum() == pytest.approx(6.0)
        assert rdd.mean() == pytest.approx(2.0)

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(WorkloadError):
            ctx.parallelize([], 2).mean()

    def test_aggregate(self, ctx):
        out = ctx.parallelize(range(10), 3).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert out == (45, 10)

    def test_aggregate_mutable_zero_not_shared(self, ctx):
        out = ctx.parallelize(range(6), 3).aggregate(
            [], lambda acc, x: acc + [x], lambda a, b: a + b
        )
        assert sorted(out) == [0, 1, 2, 3, 4, 5]

    def test_tree_aggregate_matches_aggregate(self, ctx):
        rdd = ctx.parallelize(range(20), 5)
        plain = rdd.aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
        tree = rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b, scale=2)
        assert plain == tree == 190

    def test_tree_aggregate_bad_scale(self, ctx):
        with pytest.raises(WorkloadError):
            ctx.parallelize([1], 1).tree_aggregate(0, min, min, scale=0)

    def test_count_by_key(self, ctx):
        pairs = ctx.parallelize([(1, "a"), (1, "b"), (2, "c")], 2)
        assert pairs.count_by_key() == {1: 2, 2: 1}

    def test_collect_as_map(self, ctx):
        assert ctx.parallelize([(1, 2)], 1).collect_as_map() == {1: 2}

    def test_take_sample(self, ctx):
        rdd = ctx.parallelize(range(100), 4)
        sample = rdd.take_sample(10, seed=1)
        assert len(sample) == 10
        assert len(set(sample)) == 10
        assert rdd.take_sample(10, seed=1) == sample

    def test_take_sample_larger_than_data(self, ctx):
        assert sorted(ctx.parallelize([1, 2], 1).take_sample(10)) == [1, 2]


class TestCaching:
    def test_cache_returns_same_records(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x + 1).cache()
        first = sorted(rdd.collect())
        second = sorted(rdd.collect())
        assert first == second == list(range(1, 11))

    def test_cache_populates_block_store(self, ctx):
        rdd = ctx.parallelize(range(10), 3).cache()
        rdd.count()
        assert all(ctx.block_store.contains(rdd.id, i) for i in range(3))

    def test_second_pass_is_cheaper(self, ctx):
        rdd = ctx.parallelize(list(range(5000)), 4).map(lambda x: x * 2).cache()
        rdd.count()
        first_duration = ctx.job_stats[-1].duration
        rdd.count()
        second_duration = ctx.job_stats[-1].duration
        assert second_duration < first_duration

    def test_unpersist_evicts(self, ctx):
        rdd = ctx.parallelize(range(10), 2).cache()
        rdd.count()
        rdd.unpersist()
        assert ctx.block_store.total_bytes() == 0.0
        assert not rdd.is_cached

    def test_cached_shuffle_output(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(30)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b, 2).cache()
        assert reduced.collect_as_map() == reduced.collect_as_map()


class TestShuffleReuse:
    def test_shuffle_skipped_on_second_action(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(30)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b, 2)
        reduced.count()
        stages_first = len(ctx.stage_stats)
        reduced.count()
        stages_second = len(ctx.stage_stats) - stages_first
        # Second job re-runs only the result stage; the map stage is skipped.
        assert stages_second == 1


class TestDeterminism:
    def test_same_workload_same_simulated_time(self, small_cluster):
        from repro.engine import AnalyticsContext, EngineConf

        def run():
            c = AnalyticsContext(small_cluster, EngineConf(default_parallelism=8))
            pairs = c.parallelize([(i % 7, i) for i in range(500)], 6)
            pairs.reduce_by_key(lambda a, b: a + b, 4).collect()
            return c.now

        assert run() == run()

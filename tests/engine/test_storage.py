"""Tests for the block store."""

import pytest

from repro.engine.storage import BlockStore


@pytest.fixture
def store():
    return BlockStore()


def test_put_get_roundtrip(store):
    store.put(1, 0, [1, 2], 100.0, "a")
    block = store.get(1, 0)
    assert block.records == [1, 2]
    assert block.node == "a"


def test_missing_returns_none(store):
    assert store.get(1, 0) is None
    assert store.location(1, 0) is None


def test_location(store):
    store.put(1, 3, [], 10.0, "b")
    assert store.location(1, 3) == "b"
    assert store.contains(1, 3)


def test_node_bytes_accounting(store):
    store.put(1, 0, [], 100.0, "a")
    store.put(1, 1, [], 50.0, "a")
    store.put(2, 0, [], 25.0, "b")
    assert store.bytes_on_node("a") == 150.0
    assert store.bytes_on_node("b") == 25.0
    assert store.total_bytes() == 175.0


def test_overwrite_replaces_bytes(store):
    store.put(1, 0, [1], 100.0, "a")
    store.put(1, 0, [2], 60.0, "b")
    assert store.bytes_on_node("a") == 0.0
    assert store.bytes_on_node("b") == 60.0
    assert store.get(1, 0).records == [2]


def test_evict_rdd(store):
    store.put(1, 0, [], 10.0, "a")
    store.put(1, 1, [], 10.0, "a")
    store.put(2, 0, [], 10.0, "a")
    assert store.evict_rdd(1) == 2
    assert not store.contains(1, 0)
    assert store.contains(2, 0)
    assert store.total_bytes() == 10.0


def test_clear(store):
    store.put(1, 0, [], 10.0, "a")
    store.clear()
    assert store.total_bytes() == 0.0
    assert store.get(1, 0) is None


def test_total_bytes_exactly_zero_after_full_eviction(store):
    """No float drift residue once every block is gone (regression).

    Sizes chosen so naive subtraction leaves a tiny nonzero remainder.
    """
    sizes = [0.1, 0.2, 0.3, 1e9 + 0.7]
    for i, nbytes in enumerate(sizes):
        store.put(1, i, [], nbytes, "a")
    assert store.evict_rdd(1) == len(sizes)
    assert store.total_bytes() == 0.0
    assert store.bytes_on_node("a") == 0.0


def test_evict_node(store):
    store.put(1, 0, [], 10.0, "a")
    store.put(1, 1, [], 10.0, "a")
    store.put(2, 0, [], 10.0, "b")
    assert store.evict_node("a") == 2
    assert not store.contains(1, 0)
    assert not store.contains(1, 1)
    assert store.contains(2, 0)
    assert store.bytes_on_node("a") == 0.0
    assert store.total_bytes() == 10.0
    assert store.evict_node("a") == 0
    assert store.evict_node("never-existed") == 0


class TestLruEviction:
    def capacity_store(self, cap=100.0):
        return BlockStore(capacity_for=lambda node: cap)

    def test_evicts_lru_when_full(self):
        store = self.capacity_store(100.0)
        store.put(1, 0, ["a"], 60.0, "n")
        store.put(1, 1, ["b"], 60.0, "n")  # evicts (1, 0)
        assert not store.contains(1, 0)
        assert store.contains(1, 1)
        assert store.evictions == 1
        assert store.bytes_on_node("n") == 60.0

    def test_get_refreshes_recency(self):
        store = self.capacity_store(100.0)
        store.put(1, 0, ["a"], 40.0, "n")
        store.put(1, 1, ["b"], 40.0, "n")
        store.get(1, 0)  # touch: (1, 1) becomes LRU
        store.put(1, 2, ["c"], 40.0, "n")
        assert store.contains(1, 0)
        assert not store.contains(1, 1)

    def test_oversized_block_not_cached(self):
        store = self.capacity_store(100.0)
        assert store.put(1, 0, ["x"], 500.0, "n") is False
        assert not store.contains(1, 0)
        assert store.evictions == 0

    def test_oversized_replacement_keeps_existing_block(self):
        """Regression: the capacity check must run before dropping the
        old copy — a rejected oversized replacement must not take the
        previously cached version down with it."""
        store = self.capacity_store(100.0)
        assert store.put(1, 0, ["small"], 40.0, "n") is True
        assert store.put(1, 0, ["huge"], 500.0, "n") is False
        block = store.get(1, 0)
        assert block is not None
        assert block.records == ["small"]
        assert store.bytes_on_node("n") == 40.0
        assert store.evictions == 0

    def test_per_node_capacities_independent(self):
        store = self.capacity_store(100.0)
        store.put(1, 0, ["a"], 80.0, "a")
        store.put(1, 1, ["b"], 80.0, "b")
        assert store.contains(1, 0) and store.contains(1, 1)

    def test_unbounded_by_default(self):
        store = BlockStore()
        for i in range(10):
            store.put(1, i, [i], 1e12, "n")
        assert store.total_bytes() == 1e13

    def test_evicted_partition_recomputes(self, ctx):
        """End to end: a cache miss falls back to lineage recomputation."""
        from repro.cluster import uniform_cluster
        from repro.engine import AnalyticsContext, EngineConf
        from repro.common.units import GB

        tiny_cache = AnalyticsContext(
            uniform_cluster(n_workers=2, cores=2, memory=2 * GB,
                            executor_memory=1 * GB),
            EngineConf(default_parallelism=4, cache_memory_fraction=1e-7),
        )
        rdd = tiny_cache.parallelize(list(range(4000)), 4).cache()
        assert rdd.count() == 4000
        # Nothing fits in the ~100-byte cache, yet results stay correct.
        assert rdd.count() == 4000
        assert tiny_cache.block_store.total_bytes() == 0.0

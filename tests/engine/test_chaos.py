"""Node-loss chaos and lineage-based stage resubmission tests.

The core correctness property: a job that loses a node mid-shuffle must
(a) raise typed :class:`FetchFailure`s internally, (b) resubmit the
parent map stage for exactly the lost map partitions, and (c) still
produce results identical to a failure-free run.
"""

from __future__ import annotations

import collections

import pytest

from repro.cluster import uniform_cluster
from repro.common.errors import ConfigurationError, StageAbortedError
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.obs import Tracer

N_RECORDS = 8000
N_KEYS = 13


def quiet_cost() -> CostModelConfig:
    return CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0)


def make_ctx(**conf_kwargs) -> AnalyticsContext:
    conf_kwargs.setdefault("default_parallelism", 8)
    conf_kwargs.setdefault("cost", quiet_cost())
    return AnalyticsContext(
        uniform_cluster(n_workers=3, cores=2), EngineConf(**conf_kwargs)
    )


def shuffle_job(ctx):
    pairs = ctx.parallelize([(i % N_KEYS, 1) for i in range(N_RECORDS)], 8)
    return pairs.reduce_by_key(lambda a, b: a + b, 6).collect_as_map()


EXPECTED = {k: len(range(k, N_RECORDS, N_KEYS)) for k in range(N_KEYS)}


def reduce_window(ctx) -> tuple:
    """(start, first completion) of the reduce stage of a finished run."""
    reduce_stats = next(s for s in ctx.stage_stats if s.kind == "result")
    starts = [t.start for t in reduce_stats.tasks]
    ends = [t.end for t in reduce_stats.tasks]
    return min(starts), min(ends)


def mid_reduce_kill_time() -> float:
    """A kill time strictly inside the reduce stage of the baseline run."""
    baseline = make_ctx()
    assert shuffle_job(baseline) == EXPECTED
    start, first_end = reduce_window(baseline)
    assert first_end > start
    return (start + first_end) / 2.0


class TestConfigValidation:
    def test_unknown_worker_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown worker"):
            make_ctx(node_failure_times={"nope": 1.0})

    def test_negative_failure_time_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConf(node_failure_times={"w0": -1.0})

    def test_killing_every_worker_permanently_rejected(self):
        with pytest.raises(ConfigurationError, match="every worker"):
            make_ctx(node_failure_times={"w0": 1.0, "w1": 1.0, "w2": 1.0})

    def test_killing_every_worker_ok_with_recovery(self):
        ctx = make_ctx(
            node_failure_times={"w0": 1.0, "w1": 1.0, "w2": 1.0},
            node_recovery_delay=1.0,
        )
        assert set(ctx.task_scheduler._planned_failures) == {"w0", "w1", "w2"}

    def test_rate_plan_is_seeded_and_deterministic(self):
        plan_a = make_ctx(
            node_failure_rate=0.5, node_recovery_delay=1.0, seed=7
        ).task_scheduler._planned_failures
        plan_b = make_ctx(
            node_failure_rate=0.5, node_recovery_delay=1.0, seed=7
        ).task_scheduler._planned_failures
        assert plan_a == plan_b
        plan_all = make_ctx(
            node_failure_rate=1.0, node_failure_window=10.0,
            node_recovery_delay=1.0,
        ).task_scheduler._planned_failures
        assert set(plan_all) == {"w0", "w1", "w2"}
        assert all(0.0 <= t < 10.0 for t in plan_all.values())


class TestNodeLossRecovery:
    def run_chaos(self, kill_time, **conf_kwargs):
        ctx = make_ctx(
            node_failure_times={"w0": kill_time}, **conf_kwargs
        )
        tracer = Tracer()
        ctx.obs.set_tracer(tracer)
        out = shuffle_job(ctx)
        return ctx, tracer, out

    def test_results_identical_to_failure_free_run(self):
        ctx, _tracer, out = self.run_chaos(mid_reduce_kill_time())
        assert out == EXPECTED
        assert ctx.task_scheduler.nodes_lost == 1
        assert ctx.dag_scheduler.fetch_failures > 0
        assert ctx.dag_scheduler.stage_resubmissions >= 1

    def test_only_lost_map_partitions_resubmitted(self):
        ctx, _tracer, out = self.run_chaos(mid_reduce_kill_time())
        assert out == EXPECTED
        reruns = [s for s in ctx.stage_stats if s.attempt > 0]
        assert len(reruns) == 1
        rerun = reruns[0]
        assert rerun.kind == "shuffle_map"
        # The baseline map stage ran all 8 partitions; the recovery run
        # covers only what died with w0 — strictly fewer than all.
        full_map = next(
            s for s in ctx.stage_stats if s.kind == "shuffle_map" and s.attempt == 0
        )
        assert 0 < len(rerun.tasks) < len(full_map.tasks)
        # Every rerun task produced map output again, none on the dead node.
        assert all(t.node != "w0" for t in rerun.tasks)
        assert all(t.shuffle_write > 0 for t in rerun.tasks)

    def test_metrics_mirror_attributes(self):
        ctx, _tracer, _ = self.run_chaos(mid_reduce_kill_time())
        registry = ctx.obs.metrics
        assert registry.counter_value("scheduler.nodes_lost") == 1
        assert (
            registry.counter_value("scheduler.fetch_failures")
            == ctx.dag_scheduler.fetch_failures
        )
        assert (
            registry.counter_value("scheduler.stage_resubmissions")
            == ctx.dag_scheduler.stage_resubmissions
        )
        assert registry.counter_value("executor.fetch_failures") > 0

    def test_chaos_spans_emitted(self):
        _ctx, tracer, _ = self.run_chaos(mid_reduce_kill_time())
        by_name = collections.Counter(
            e.name for e in tracer.events if e.cat == "chaos"
        )
        assert by_name["node-lost"] == 1
        assert by_name["fetch-failure"] >= 1
        assert by_name["stage-resubmit"] >= 1
        resubmit = next(
            e for e in tracer.events if e.name == "stage-resubmit"
        )
        assert resubmit.args["attempt"] == 1
        assert resubmit.args["missing_maps"] > 0
        # Chaos spans are driver-side: they land on the driver's chaos lane.
        assert resubmit.node is None

    def test_dead_node_runs_no_further_tasks(self):
        kill_time = mid_reduce_kill_time()
        ctx, _tracer, out = self.run_chaos(kill_time)
        assert out == EXPECTED
        for stats in ctx.stage_stats:
            for task in stats.tasks:
                if task.node == "w0":
                    assert task.start < kill_time
        assert not ctx.task_scheduler.node_alive("w0")

    def test_stage_abort_when_attempts_exhausted(self):
        with pytest.raises(StageAbortedError, match="max_stage_attempts"):
            self.run_chaos(mid_reduce_kill_time(), max_stage_attempts=1)

    def test_partial_reruns_excluded_from_collector(self):
        from repro.chopper.stats import StatisticsCollector

        ctx = make_ctx(node_failure_times={"w0": mid_reduce_kill_time()})
        collector = StatisticsCollector("wordcount", 1.0).attach(ctx)
        assert shuffle_job(ctx) == EXPECTED
        collector.finish(ctx)
        assert any(s.attempt > 0 for s in ctx.stage_stats)
        # Clean observations only: one map + one result stage.
        kinds = [o.kind for o in collector.record.observations]
        assert sorted(kinds) == ["result", "shuffle_map"]


class TestNodeRecovery:
    def test_node_rejoins_after_recovery_delay(self):
        ctx = make_ctx(
            node_failure_times={"w0": 0.0}, node_recovery_delay=0.2
        )
        assert shuffle_job(ctx) == EXPECTED
        assert ctx.task_scheduler.nodes_lost == 1
        assert ctx.task_scheduler.node_alive("w0")
        assert ctx.obs.metrics.counter_value("scheduler.nodes_recovered") == 1

    def test_recovery_after_job_end_happens_at_next_job(self):
        # Recovery timed past the job's last event is deferred (never
        # drags the clock); the next job re-arms it and the node rejoins
        # once its deadline passes on that job's clock.
        ctx = make_ctx(
            node_failure_times={"w0": 0.0}, node_recovery_delay=1.5
        )
        assert shuffle_job(ctx) == EXPECTED
        assert ctx.now < 1.5  # the deadline lies beyond this job
        assert not ctx.task_scheduler.node_alive("w0")
        assert shuffle_job(ctx) == EXPECTED
        assert ctx.now > 1.5
        assert ctx.task_scheduler.node_alive("w0")

    def test_recovered_node_takes_new_work(self):
        ctx = make_ctx(
            node_failure_times={"w0": 0.0}, node_recovery_delay=0.5
        )
        assert shuffle_job(ctx) == EXPECTED
        # A second job on the same context schedules onto w0 again.
        out = ctx.parallelize(range(1000), 6).map(lambda x: x * 2).collect()
        assert sorted(out) == sorted(x * 2 for x in range(1000))
        nodes = {
            t.node for s in ctx.stage_stats[-1:] for t in s.tasks
        }
        assert "w0" in nodes

    def test_node_not_killed_twice(self):
        ctx = make_ctx(
            node_failure_times={"w0": 0.0}, node_recovery_delay=0.5
        )
        assert shuffle_job(ctx) == EXPECTED
        assert shuffle_job(ctx) == EXPECTED
        assert ctx.task_scheduler.nodes_lost == 1


class TestChaosIsDisarmedBetweenJobs:
    def test_late_failure_time_does_not_stretch_job(self):
        baseline = make_ctx()
        assert shuffle_job(baseline) == EXPECTED
        quiet_end = baseline.now
        # A kill scheduled long after the job's work must not drag the
        # clock out to the chaos schedule.
        chaotic = make_ctx(node_failure_times={"w0": quiet_end + 1000.0})
        assert shuffle_job(chaotic) == EXPECTED
        assert chaotic.now == pytest.approx(quiet_end)
        assert chaotic.task_scheduler.nodes_lost == 0

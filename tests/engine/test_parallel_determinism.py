"""Physical parallelism must be invisible in simulated results.

``EngineConf.physical_parallelism`` (threaded task bodies) and
``ChopperRunner.profile(jobs=...)`` (process-pooled sweep runs) are pure
wall-clock optimizations: every simulated observable — job results, the
simulated clock, metric snapshots (values *and* series creation order),
workload-DB contents, chosen configs, chaos recovery — must be
bit-identical to serial execution. These tests run the same workload at
parallelism 1 and N and compare everything.
"""

import json

import pytest

from repro.chopper import ChopperRunner
from repro.chopper.workload_db import WorkloadDB
from repro.cluster import paper_cluster
from repro.common.errors import ConfigurationError
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig
from repro.obs import MetricsRegistry
from repro.workloads import KMeansWorkload, WordCountWorkload


def fingerprint(par, workload_cls, scale=0.05, **conf_kwargs):
    """Everything observable from one run, as comparable values.

    The metrics snapshot is serialized *without* sorting so the
    comparison also pins series creation order (registries are
    insertion-ordered; a reordered parallel execution would show).
    """
    conf = EngineConf(
        physical_parallelism=par, default_parallelism=10, **conf_kwargs
    )
    registry = MetricsRegistry()
    ctx = AnalyticsContext(paper_cluster(), conf, metrics_registry=registry)
    result = workload_cls().run(ctx, scale=scale)
    return (
        ctx.now,
        repr(result.value),
        json.dumps(registry.snapshot(), default=str),
    )


class TestThreadedTaskParallelism:
    def test_wordcount_identical(self):
        assert fingerprint(1, WordCountWorkload) == fingerprint(3, WordCountWorkload)

    def test_kmeans_cached_iterative_identical(self):
        assert fingerprint(1, KMeansWorkload) == fingerprint(4, KMeansWorkload)

    def test_jitter_speculation_identical(self):
        kwargs = dict(speculation=True, cost=CostModelConfig(jitter_sigma=0.4))
        assert fingerprint(1, WordCountWorkload, **kwargs) == (
            fingerprint(4, WordCountWorkload, **kwargs)
        )

    def test_task_failures_identical(self):
        kwargs = dict(task_failure_rate=0.15)
        assert fingerprint(1, WordCountWorkload, **kwargs) == (
            fingerprint(4, WordCountWorkload, **kwargs)
        )

    def test_locality_wait_identical(self):
        kwargs = dict(locality_wait=0.5, cost=CostModelConfig(jitter_sigma=0.2))
        assert fingerprint(1, WordCountWorkload, **kwargs) == (
            fingerprint(4, WordCountWorkload, **kwargs)
        )

    def test_chaos_node_loss_recovery_identical(self):
        # Node loss + lineage recovery: parallel rounds touching a
        # degraded shuffle fall back to the inline serial path, so the
        # whole recovery trajectory must match serial exactly.
        kwargs = dict(node_failure_times={"B": 2.0}, node_recovery_delay=5.0)
        assert fingerprint(1, KMeansWorkload, **kwargs) == (
            fingerprint(4, KMeansWorkload, **kwargs)
        )

    def test_vectorized_kernels_identical_to_scalar(self):
        # Not a parallelism test, but the same contract: the vectorized
        # map-side bucketing/sizing kernels must be invisible in results.
        assert fingerprint(1, WordCountWorkload, vectorized_kernels=False) == (
            fingerprint(1, WordCountWorkload, vectorized_kernels=True)
        )
        assert fingerprint(1, KMeansWorkload, vectorized_kernels=False) == (
            fingerprint(1, KMeansWorkload, vectorized_kernels=True)
        )

    def test_chaos_permanent_loss_identical(self):
        kwargs = dict(node_failure_times={"C": 1.0})
        assert fingerprint(1, KMeansWorkload, **kwargs) == (
            fingerprint(4, KMeansWorkload, **kwargs)
        )


def sweep_db_json(par=1, jobs=1):
    runner = ChopperRunner(
        WordCountWorkload(),
        base_conf=EngineConf(physical_parallelism=par, default_parallelism=16),
        db=WorkloadDB(),
    )
    runner.profile(p_grid=[4, 8], kinds=["hash"], scales=[0.04, 0.08], jobs=jobs)
    return json.dumps(
        {
            "observations": {
                w: [vars(o) for o in runner.db.observations(w)]
                for w in [WordCountWorkload().name]
            }
        },
        default=str,
    ), runner


class TestSweepParallelism:
    def test_threaded_sweep_db_identical(self):
        serial, _ = sweep_db_json(par=1)
        threaded, _ = sweep_db_json(par=4)
        assert serial == threaded

    def test_process_pool_sweep_db_identical(self):
        serial, runner_s = sweep_db_json(jobs=1)
        pooled, runner_p = sweep_db_json(jobs=2)
        assert serial == pooled
        # The chosen configs downstream of the DB must agree too.
        runner_s.train()
        runner_p.train()
        conf_s = runner_s.optimize(scale=0.08)
        conf_p = runner_p.optimize(scale=0.08)
        assert conf_s.to_json() == conf_p.to_json()

    def test_traced_runner_falls_back_to_serial(self):
        from repro.obs import Tracer

        runner = ChopperRunner(
            WordCountWorkload(),
            base_conf=EngineConf(default_parallelism=16),
            db=WorkloadDB(),
        )
        runner.tracer = Tracer()
        n = runner.profile(p_grid=[4], kinds=["hash"], scales=[0.04], jobs=4)
        assert n == 2  # reference + one profile run, measured in-process

    def test_unpicklable_workload_falls_back(self):
        runner = ChopperRunner(
            WordCountWorkload(),
            cluster_factory=lambda: paper_cluster(),  # lambdas don't pickle
            base_conf=EngineConf(default_parallelism=16),
            db=WorkloadDB(),
        )
        n = runner.profile(p_grid=[4], kinds=["hash"], scales=[0.04], jobs=4)
        assert n == 2

    def test_bad_jobs_rejected(self):
        runner = ChopperRunner(WordCountWorkload(), db=WorkloadDB())
        with pytest.raises(ConfigurationError):
            runner.profile(p_grid=[4], kinds=["hash"], scales=[0.04], jobs=0)


class TestConfKnobs:
    def test_physical_parallelism_validated(self):
        with pytest.raises(ConfigurationError):
            EngineConf(physical_parallelism=0)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PHYSICAL_PARALLELISM", "3")
        assert EngineConf().physical_parallelism == 3
        monkeypatch.setenv("REPRO_PHYSICAL_PARALLELISM", "zebra")
        with pytest.raises(ConfigurationError):
            EngineConf()
        monkeypatch.delenv("REPRO_PHYSICAL_PARALLELISM")
        assert EngineConf().physical_parallelism == 1

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PHYSICAL_PARALLELISM", "5")
        assert EngineConf(physical_parallelism=2).physical_parallelism == 2

"""Memory-budgeted spill-to-disk: SpillManager, BlockStore, shuffle.

The invariant under test throughout: a memory budget changes where
payload bytes physically live, and **nothing else** — simulated clocks,
metrics, records, ledger bodies (minus the spill section) are
bit-identical with and without a budget, including under chaos node
loss.
"""

import os
import pickle

import pytest

from repro.common.errors import ConfigurationError
from repro.engine.context import AnalyticsContext, EngineConf
from repro.engine.shuffle import ShuffleManager
from repro.engine.storage import BlockStore, SpillManager

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture
def spill(tmp_path):
    manager = SpillManager(100.0, directory=str(tmp_path))
    yield manager
    manager.close()


class TestSpillManager:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SpillManager(0)
        with pytest.raises(ConfigurationError):
            SpillManager(-5.0)

    def test_within_budget_stays_resident(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, [1, 2, 3], 60.0, "a")
        assert spill.spill_events == 0
        assert not store.get(1, 0).is_spilled
        assert spill.resident_bytes == 60.0

    def test_lru_spills_past_budget(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, ["old"], 60.0, "a")
        store.put(1, 1, ["new"], 60.0, "a")
        # 120 > 100: the oldest block went to disk, the new one stayed.
        assert spill.spill_events == 1
        assert store.peek(1, 0).is_spilled
        assert not store.peek(1, 1).is_spilled
        assert spill.live_spilled_bytes == 60.0

    def test_spilled_records_read_back_identically(self, spill):
        store = BlockStore(spill=spill)
        payload = [("k", i) for i in range(50)]
        store.put(1, 0, list(payload), 80.0, "a")
        store.put(1, 1, [], 80.0, "a")  # pushes block 0 to disk
        block = store.peek(1, 0)
        assert block.is_spilled
        assert block.records == payload
        # Every read deserializes afresh; the virtual size is untouched.
        assert block.records is not block.records
        assert block.nbytes == 80.0
        assert spill.spill_reads >= 2

    def test_get_refreshes_spill_recency(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, ["a"], 40.0, "a")
        store.put(1, 1, ["b"], 40.0, "a")
        store.get(1, 0)  # 0 becomes most-recent
        store.put(1, 2, ["c"], 40.0, "a")  # 120 > 100: spills LRU = block 1
        assert store.peek(1, 1).is_spilled
        assert not store.peek(1, 0).is_spilled

    def test_forget_is_idempotent_and_never_negative(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, ["x"], 60.0, "a")
        block = store.peek(1, 0)
        spill.forget(block)
        spill.forget(block)  # double-forget must not go negative
        assert spill.resident_bytes == 0.0
        assert spill.live_spilled_bytes == 0.0

    def test_virtual_accounting_unchanged_by_spill(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, ["a"], 70.0, "a")
        store.put(1, 1, ["b"], 70.0, "b")
        assert spill.spill_events == 1
        # Virtual per-node totals are exactly what an unbudgeted store
        # would report: spilling is simulation-invisible.
        assert store.bytes_on_node("a") == 70.0
        assert store.bytes_on_node("b") == 70.0
        assert store.total_bytes() == 140.0

    def test_disk_bytes_accounted(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, list(range(100)), 80.0, "a")
        store.put(1, 1, [], 80.0, "a")
        assert spill.spilled_bytes == 80.0  # virtual
        assert spill.spilled_disk_bytes > 0  # physical (pickled size)
        blob = pickle.dumps(list(range(100)), protocol=5)
        assert spill.spilled_disk_bytes == len(blob)

    def test_close_removes_block_directory(self, tmp_path):
        manager = SpillManager(10.0, directory=str(tmp_path))
        store = BlockStore(spill=manager)
        store.put(1, 0, ["payload"], 50.0, "a")  # immediately over budget
        assert manager.spill_events == 1
        spill_dir = manager.directory
        assert os.path.isdir(spill_dir)
        manager.close()
        manager.close()  # idempotent
        assert not os.path.exists(spill_dir)
        # The caller-provided parent directory is left alone.
        assert os.path.isdir(str(tmp_path))


class TestRemoveAndEvictWithSpilledBlocks:
    """Satellite: _remove / evict_node with on-disk blocks (regression)."""

    def test_remove_spilled_block_releases_extent(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, ["cold"], 60.0, "a")
        store.put(1, 1, ["hot"], 60.0, "a")
        assert store.peek(1, 0).is_spilled
        assert store.evict_rdd(1) == 2
        assert spill.live_spilled_bytes == 0.0
        assert spill.resident_bytes == 0.0
        assert store.total_bytes() == 0.0

    def test_evict_node_holding_only_spilled_blocks(self, spill):
        """A node whose blocks all live on disk must clean up completely:
        no empty node dict, no stale/negative byte totals."""
        store = BlockStore(spill=spill)
        store.put(1, 0, ["a0"], 60.0, "a")
        store.put(1, 1, ["a1"], 50.0, "a")  # spills (1,0)
        store.put(2, 0, ["b0"], 60.0, "b")  # spills (1,1): node a all-disk
        assert store.peek(1, 0).is_spilled and store.peek(1, 1).is_spilled
        assert store.evict_node("a") == 2
        assert store.bytes_on_node("a") == 0.0
        assert "a" not in store._by_node
        assert "a" not in store._node_bytes
        assert spill.live_spilled_bytes == 0.0
        # Double eviction is a no-op, never negative.
        assert store.evict_node("a") == 0
        assert store.bytes_on_node("a") == 0.0

    def test_overwrite_of_spilled_block_does_not_double_count(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, ["v1"], 60.0, "a")
        store.put(1, 1, ["x"], 60.0, "a")  # spills (1,0)
        store.put(1, 0, ["v2"], 30.0, "b")  # replaces the spilled block
        assert store.get(1, 0).records == ["v2"]
        assert store.bytes_on_node("a") == 60.0
        assert store.bytes_on_node("b") == 30.0
        assert spill.live_spilled_bytes == 0.0

    def test_clear_forgets_spilled_blocks(self, spill):
        store = BlockStore(spill=spill)
        store.put(1, 0, ["a"], 60.0, "a")
        store.put(1, 1, ["b"], 60.0, "a")
        store.clear()
        assert spill.resident_bytes == 0.0
        assert spill.live_spilled_bytes == 0.0


class TestShuffleSpill:
    def test_shuffle_blocks_spill_and_fetch_transparently(self, spill):
        mgr = ShuffleManager(block_header=0.0, spill=spill)
        mgr.register(0, num_maps=2, num_reduces=1)
        mgr.put_map_output(0, 0, "a", {0: ([("k", 1)], 80.0)})
        mgr.put_map_output(0, 1, "b", {0: ([("k", 2)], 80.0)})
        assert spill.spill_events >= 1
        assert mgr.spilled_blocks() >= 1
        records, stats = mgr.fetch(0, 0, "a")
        assert records == [("k", 1), ("k", 2)]
        assert stats.total_bytes == 160.0  # virtual accounting unchanged

    def test_invalidate_node_releases_spilled_extents(self, spill):
        mgr = ShuffleManager(block_header=0.0, spill=spill)
        mgr.register(0, num_maps=2, num_reduces=1)
        mgr.put_map_output(0, 0, "a", {0: ([("k", 1)], 80.0)})
        mgr.put_map_output(0, 1, "b", {0: ([("k", 2)], 80.0)})
        lost = mgr.invalidate_node("a")
        assert lost == {0: [0]}
        # The dead node's blocks (spilled or not) left the spill budget.
        total = spill.resident_bytes + spill.live_spilled_bytes
        assert total == 80.0

    def test_replaced_map_output_forgets_old_blocks(self, spill):
        mgr = ShuffleManager(block_header=0.0, spill=spill)
        mgr.register(0, num_maps=1, num_reduces=1)
        mgr.put_map_output(0, 0, "a", {0: ([("k", 1)], 80.0)})
        mgr.put_map_output(0, 0, "a", {0: ([("k", 9)], 80.0)})  # re-execution
        total = spill.resident_bytes + spill.live_spilled_bytes
        assert total == 80.0
        records, _ = mgr.fetch(0, 0, "a")
        assert records == [("k", 9)]


def _run_workload(conf: EngineConf):
    """A cached + shuffled pipeline; returns (results, sim time, metrics)."""
    ctx = AnalyticsContext(conf=conf)
    data = ctx.parallelize(range(2000), num_partitions=8)
    cached = data.map(lambda x: (x % 40, x)).cache()
    counts = cached.reduce_by_key(lambda a, b: a + b).collect()
    # Second job re-reads the cached RDD (hits, possibly from disk).
    evens = cached.filter(lambda kv: kv[0] % 2 == 0).count()
    snapshot = ctx.obs.metrics.snapshot()
    # Spill counters are expected to differ; everything else must not.
    metrics = {
        section: (
            {
                k: v for k, v in series.items()
                if not k.startswith(("spill.", "shuffle.spilled"))
            }
            if isinstance(series, dict) else series
        )
        for section, series in snapshot.items()
    }
    out = (sorted(counts), evens, ctx.now, metrics)
    ctx.close()
    return out


class TestBitIdentityUnderBudget:
    def test_budgeted_run_identical_to_unbudgeted(self, tmp_path):
        base = _run_workload(EngineConf(default_parallelism=8))
        tight = _run_workload(
            EngineConf(
                default_parallelism=8,
                memory_budget=2048.0,
                spill_dir=str(tmp_path),
            )
        )
        assert pickle.dumps(base) == pickle.dumps(tight)

    def test_spill_actually_happened(self, tmp_path):
        conf = EngineConf(
            default_parallelism=8, memory_budget=2048.0,
            spill_dir=str(tmp_path),
        )
        ctx = AnalyticsContext(conf=conf)
        data = ctx.parallelize(range(2000), num_partitions=8)
        data.map(lambda x: (x % 40, x)).reduce_by_key(lambda a, b: a + b).collect()
        assert ctx.spill.spill_events > 0
        assert ctx.spill.spilled_bytes > 0
        ctx.close()

    def test_chaos_node_loss_identical_under_budget(self, tmp_path):
        def run(budget):
            conf = EngineConf(
                default_parallelism=8,
                node_failure_times={"B": 5.0},
                node_recovery_delay=0.0,
                memory_budget=budget,
                spill_dir=str(tmp_path) if budget else None,
            )
            ctx = AnalyticsContext(conf=conf)
            data = ctx.parallelize(range(3000), num_partitions=12)
            out = (
                data.map(lambda x: (x % 50, 1))
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            result = (sorted(out), ctx.now)
            spilled = ctx.spill.spilled_bytes if ctx.spill else 0.0
            ctx.close()
            return result, spilled

        base, _ = run(None)
        lossy, spilled = run(1024.0)
        assert spilled > 0, "budget was not tight enough to exercise spill"
        assert pickle.dumps(base) == pickle.dumps(lossy)

    def test_threads_and_budget_identical(self, tmp_path):
        base = _run_workload(EngineConf(default_parallelism=8))
        threaded = _run_workload(
            EngineConf(
                default_parallelism=8,
                physical_parallelism=4,
                memory_budget=2048.0,
                spill_dir=str(tmp_path),
            )
        )
        assert pickle.dumps(base) == pickle.dumps(threaded)


class TestConfValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EngineConf(memory_budget=0.0)
        with pytest.raises(ConfigurationError):
            EngineConf(memory_budget=-1.0)

    def test_spill_dir_requires_budget(self):
        with pytest.raises(ConfigurationError):
            EngineConf(spill_dir="/tmp/somewhere")

    def test_context_close_idempotent(self, tmp_path):
        ctx = AnalyticsContext(
            conf=EngineConf(memory_budget=1024.0, spill_dir=str(tmp_path))
        )
        spill_dir = ctx.spill.directory
        ctx.close()
        ctx.close()
        assert not os.path.exists(spill_dir)

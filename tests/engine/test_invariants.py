"""Cross-cutting engine invariants, property-based where possible."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf


def fresh_ctx(parallelism=8):
    return AnalyticsContext(
        uniform_cluster(n_workers=3, cores=4),
        EngineConf(default_parallelism=parallelism),
    )


class TestTimeInvariants:
    def test_clock_monotone_across_jobs(self):
        ctx = fresh_ctx()
        stamps = []
        for _ in range(3):
            ctx.parallelize(range(100), 4).count()
            stamps.append(ctx.now)
        assert stamps == sorted(stamps)
        assert stamps[0] > 0

    def test_task_intervals_within_stage_window(self):
        ctx = fresh_ctx()
        pairs = ctx.parallelize([(i % 5, i) for i in range(200)], 6)
        pairs.reduce_by_key(lambda a, b: a + b, 4).collect()
        for stage in ctx.stage_stats:
            for t in stage.tasks:
                assert t.start >= stage.submitted_at - 1e-9
                assert t.end <= stage.completed_at + 1e-9
                assert t.duration > 0

    def test_stage_windows_nested_in_job(self):
        ctx = fresh_ctx()
        ctx.parallelize([(1, 1)], 2).group_by_key(2).collect()
        job = ctx.job_stats[-1]
        for stage in job.stages:
            assert stage.submitted_at >= job.submitted_at - 1e-9
            assert stage.completed_at <= job.completed_at + 1e-9

    def test_parent_stage_completes_before_child_starts(self):
        ctx = fresh_ctx()
        pairs = ctx.parallelize([(i % 3, i) for i in range(100)], 4)
        pairs.reduce_by_key(lambda a, b: a + b, 3).collect()
        map_stage, result_stage = ctx.job_stats[-1].stages
        assert map_stage.completed_at <= result_stage.submitted_at + 1e-9


class TestShuffleConservation:
    def test_read_equals_write_per_shuffle(self):
        """Every byte written to a shuffle is read exactly once."""
        ctx = fresh_ctx()
        pairs = ctx.parallelize([(i % 7, i) for i in range(300)], 5)
        pairs.group_by_key(4).count()
        map_stage, result_stage = ctx.job_stats[-1].stages
        assert result_stage.shuffle_read_bytes == pytest.approx(
            map_stage.shuffle_write_bytes
        )

    def test_local_plus_remote_equals_total(self):
        ctx = fresh_ctx()
        pairs = ctx.parallelize([(i, i) for i in range(300)], 5)
        pairs.group_by_key(4).count()
        result_stage = ctx.job_stats[-1].stages[-1]
        total = sum(t.shuffle_read for t in result_stage.tasks)
        split = sum(
            t.shuffle_read_local + t.shuffle_read_remote
            for t in result_stage.tasks
        )
        assert total == pytest.approx(split)


class TestMetricsConsistency:
    def test_cpu_busy_time_matches_task_durations(self):
        ctx = fresh_ctx()
        ctx.parallelize(list(range(2000)), 8).collect()
        stage = ctx.job_stats[-1].stages[0]
        busy = sum(t.duration for t in stage.tasks)
        bucket = max(ctx.now / 20, 0.01)
        series = ctx.metrics.bucketize("cpu", bucket)
        # Node-averaged utilization integrated over time x node count
        # equals total busy core-seconds.
        integral = series.values.sum() * bucket * len(ctx.cluster.workers)
        assert integral == pytest.approx(busy, rel=0.05)

    def test_network_events_match_remote_reads(self):
        ctx = fresh_ctx()
        pairs = ctx.parallelize([(i, i) for i in range(500)], 6)
        pairs.group_by_key(6).count()
        remote = sum(
            t.shuffle_read_remote
            for s in ctx.stage_stats
            for t in s.tasks
        )
        bucket = max(ctx.now, 0.01)
        series = ctx.metrics.bucketize("net_bytes", bucket)
        # Both send and receive sides are recorded: 2x the remote bytes,
        # averaged over nodes.
        total_recorded = series.values.sum() * bucket * len(ctx.cluster.workers)
        assert total_recorded == pytest.approx(2 * remote, rel=0.01)


class TestDeterminismProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(2, 30), st.integers(1, 8))
    def test_identical_runs_identical_timings(self, n_keys, parts):
        def run():
            ctx = fresh_ctx()
            pairs = ctx.parallelize(
                [(i % n_keys, i) for i in range(200)], parts
            )
            pairs.reduce_by_key(lambda a, b: a + b, parts).collect()
            return ctx.now, [s.duration for s in ctx.stage_stats]

        assert run() == run()

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(1, 200))
    def test_seed_changes_jitter_not_results(self, seed):
        def run(s):
            ctx = AnalyticsContext(
                uniform_cluster(n_workers=2, cores=2),
                EngineConf(default_parallelism=4, seed=s),
            )
            out = ctx.parallelize([(i % 3, 1) for i in range(60)], 3)
            return out.reduce_by_key(lambda a, b: a + b, 2).collect_as_map()

        assert run(seed) == run(seed + 1) == {0: 20, 1: 20, 2: 20}


class TestVirtualSizeScaling:
    def test_double_virtual_size_roughly_doubles_compute_time(self):
        from repro.workloads.datagen import KMeansDataGen

        def load_time(gb):
            # Enough partitions that both sizes stay under the oversize
            # knee — we are testing linear compute scaling, not the
            # big-partition penalty.
            ctx = fresh_ctx(parallelism=64)
            gen = KMeansDataGen(virtual_bytes=gb * 2**30, physical_records=640)
            gen.rdd(ctx, 64).count()
            return ctx.now

        t1, t2 = load_time(2.0), load_time(4.0)
        assert 1.6 < t2 / t1 < 2.4

    def test_physical_sample_size_does_not_change_virtual_bytes(self):
        from repro.workloads.datagen import KMeansDataGen

        def input_bytes(records):
            ctx = fresh_ctx(parallelism=8)
            gen = KMeansDataGen(virtual_bytes=1e9, physical_records=records)
            gen.rdd(ctx, 8).count()
            return ctx.job_stats[-1].stages[0].input_bytes

        a, b = input_bytes(500), input_bytes(2000)
        assert a == pytest.approx(b, rel=0.1)

"""Columnar shuffle blocks must be invisible in simulated results.

``record_format="columnar"`` (with or without fusion and vectorized
kernels) is a wall-clock optimization of the *real* computation; every
simulated observable — results, the clock, metric snapshots including
series creation order, workload DBs, chosen CHOPPER configs, chaos
recovery trajectories — must be byte-identical to the seed list path.
"""

import json

from repro.chopper import ChopperRunner
from repro.chopper.workload_db import WorkloadDB
from repro.cluster import paper_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.obs import MetricsRegistry
from repro.workloads import (
    KMeansWorkload,
    ShuffleWordCountWorkload,
    SQLWorkload,
    WordCountWorkload,
)

COLUMNAR = dict(
    record_format="columnar", operator_fusion=True, vectorized_kernels=True
)


def fingerprint(workload_cls, scale=0.05, **conf_kwargs):
    conf = EngineConf(default_parallelism=10, **conf_kwargs)
    registry = MetricsRegistry()
    ctx = AnalyticsContext(paper_cluster(), conf, metrics_registry=registry)
    result = workload_cls().run(ctx, scale=scale)
    return (
        ctx.now,
        repr(result.value),
        repr(sorted(result.details.items())),
        json.dumps(registry.snapshot(), default=str),
    )


class TestColumnarRuns:
    def test_wordcount_identical(self):
        assert fingerprint(WordCountWorkload) == fingerprint(
            WordCountWorkload, **COLUMNAR
        )

    def test_shuffle_wordcount_identical(self):
        assert fingerprint(ShuffleWordCountWorkload) == fingerprint(
            ShuffleWordCountWorkload, **COLUMNAR
        )

    def test_sql_identical(self):
        # Joins/cogroups: tuple values and string regions cross the wire.
        assert fingerprint(SQLWorkload) == fingerprint(SQLWorkload, **COLUMNAR)

    def test_kmeans_identical(self):
        # ndarray values stay list columns; the format must pass through.
        assert fingerprint(KMeansWorkload) == fingerprint(
            KMeansWorkload, **COLUMNAR
        )

    def test_columnar_without_vectorized_identical(self):
        assert fingerprint(WordCountWorkload) == fingerprint(
            WordCountWorkload, record_format="columnar"
        )

    def test_chaos_node_loss_identical(self):
        # Node loss + lineage-based stage resubmission: shuffle blocks
        # are dropped and rebuilt mid-run; the columnar rebuild must
        # retrace the list path's recovery exactly.
        chaos = dict(node_failure_times={"B": 2.0}, node_recovery_delay=5.0)
        assert fingerprint(KMeansWorkload, **chaos) == fingerprint(
            KMeansWorkload, **chaos, **COLUMNAR
        )
        assert fingerprint(ShuffleWordCountWorkload, **chaos) == fingerprint(
            ShuffleWordCountWorkload, **chaos, **COLUMNAR
        )

    def test_columnar_under_physical_parallelism(self):
        # Deferred task effects carry batches opaquely; threaded replay
        # must still be bit-identical.
        serial = fingerprint(ShuffleWordCountWorkload, **COLUMNAR)
        threaded = fingerprint(
            ShuffleWordCountWorkload, physical_parallelism=4, **COLUMNAR
        )
        assert serial == threaded


def sweep_db_and_config(**conf_kwargs):
    runner = ChopperRunner(
        WordCountWorkload(),
        base_conf=EngineConf(default_parallelism=16, **conf_kwargs),
        db=WorkloadDB(),
    )
    runner.profile(p_grid=[4, 8], kinds=["hash"], scales=[0.04, 0.08], jobs=1)
    runner.train()
    config = runner.optimize(scale=0.08)
    db_json = json.dumps(
        {
            "observations": [
                vars(o) for o in runner.db.observations(WordCountWorkload().name)
            ]
        },
        default=str,
    )
    return db_json, config.to_json()


class TestColumnarChopperPipeline:
    def test_workload_db_and_config_identical(self):
        assert sweep_db_and_config() == sweep_db_and_config(**COLUMNAR)

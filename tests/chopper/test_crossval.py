"""Tests for model cross-validation."""

import pytest

from repro.chopper.crossval import cross_validate, cross_validate_stage
from repro.chopper.stats import StageObservation
from repro.common.errors import ModelError
from tests.chopper.test_model import synth_obs


class TestCrossValidateStage:
    def test_smooth_landscape_validates_well(self):
        rows = synth_obs(
            [1e9, 2e9, 4e9], [100, 200, 300, 500, 800],
            time_fn=lambda d, p: d * 1e-9 * (300.0 / p) ** 0.5 + 0.01 * p,
            shuffle_fn=lambda d, p: 0.0,
        )
        mape, folds = cross_validate_stage(rows, k=4)
        assert folds == 4
        assert mape < 0.25

    def test_pure_noise_validates_poorly(self):
        import numpy as np

        rng = np.random.default_rng(0)
        rows = [
            StageObservation(
                signature="s", kind="result", partitioner_kind="hash",
                input_bytes=d, num_partitions=p,
                duration=float(rng.uniform(1, 1000)), shuffle_bytes=0.0, order=0,
            )
            for d in (1e9, 2e9, 4e9) for p in (100, 300, 800)
        ]
        noisy_mape, _ = cross_validate_stage(rows, k=3)
        assert noisy_mape > 0.35

    def test_needs_enough_cells(self):
        rows = synth_obs([1e9], [100, 200], lambda d, p: 1.0, lambda d, p: 0.0)
        with pytest.raises(ModelError):
            cross_validate_stage(rows)

    def test_repeated_measurements_stay_in_one_fold(self):
        """Duplicated (D, P) rows must not leak into the training set."""
        base = synth_obs(
            [1e9, 2e9], [100, 300, 800],
            time_fn=lambda d, p: d * 1e-9 + 0.1 * p,
            shuffle_fn=lambda d, p: 0.0,
        )
        duplicated = base * 3
        mape_dup, _ = cross_validate_stage(duplicated, k=3)
        mape_base, _ = cross_validate_stage(base, k=3)
        # With cell grouping, duplication cannot fake a better score.
        assert mape_dup == pytest.approx(mape_base, rel=0.2)


class TestCrossValidateWorkload:
    def test_end_to_end_on_runner_db(self):
        from repro.chopper import ChopperRunner
        from repro.cluster import uniform_cluster
        from repro.engine import EngineConf
        from repro.workloads import WordCountWorkload

        runner = ChopperRunner(
            WordCountWorkload(virtual_gb=2.0, physical_records=600),
            cluster_factory=lambda: uniform_cluster(n_workers=3, cores=8),
            base_conf=EngineConf(default_parallelism=48),
        )
        runner.profile(p_grid=(16, 32, 64, 128), scales=(0.5, 1.0))
        report = cross_validate(runner.db, "wordcount")
        assert report.results
        assert 0.0 <= report.median_mape < 1.0
        text = report.summary()
        assert "median held-out error" in text
        # The smooth simulated landscape should validate decently.
        assert report.median_mape < 0.35

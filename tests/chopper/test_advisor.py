"""Tests for the CHOPPER advisor: config application, alignment, splicing."""

from repro.chopper.advisor import ChopperAdvisor, FixedSchemeAdvisor, ProfilingAdvisor
from repro.chopper.config_gen import ConfigEntry, WorkloadConfig
from repro.chopper.schemes import PartitionScheme


def stage_sig_of(ctx, rdd, base_index=-1):
    """Signature of the final stage of the would-be job for rdd."""
    stages = ctx.dag_scheduler.provisional_stages(rdd)
    return stages[base_index].signature


class TestProfilingAdvisor:
    def test_forces_uniform_parallelism(self, ctx):
        ctx.set_advisor(ProfilingAdvisor("hash", 5))
        pairs = ctx.parallelize([(i % 7, 1) for i in range(100)], 3)
        pairs.reduce_by_key(lambda a, b: a + b).collect()
        stages = ctx.job_stats[-1].stages
        assert all(s.num_partitions == 5 for s in stages)

    def test_range_mode_resolves_with_real_keys(self, ctx):
        ctx.set_advisor(ProfilingAdvisor("range", 4))
        pairs = ctx.parallelize([(i, 1) for i in range(200)], 3)
        out = pairs.reduce_by_key(lambda a, b: a + b).collect_as_map()
        assert len(out) == 200
        result = ctx.job_stats[-1].stages[-1]
        assert result.partitioner_kind == "range"
        assert result.num_partitions == 4

    def test_user_fixed_left_alone(self, ctx):
        ctx.set_advisor(ProfilingAdvisor("hash", 5))
        pairs = ctx.parallelize([(1, 1)], 2)
        pairs.reduce_by_key(lambda a, b: a + b, num_partitions=7).collect()
        result = ctx.job_stats[-1].stages[-1]
        assert result.num_partitions == 7

    def test_source_resplit_only_once(self, ctx):
        ctx.set_advisor(ProfilingAdvisor("hash", 5))
        src = ctx.parallelize(range(100), 3).cache()
        src.count()
        assert src.num_partitions == 5
        src.set_num_partitions(9)  # simulate later drift
        src.count()
        assert src.num_partitions == 9  # advisor did not re-split


class TestChopperAdvisor:
    def test_applies_scheme_to_reduce_stage(self, ctx):
        pairs = ctx.parallelize([(i % 5, 1) for i in range(100)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        sig = stage_sig_of(ctx, reduced)
        config = WorkloadConfig(workload="t")
        config.add(ConfigEntry(signature=sig, scheme=PartitionScheme("hash", 11)))
        ctx.set_advisor(ChopperAdvisor(config))
        assert reduced.collect_as_map() == {i: 20 for i in range(5)}
        result = ctx.job_stats[-1].stages[-1]
        assert result.num_partitions == 11

    def test_applies_range_scheme_lazily(self, ctx):
        pairs = ctx.parallelize([(i, 1) for i in range(100)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        sig = stage_sig_of(ctx, reduced)
        config = WorkloadConfig(workload="t")
        config.add(ConfigEntry(signature=sig, scheme=PartitionScheme("range", 6)))
        ctx.set_advisor(ChopperAdvisor(config))
        assert len(reduced.collect()) == 100
        result = ctx.job_stats[-1].stages[-1]
        assert result.partitioner_kind == "range"
        assert result.num_partitions == 6

    def test_resplits_source_stage(self, ctx):
        src = ctx.parallelize(range(100), 4)
        sig = stage_sig_of(ctx, src)
        config = WorkloadConfig(workload="t")
        config.add(ConfigEntry(signature=sig, scheme=PartitionScheme("hash", 9)))
        ctx.set_advisor(ChopperAdvisor(config))
        assert src.count() == 100
        assert ctx.job_stats[-1].stages[0].num_partitions == 9

    def test_group_members_share_partitioner_and_align_join(self, ctx):
        """A shared group ref makes the cogroup's parents co-partitioned,
        converting the join-side shuffles to narrow deps."""
        left = ctx.parallelize([(i % 10, i) for i in range(100)], 4).reduce_by_key(
            lambda a, b: a + b
        )
        right = ctx.parallelize([(i % 10, -i) for i in range(80)], 4).reduce_by_key(
            lambda a, b: a + b
        )
        joined = left.join(right)
        stages = ctx.dag_scheduler.provisional_stages(joined)
        # Identify stage signatures: the two agg-feeding stages and the join.
        config = WorkloadConfig(workload="t")
        for stage in stages:
            config.add(
                ConfigEntry(
                    signature=stage.signature,
                    scheme=PartitionScheme("hash", 6),
                    group="g0",
                )
            )
        advisor = ChopperAdvisor(config)
        ctx.set_advisor(advisor)
        out = joined.collect_as_map()
        assert len(out) == 10
        assert advisor.aligned_shuffles >= 1
        # The fused job runs fewer shuffle-map stages than the un-aligned
        # version would (2 scans instead of 2 scans + 2 agg outputs).
        kinds = [s.kind for s in ctx.job_stats[-1].stages]
        assert kinds.count("shuffle_map") == 2

    def test_user_fixed_without_flag_untouched(self, ctx):
        pairs = ctx.parallelize([(1, 1)], 2)
        fixed = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=7)
        sig = stage_sig_of(ctx, fixed)
        config = WorkloadConfig(workload="t")
        config.add(ConfigEntry(signature=sig, scheme=PartitionScheme("hash", 3)))
        ctx.set_advisor(ChopperAdvisor(config))
        fixed.collect()
        assert ctx.job_stats[-1].stages[-1].num_partitions == 7

    def test_insert_repartition_for_fixed_dep(self, ctx):
        pairs = ctx.parallelize([(i % 5, 1) for i in range(100)], 4)
        fixed = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=7)
        sig = stage_sig_of(ctx, fixed)
        config = WorkloadConfig(workload="t")
        config.add(
            ConfigEntry(
                signature=sig,
                scheme=PartitionScheme("hash", 3),
                insert_repartition=True,
            )
        )
        advisor = ChopperAdvisor(config)
        ctx.set_advisor(advisor)
        out = fixed.collect_as_map()
        assert out == {i: 20 for i in range(5)}
        assert advisor.inserted_repartitions == 1
        # The user's parallelism is preserved on the fixed stage itself...
        assert ctx.job_stats[-1].stages[-1].num_partitions == 7
        # ...but an extra shuffle-map stage (the repartition) ran.
        kinds = [s.kind for s in ctx.job_stats[-1].stages]
        assert kinds.count("shuffle_map") == 2

    def test_iterations_reuse_resolved_ref(self, ctx):
        """Repeated same-signature jobs share one resolved partitioner."""
        base = ctx.parallelize([(i % 4, 1) for i in range(80)], 4).cache()
        reduced0 = base.reduce_by_key(lambda a, b: a + b)
        sig = stage_sig_of(ctx, reduced0)
        config = WorkloadConfig(workload="t")
        config.add(ConfigEntry(signature=sig, scheme=PartitionScheme("range", 3)))
        advisor = ChopperAdvisor(config)
        ctx.set_advisor(advisor)
        first = base.reduce_by_key(lambda a, b: a + b).collect_as_map()
        second = base.reduce_by_key(lambda a, b: a + b).collect_as_map()
        assert first == second
        refs = list(advisor._entry_refs.values())
        assert len(refs) == 1 and refs[0].resolved


class TestFixedSchemeAdvisor:
    def test_pins_scheme(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(30)], 3)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        sig = stage_sig_of(ctx, reduced)
        ctx.set_advisor(FixedSchemeAdvisor({sig: PartitionScheme("hash", 4)}))
        reduced.collect()
        assert ctx.job_stats[-1].stages[-1].num_partitions == 4


class TestOrderedShuffles:
    def test_sort_keeps_range_partitioner_under_hash_config(self, ctx):
        """A config that says hash for a sort stage gets range instead —
        global order is a correctness property."""
        pairs = ctx.parallelize([(i % 17, i) for i in range(150)], 4)
        sorted_rdd = pairs.sort_by_key(num_partitions=None)
        sig = stage_sig_of(ctx, sorted_rdd)
        config = WorkloadConfig(workload="t")
        config.add(ConfigEntry(signature=sig, scheme=PartitionScheme("hash", 5)))
        ctx.set_advisor(ChopperAdvisor(config))
        out = sorted_rdd.collect()
        assert [k for k, _v in out] == sorted(k for k, _v in out)
        result = ctx.job_stats[-1].stages[-1]
        assert result.partitioner_kind == "range"
        assert result.num_partitions == 5

    def test_profiling_advisor_preserves_sort_order(self, ctx):
        from repro.chopper.advisor import ProfilingAdvisor

        ctx.set_advisor(ProfilingAdvisor("hash", 6))
        pairs = ctx.parallelize([(i % 23, i) for i in range(200)], 4)
        out = pairs.sort_by_key().collect()
        assert [k for k, _v in out] == sorted(k for k, _v in out)


class TestFixedParentPinning:
    def _fixed_join(self, ctx):
        a = ctx.parallelize([(i % 6, i) for i in range(120)], 4).reduce_by_key(
            lambda x, y: x + y, num_partitions=6  # user-fixed
        )
        b = ctx.parallelize([(i % 6, -i) for i in range(60)], 4)
        return a.join(b)

    def test_without_insert_flag_join_follows_fixed_scheme(self, ctx):
        joined = self._fixed_join(ctx)
        stages = ctx.dag_scheduler.provisional_stages(joined)
        config = WorkloadConfig(workload="t")
        for stage in stages:
            config.add(
                ConfigEntry(
                    signature=stage.signature,
                    scheme=PartitionScheme("hash", 3),
                )
            )
        advisor = ChopperAdvisor(config)
        ctx.set_advisor(advisor)
        out = joined.collect_as_map()
        assert len(out) == 6
        # The fused join stage keeps the user's 6 partitions: the advisor
        # pinned the cogroup dep to the fixed parent's partitioner.
        assert ctx.job_stats[-1].stages[-1].num_partitions == 6
        assert advisor.inserted_repartitions == 0

    def test_with_insert_flag_join_is_repartitioned(self, ctx):
        joined = self._fixed_join(ctx)
        stages = ctx.dag_scheduler.provisional_stages(joined)
        config = WorkloadConfig(workload="t")
        for stage in stages:
            config.add(
                ConfigEntry(
                    signature=stage.signature,
                    scheme=PartitionScheme("hash", 3),
                    insert_repartition=True,
                )
            )
        advisor = ChopperAdvisor(config)
        ctx.set_advisor(advisor)
        out = joined.collect_as_map()
        assert len(out) == 6
        # The consumer-side retune becomes the inserted repartition phase:
        # the join now runs at the optimized width.
        assert advisor.inserted_repartitions >= 1
        assert ctx.job_stats[-1].stages[-1].num_partitions == 3

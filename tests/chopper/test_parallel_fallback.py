"""Pool-dispatch fallbacks: small sweeps, single cores, broken pools.

The procs4 regression fix: ``run_specs`` must refuse to pay fork +
segment overhead when the pool cannot win, and every fallback path must
produce a workload DB byte-identical to the serial loop (it *is* the
serial loop).
"""

import filecmp
import os

import pytest

from repro.chopper import ChopperRunner
from repro.chopper import parallel as par
from repro.chopper.workload_db import WorkloadDB
from repro.engine import EngineConf, shm
from repro.workloads import KMeansWorkload
from repro.workloads.datagen import clear_block_cache

SMALL_RECORDS = 2_000  # well below SMALL_RUN_RECORDS = 25_000


class CrashyKMeans(KMeansWorkload):
    """Dies instantly in any process except the one named by env var.

    Module-level so it pickles by reference into forked pool workers;
    the driver re-running the spec inline after the pool breaks is the
    surviving path and must still produce the real answer.
    """

    def run(self, ctx, scale=1.0):
        if os.getpid() != int(os.environ.get("REPRO_TEST_DRIVER_PID", "0")):
            os._exit(1)
        return super().run(ctx, scale=scale)


def _sweep(workload, jobs):
    """One tiny profiling sweep; returns the saved DB path's bytes."""
    conf = EngineConf(
        default_parallelism=16, vectorized_kernels=False,
        physical_parallelism=1,
    )
    runner = ChopperRunner(workload, base_conf=conf, db=WorkloadDB())
    clear_block_cache()
    runner.profile(p_grid=[8, 16], kinds=["hash"], scales=[0.05], jobs=jobs)
    return runner


def _db_files_match(tmp_path, runner_a, runner_b):
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    runner_a.db.save(str(path_a))
    runner_b.db.save(str(path_b))
    return filecmp.cmp(str(path_a), str(path_b), shallow=False)


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    monkeypatch.delenv("REPRO_POOL_FORCE", raising=False)
    monkeypatch.delenv("REPRO_POOL_MIN_RECORDS", raising=False)
    par.last_dispatch = ""
    yield


class TestInlineFallback:
    def test_small_sweep_runs_inline(self, tmp_path, monkeypatch):
        # Pretend we have cores so only the size guard can trigger.
        monkeypatch.setattr(par, "_usable_cores", lambda: 4)
        serial = _sweep(KMeansWorkload(physical_records=SMALL_RECORDS), jobs=1)
        assert par.last_dispatch == ""  # jobs=1 never reaches run_specs
        pooled = _sweep(KMeansWorkload(physical_records=SMALL_RECORDS), jobs=2)
        assert par.last_dispatch == "inline-small"
        assert _db_files_match(tmp_path, serial, pooled)

    def test_single_core_runs_inline(self, monkeypatch, tmp_path):
        monkeypatch.setattr(par, "_usable_cores", lambda: 1)
        # Size guard off: the core count alone must force the fallback.
        monkeypatch.setenv("REPRO_POOL_MIN_RECORDS", "0")
        serial = _sweep(KMeansWorkload(physical_records=SMALL_RECORDS), jobs=1)
        pooled = _sweep(KMeansWorkload(physical_records=SMALL_RECORDS), jobs=2)
        assert par.last_dispatch == "inline-cores"
        assert _db_files_match(tmp_path, serial, pooled)

    def test_min_records_env_override(self, monkeypatch):
        monkeypatch.setattr(par, "_usable_cores", lambda: 4)
        monkeypatch.setenv("REPRO_POOL_MIN_RECORDS", "100")
        workload = KMeansWorkload(physical_records=SMALL_RECORDS)
        spec = (workload, None, None, None, 0.05, "x", False)
        assert par._inline_reason([spec]) is None  # 2000 >= 100
        monkeypatch.setenv("REPRO_POOL_MIN_RECORDS", "1000000")
        assert par._inline_reason([spec]) == "inline-small"

    def test_unknown_workload_size_gets_the_pool(self, monkeypatch):
        monkeypatch.setattr(par, "_usable_cores", lambda: 4)
        spec = (object(), None, None, None, 0.05, "x", False)
        assert par._inline_reason([spec]) is None


class TestForcedPool:
    def test_forced_pool_matches_serial(self, tmp_path, monkeypatch):
        serial = _sweep(KMeansWorkload(physical_records=SMALL_RECORDS), jobs=1)
        monkeypatch.setenv("REPRO_POOL_FORCE", "1")
        pooled = _sweep(KMeansWorkload(physical_records=SMALL_RECORDS), jobs=2)
        assert par.last_dispatch == "pool"
        assert _db_files_match(tmp_path, serial, pooled)
        assert shm.cleanup_segments() == 0  # run_specs swept its segments


class TestBrokenPoolRecovery:
    def test_killed_worker_recovers_inline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DRIVER_PID", str(os.getpid()))
        serial = _sweep(CrashyKMeans(physical_records=SMALL_RECORDS), jobs=1)
        monkeypatch.setenv("REPRO_POOL_FORCE", "1")
        pooled = _sweep(CrashyKMeans(physical_records=SMALL_RECORDS), jobs=2)
        assert par.last_dispatch == "pool+recovered"
        assert _db_files_match(tmp_path, serial, pooled)
        assert shm.cleanup_segments() == 0  # crash left nothing behind

"""Tests for partition schemes and SchemeRef resolution."""

import pytest

from repro.chopper.schemes import PartitionScheme, SchemeRef
from repro.common.errors import ConfigurationError
from repro.engine import HashPartitioner, RangePartitioner


class TestPartitionScheme:
    def test_valid(self):
        scheme = PartitionScheme("hash", 100)
        assert scheme.kind == "hash"

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            PartitionScheme("modulo", 10)

    def test_bad_count(self):
        with pytest.raises(ConfigurationError):
            PartitionScheme("hash", 0)

    def test_roundtrip(self):
        scheme = PartitionScheme("range", 42)
        assert PartitionScheme.from_dict(scheme.to_dict()) == scheme


class TestSchemeRef:
    def test_hash_resolves_eagerly(self):
        ref = SchemeRef(PartitionScheme("hash", 7))
        part = ref.resolve_eager()
        assert isinstance(part, HashPartitioner)
        assert part.num_partitions == 7
        assert ref.resolved

    def test_range_does_not_resolve_eagerly(self):
        ref = SchemeRef(PartitionScheme("range", 7))
        assert ref.resolve_eager() is None
        assert not ref.resolved

    def test_shared_ref_reuses_partitioner(self):
        ref = SchemeRef(PartitionScheme("hash", 7))
        a = ref.resolve_eager()
        b = ref.resolve_eager()
        assert a is b

    def test_range_resolution_samples_map_stage(self, ctx):
        pairs = ctx.parallelize([(i % 50, i) for i in range(500)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b, 3)
        dep = reduced.shuffle_deps()[0]
        # Build the provisional stage graph to get the map stage.
        stages = ctx.dag_scheduler.provisional_stages(reduced)
        map_stage = next(s for s in stages if s.shuffle_dep is dep)
        ref = SchemeRef(PartitionScheme("range", 5))
        part, delay = ref.resolve(ctx, map_stage)
        assert isinstance(part, RangePartitioner)
        assert part.num_partitions == 5
        assert delay > 0
        # Second resolution is free and returns the same object.
        part2, delay2 = ref.resolve(ctx, map_stage)
        assert part2 is part
        assert delay2 == 0.0

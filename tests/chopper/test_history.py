"""Tests for run-history logging and offline training from history."""

import json

import pytest

from repro.chopper import (
    ChopperRunner,
    HistoryLogger,
    load_history_record,
    read_history,
)
from repro.cluster import uniform_cluster
from repro.common.errors import ConfigurationError
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import WordCountWorkload


def run_logged(tmp_path, name="run.jsonl"):
    ctx = AnalyticsContext(
        uniform_cluster(n_workers=2, cores=4), EngineConf(default_parallelism=8)
    )
    path = tmp_path / name
    logger = HistoryLogger.attach(ctx, path)
    pairs = ctx.parallelize([(i % 3, 1) for i in range(60)], 4)
    pairs.reduce_by_key(lambda a, b: a + b, 3).collect()
    logger.detach()
    return ctx, path


class TestHistoryLogger:
    def test_logs_header_stages_and_jobs(self, tmp_path):
        _ctx, path = run_logged(tmp_path)
        events = read_history(path)
        kinds = [e["event"] for e in events]
        assert kinds.count("stage") == 2
        assert kinds.count("job") == 1

    def test_stage_events_carry_metrics(self, tmp_path):
        _ctx, path = run_logged(tmp_path)
        stage_events = [e for e in read_history(path) if e["event"] == "stage"]
        map_stage = stage_events[0]
        assert map_stage["kind"] == "shuffle_map"
        assert map_stage["shuffle_bytes"] > 0
        assert map_stage["duration"] > 0
        assert "skew" in map_stage
        assert "remote_shuffle_read" in map_stage

    def test_detach_stops_logging(self, tmp_path):
        ctx, path = run_logged(tmp_path)
        n_before = len(read_history(path))
        ctx.parallelize(range(10), 2).count()
        assert len(read_history(path)) == n_before

    def test_rejects_non_history_file(self, tmp_path):
        bad = tmp_path / "junk.jsonl"
        bad.write_text(json.dumps({"event": "stage"}) + "\n")
        with pytest.raises(ConfigurationError):
            read_history(bad)

    def test_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ConfigurationError):
            read_history(empty)

    def test_rejects_wrong_version(self, tmp_path):
        f = tmp_path / "v999.jsonl"
        f.write_text(json.dumps({"event": "header", "version": 999}) + "\n")
        with pytest.raises(ConfigurationError):
            read_history(f)


class TestLoadHistoryRecord:
    def test_rebuilds_run_record(self, tmp_path):
        ctx, path = run_logged(tmp_path)
        record = load_history_record(path, workload="wc", input_bytes=1e9)
        assert record.workload == "wc"
        assert record.stage_count == 2
        assert record.total_time > 0
        sigs = {o.signature for o in record.observations}
        assert sigs == {s.signature for s in ctx.stage_stats}

    def test_history_feeds_chopper_training(self, tmp_path):
        """End to end: log production runs, train CHOPPER from the files."""
        workload = WordCountWorkload(virtual_gb=2.0, physical_records=500)

        def logged_run(name, parallelism):
            ctx = AnalyticsContext(
                uniform_cluster(n_workers=2, cores=4),
                EngineConf(default_parallelism=parallelism),
            )
            path = tmp_path / name
            logger = HistoryLogger.attach(ctx, path)
            workload.run(ctx)
            logger.detach()
            return path

        paths = [
            logged_run(f"prod-{p}.jsonl", p) for p in (8, 16, 32, 64)
        ]
        runner = ChopperRunner(
            workload,
            cluster_factory=lambda: uniform_cluster(n_workers=2, cores=4),
            base_conf=EngineConf(default_parallelism=16),
        )
        from repro.chopper.workload_db import WorkloadDag

        records = [
            load_history_record(p, workload.name, workload.input_bytes)
            for p in paths
        ]
        for record in records:
            runner.db.add_run(record)
        runner.db.set_dag(workload.name, WorkloadDag.from_run(records[0]))
        assert runner.train() > 0
        config = runner.optimize()
        assert len(config) > 0

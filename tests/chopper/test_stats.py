"""Tests for the statistics collector."""

import pytest

from repro.chopper.stats import RunRecord, StageObservation, StatisticsCollector


class TestStatisticsCollector:
    def test_collects_stage_observations(self, ctx):
        collector = StatisticsCollector("wl", input_bytes=1e9)
        with collector.attached(ctx):
            pairs = ctx.parallelize([(i % 3, 1) for i in range(60)], 4)
            pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        record = collector.record
        assert record.stage_count == 2
        assert [o.kind for o in record.observations] == ["shuffle_map", "result"]
        assert record.total_time == ctx.now

    def test_orders_are_sequential(self, ctx):
        collector = StatisticsCollector("wl", input_bytes=1e9)
        with collector.attached(ctx):
            ctx.parallelize(range(10), 2).collect()
            ctx.parallelize(range(10), 2).collect()
        orders = [o.order for o in collector.record.observations]
        assert orders == [0, 1]

    def test_detached_after_finish(self, ctx):
        collector = StatisticsCollector("wl", input_bytes=1e9)
        collector.attach(ctx)
        ctx.parallelize(range(10), 2).collect()
        collector.finish(ctx)
        ctx.parallelize(range(10), 2).collect()
        assert collector.record.stage_count == 1

    def test_total_time_excludes_prior_work(self, ctx):
        ctx.parallelize(range(1000), 4).collect()
        before = ctx.now
        assert before > 0
        collector = StatisticsCollector("wl", input_bytes=1e9)
        with collector.attached(ctx):
            ctx.parallelize(range(1000), 4).collect()
        assert collector.record.total_time == pytest.approx(ctx.now - before)

    def test_observation_roundtrip(self):
        obs = StageObservation(
            signature="s", kind="result", partitioner_kind="range",
            input_bytes=1e9, num_partitions=100, duration=5.0,
            shuffle_bytes=42.0, order=3, parent_signatures=("p",),
            cogroup_sides=2, user_fixed=True, source_signatures=("src",),
        )
        assert StageObservation.from_dict(obs.to_dict()) == obs

    def test_by_signature_grouping(self):
        record = RunRecord(workload="w", input_bytes=1.0)
        for i, sig in enumerate(["a", "b", "a"]):
            record.observations.append(
                StageObservation(
                    signature=sig, kind="result", partitioner_kind=None,
                    input_bytes=1.0, num_partitions=1, duration=1.0,
                    shuffle_bytes=0.0, order=i,
                )
            )
        grouped = record.by_signature()
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1

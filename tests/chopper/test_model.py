"""Tests for the Eq. 1-2 performance models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chopper.model import (
    StagePerfModel,
    design_matrix,
    fit_models_by_partitioner,
)
from repro.chopper.stats import StageObservation
from repro.common.errors import ModelError


def obs(d, p, t, s, kind="hash"):
    return StageObservation(
        signature="sig", kind="result", partitioner_kind=kind,
        input_bytes=d, num_partitions=p, duration=t, shuffle_bytes=s, order=0,
    )


def synth_obs(ds, ps, time_fn, shuffle_fn, kind="hash"):
    return [
        obs(d, p, time_fn(d, p), shuffle_fn(d, p), kind)
        for d in ds for p in ps
    ]


class TestDesignMatrix:
    def test_shape_and_terms(self):
        X = design_matrix(np.array([8.0]), np.array([4.0]), 8.0, 4.0)
        # The paper's 8 terms plus the implementation's intercept column.
        assert X.shape == (1, 9)
        # Scaled D = 1, P = 1 -> every term is 1.
        assert np.allclose(X, 1.0)

    def test_scaling(self):
        X = design_matrix(np.array([4.0]), np.array([1.0]), 8.0, 4.0)
        assert X[0, 0] == pytest.approx(0.125)  # (D/ref)^3
        assert X[0, 3] == pytest.approx(np.sqrt(0.5))


class TestFit:
    def test_needs_two_samples(self):
        with pytest.raises(ModelError):
            StagePerfModel.fit([obs(1e9, 100, 10.0, 1e6)])

    def test_recovers_linear_in_d(self):
        rows = synth_obs(
            [1e9, 2e9, 4e9, 8e9], [100, 200, 400],
            time_fn=lambda d, p: 3e-9 * d,
            shuffle_fn=lambda d, p: 0.0,
        )
        model = StagePerfModel.fit(rows)
        assert model.predict_time(4e9, 200) == pytest.approx(12.0, rel=0.05)

    def test_recovers_u_shape_in_p(self):
        """A time curve with an interior minimum is representable."""
        def t(d, p):
            return 100.0 / p * 50 + 0.02 * p  # min around p=500

        rows = synth_obs([1e9], [100, 200, 300, 500, 800, 1200, 2000], t, lambda d, p: 0)
        model = StagePerfModel.fit(rows)
        mid = model.predict_time(1e9, 500)
        assert mid < model.predict_time(1e9, 100)
        assert mid < model.predict_time(1e9, 2000)

    def test_shuffle_growth_with_p(self):
        rows = synth_obs(
            [1e9], [100, 200, 400, 800],
            time_fn=lambda d, p: 10.0,
            shuffle_fn=lambda d, p: 1000.0 * p,
        )
        model = StagePerfModel.fit(rows)
        assert model.predict_shuffle(1e9, 800) > model.predict_shuffle(1e9, 100) * 4

    def test_predictions_clipped_nonnegative(self):
        rows = synth_obs([1e9, 2e9], [100, 200], lambda d, p: 1.0, lambda d, p: 0.0)
        model = StagePerfModel.fit(rows)
        assert model.predict_time(1.0, 1.0) >= 0.0
        assert model.predict_shuffle(1e12, 5000) >= 0.0

    def test_search_bounds_are_observed_envelope(self):
        rows = synth_obs([1e9], [100, 300, 800], lambda d, p: p, lambda d, p: 0)
        model = StagePerfModel.fit(rows)
        assert model.search_bounds() == (100, 800)

    def test_r2_near_perfect_fit(self):
        # The model fits in log space, so an exactly-additive ground truth
        # is approximated (very well) rather than interpolated.
        rows = synth_obs([1e9, 2e9, 3e9], [100, 200, 300],
                         lambda d, p: 2e-9 * d + 0.01 * p, lambda d, p: 0)
        model = StagePerfModel.fit(rows)
        assert model.r2_time(rows) > 0.95
        assert model.mape_time(rows) < 0.05

    def test_roundtrip(self):
        rows = synth_obs([1e9, 2e9], [100, 200], lambda d, p: d * 1e-9, lambda d, p: p)
        model = StagePerfModel.fit(rows)
        clone = StagePerfModel.from_dict(model.to_dict())
        assert clone.predict_time(1.5e9, 150) == pytest.approx(
            model.predict_time(1.5e9, 150)
        )
        assert clone.p_range == model.p_range

    @settings(max_examples=25)
    @given(st.floats(min_value=1e6, max_value=1e12),
           st.integers(min_value=1, max_value=5000))
    def test_predictions_always_finite_nonneg(self, d, p):
        rows = synth_obs([1e9, 2e9, 4e9], [100, 300, 900],
                         lambda dd, pp: 1e-9 * dd + 0.1 * pp,
                         lambda dd, pp: pp * 100.0)
        model = StagePerfModel.fit(rows)
        t = model.predict_time(d, p)
        assert np.isfinite(t) and t >= 0


class TestFitByPartitioner:
    def test_splits_kinds(self):
        rows = (
            synth_obs([1e9, 2e9], [100, 200], lambda d, p: 1.0, lambda d, p: 0, "hash")
            + synth_obs([1e9, 2e9], [100, 200], lambda d, p: 2.0, lambda d, p: 0, "range")
        )
        models = fit_models_by_partitioner(rows)
        assert set(models) == {"hash", "range"}

    def test_none_kind_feeds_both(self):
        rows = synth_obs([1e9, 2e9], [100, 200], lambda d, p: 1.0, lambda d, p: 0,
                         kind=None)
        models = fit_models_by_partitioner(rows)
        assert set(models) == {"hash", "range"}

    def test_no_data_raises(self):
        with pytest.raises(ModelError):
            fit_models_by_partitioner([])

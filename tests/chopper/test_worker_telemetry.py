"""Cross-process telemetry aggregation through the worker pool.

Pool workers meter into fresh per-run sinks and ship the state back in
their result segments; the driver merges in spec order, labeling each
pool-dispatched run's series with its deterministic chunk slot. These
tests force the pool on (REPRO_POOL_FORCE=1) so they exercise the real
fork + shared-memory path even for the tiny test workloads.
"""

import json

import pytest

from repro.chopper import ChopperRunner
from repro.chopper import parallel as par
from repro.engine import EngineConf
from repro.obs import EventLog, MetricsRegistry, ResourceProfiler
from repro.workloads import WordCountWorkload


@pytest.fixture(autouse=True)
def force_pool(monkeypatch):
    monkeypatch.setenv("REPRO_POOL_FORCE", "1")


def _runner():
    runner = ChopperRunner(
        WordCountWorkload(physical_records=2000),
        base_conf=EngineConf(default_parallelism=8),
    )
    runner.metrics_registry = MetricsRegistry()
    runner.event_log = EventLog()
    runner.profiler = ResourceProfiler()
    return runner


class TestPoolSweepTelemetry:
    def test_worker_labeled_series_and_log_records(self):
        runner = _runner()
        runner.profile(p_grid=(4, 8), scales=(0.02,), jobs=4)
        assert par.last_dispatch == "pool"

        snapshot = runner.metrics_registry.snapshot()
        labeled = [
            s
            for s in snapshot["counters"]["scheduler.tasks_completed"]
            if "worker" in s["labels"]
        ]
        # Four chunks -> four worker slots, each with completed tasks.
        assert {s["labels"]["worker"] for s in labeled} == {
            "w0", "w1", "w2", "w3",
        }
        assert all(s["value"] > 0 for s in labeled)

        workers_logged = {
            r["worker"] for r in runner.event_log.records if "worker" in r
        }
        assert workers_logged == {"w0", "w1", "w2", "w3"}

        # The unlabeled total matches the sum the worker series describe
        # plus the inline-run share (spec 0 runs on the driver).
        total = runner.metrics_registry.counter_total(
            "scheduler.tasks_completed"
        )
        assert total > sum(s["value"] for s in labeled)

    def test_worker_profiles_merge_into_sweep_rollup(self):
        runner = _runner()
        runner.profile(p_grid=(4,), scales=(0.02,), jobs=2)
        assert par.last_dispatch == "pool"
        rolled = runner.profiler.rollup()
        assert rolled["host"]["wall_s"] > 0
        assert sum(s["tasks"] for s in rolled["stages"].values()) > 0

    def test_compare_ships_telemetry_too(self):
        runner = _runner()
        runner.profile(p_grid=(4, 8), scales=(0.02,), jobs=1)
        runner.train()
        before = len(runner.event_log.records)
        vanilla, chopper = runner.compare(scale=0.02, jobs=2)
        assert vanilla.ctx is None and chopper.ctx is None  # pool ran it
        labels = {
            r.get("run")
            for r in runner.event_log.records[before:]
        }
        assert {"vanilla", "chopper"} <= labels


class TestDeterministicAttribution:
    def test_repeat_pool_sweeps_are_byte_identical(self):
        first = _runner()
        first.profile(p_grid=(4, 8), scales=(0.02,), jobs=3)
        second = _runner()
        second.profile(p_grid=(4, 8), scales=(0.02,), jobs=3)
        assert json.dumps(
            first.metrics_registry.snapshot(), sort_keys=True
        ) == json.dumps(second.metrics_registry.snapshot(), sort_keys=True)
        assert json.dumps(first.event_log.records) == json.dumps(
            second.event_log.records
        )

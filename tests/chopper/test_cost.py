"""Tests for the Eq. 3-4 objective and the P search."""

import pytest

from repro.chopper.cost import (
    CostWeights,
    get_min_par,
    repartition_cost,
    stage_cost,
)
from repro.chopper.model import StagePerfModel
from repro.common.errors import ModelError
from tests.chopper.test_model import synth_obs


def u_shape_model(shuffle_slope=0.0):
    """Time minimal near P=500; shuffle linear in P."""
    return StagePerfModel.fit(
        synth_obs(
            [1e9, 2e9], [100, 200, 300, 500, 800, 1200, 2000],
            time_fn=lambda d, p: d * 1e-9 * (5000.0 / p) + 0.02 * p,
            shuffle_fn=lambda d, p: shuffle_slope * p,
        )
    )


class TestWeights:
    def test_defaults_are_paper_values(self):
        w = CostWeights()
        assert w.alpha == 0.5
        assert w.beta == 0.5
        assert w.default_parallelism == 300

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            CostWeights(alpha=-0.1)

    def test_both_zero_rejected(self):
        with pytest.raises(ModelError):
            CostWeights(alpha=0.0, beta=0.0)


class TestStageCost:
    def test_cost_is_one_at_default(self):
        model = u_shape_model(shuffle_slope=1e7)
        w = CostWeights()
        assert stage_cost(model, 1e9, 300, w) == pytest.approx(1.0, rel=0.05)

    def test_time_only_when_shuffle_insignificant(self):
        model = u_shape_model(shuffle_slope=0.0)
        w = CostWeights()
        # With no shuffle, the cost is the pure (renormalized) time ratio.
        c_fast = stage_cost(model, 1e9, 500, w)
        c_slow = stage_cost(model, 1e9, 100, w)
        assert c_fast < c_slow

    def test_shuffle_term_pulls_p_down(self):
        w = CostWeights(shuffle_significance=0.0)
        heavy = u_shape_model(shuffle_slope=1e7)  # shuffle ~ P x 10MB
        light = u_shape_model(shuffle_slope=0.0)
        p_heavy, _ = get_min_par(heavy, 1e9, w)
        p_light, _ = get_min_par(light, 1e9, w)
        assert p_heavy < p_light

    def test_significance_floor_ignores_trivial_shuffle(self):
        # 100 bytes x P of shuffle against a 1 GB input: insignificant.
        tiny = u_shape_model(shuffle_slope=100.0)
        w = CostWeights(shuffle_significance=1e-3)
        p_tiny, _ = get_min_par(tiny, 1e9, w)
        no_shuffle = u_shape_model(shuffle_slope=0.0)
        p_none, _ = get_min_par(no_shuffle, 1e9, w)
        assert abs(p_tiny - p_none) <= 25


class TestGetMinPar:
    def test_finds_interior_minimum(self):
        model = u_shape_model()
        p, cost = get_min_par(model, 1e9, CostWeights())
        # True minimum of d*5/p*... : minimize 5/p*1 + 0.02p -> p ~ 500.
        assert 300 < p < 800
        assert cost < 1.0  # better than the default 300

    def test_respects_explicit_bounds(self):
        model = u_shape_model()
        p, _ = get_min_par(model, 1e9, CostWeights(), p_min=150, p_max=250)
        assert 150 <= p <= 250

    def test_empty_range_raises(self):
        model = u_shape_model()
        with pytest.raises(ModelError):
            get_min_par(model, 1e9, CostWeights(), p_min=5000, p_max=6000)

    def test_stays_in_observed_envelope(self):
        model = u_shape_model()
        p, _ = get_min_par(model, 1e9, CostWeights())
        lo, hi = model.search_bounds()
        assert lo <= p <= hi

    def test_deterministic(self):
        model = u_shape_model()
        assert get_min_par(model, 1e9, CostWeights()) == get_min_par(
            model, 1e9, CostWeights()
        )


class TestRepartitionCost:
    def test_scales_with_data_and_tasks(self):
        assert repartition_cost(1e10, 300) > repartition_cost(1e9, 300)
        assert repartition_cost(1e9, 3000) > repartition_cost(1e9, 300)

    def test_validation(self):
        with pytest.raises(ModelError):
            repartition_cost(-1.0, 10)
        with pytest.raises(ModelError):
            repartition_cost(1.0, 0)

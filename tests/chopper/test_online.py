"""Tests for online adaptation (dynamic config updates)."""

import pytest
from repro.chopper import ChopperRunner, OnlineChopper
from repro.chopper.stats import StatisticsCollector
from repro.cluster import uniform_cluster
from repro.common.errors import ModelError
from repro.engine import AnalyticsContext, EngineConf
from repro.workloads import KMeansWorkload


@pytest.fixture(scope="module")
def trained():
    workload = KMeansWorkload(
        virtual_gb=4.0, physical_records=1000, lloyd_iterations=3, init_rounds=2
    )
    runner = ChopperRunner(
        workload,
        cluster_factory=lambda: uniform_cluster(n_workers=3, cores=8),
        base_conf=EngineConf(default_parallelism=48),
    )
    runner.profile(p_grid=(16, 48, 96, 160), scales=(1.0,))
    runner.train()
    return runner


def online_for(runner, **kw):
    return OnlineChopper(
        runner.db,
        runner.workload.name,
        runner.workload.virtual_bytes(),
        runner.weights,
        cluster_parallelism=24,
        **kw,
    )


class TestOnlineChopper:
    def test_validation(self, trained):
        with pytest.raises(ModelError):
            online_for(trained, refit_every=0)

    def test_collects_and_refits_during_run(self, trained):
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=3, cores=8),
            EngineConf(default_parallelism=48, copartition_scheduling=True),
        )
        online = online_for(trained, refit_every=4)
        before = len(trained.db.observations("kmeans"))
        with online.attach(ctx):
            result = trained.workload.run(ctx)
        after = len(trained.db.observations("kmeans"))
        stage_count = trained.workload.expected_stage_count()
        assert after - before == stage_count
        assert online.refits == stage_count // 4
        assert result.value is not None

    def test_detach_restores_context(self, trained):
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=3, cores=8),
            EngineConf(default_parallelism=48),
        )
        online = online_for(trained)
        with online.attach(ctx):
            pass
        assert ctx.advisor is None
        # Listener removed: later stages are not recorded.
        before = len(trained.db.observations("kmeans"))
        ctx.parallelize(range(10), 2).count()
        assert len(trained.db.observations("kmeans")) == before

    def test_config_updates_in_place(self, trained):
        online = online_for(trained)
        config_object = online.config
        entries_before = dict(config_object.entries)
        online.refresh()
        assert online.config is config_object  # same object the advisor holds
        assert set(config_object.entries) == set(entries_before)

    def test_online_run_still_beats_vanilla(self, trained):
        vanilla = trained.run_vanilla()
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=3, cores=8),
            EngineConf(default_parallelism=48, copartition_scheduling=True),
        )
        online = online_for(trained, refit_every=6)
        collector = StatisticsCollector("kmeans", trained.workload.virtual_bytes())
        collector.attach(ctx)
        with online.attach(ctx):
            trained.workload.run(ctx)
        record = collector.finish(ctx)
        record.total_time = ctx.now
        assert record.total_time < vanilla.total_time * 1.02

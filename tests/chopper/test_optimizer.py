"""Tests for Algorithms 1-3 on synthetic workload DBs."""

import pytest

from repro.chopper.cost import CostWeights
from repro.chopper.global_opt import (
    get_global_par,
    get_regrouped_dag,
    get_subgraph_par,
)
from repro.chopper.model import StagePerfModel
from repro.chopper.optimizer import (
    get_stage_input,
    get_stage_par,
    get_workload_par,
)
from repro.chopper.stats import StageObservation
from repro.chopper.workload_db import DagStage, WorkloadDB, WorkloadDag
from repro.common.errors import ModelError


def fit(time_fn, shuffle_fn=lambda d, p: 0.0, kind="hash"):
    rows = [
        StageObservation(
            signature="s", kind="result", partitioner_kind=kind,
            input_bytes=d, num_partitions=p,
            duration=time_fn(d, p), shuffle_bytes=shuffle_fn(d, p), order=0,
        )
        for d in (1e9, 2e9)
        for p in (100, 200, 300, 500, 800)
    ]
    return StagePerfModel.fit(rows)


def dag_stage(sig, order=0, frac=1.0, **kw):
    defaults = dict(
        kind="result", parent_signatures=(), cogroup_sides=0,
        user_fixed=False, input_fraction=frac,
        observed_partitioner_kind="hash", observed_num_partitions=300,
    )
    defaults.update(kw)
    return DagStage(signature=sig, order=order, **defaults)


def build_db(stages, models):
    """models: {(sig, kind): (time_fn, shuffle_fn)}"""
    db = WorkloadDB()
    db.set_dag("wl", WorkloadDag(stages=list(stages)))
    for (sig, kind), (tf, sf) in models.items():
        db.set_model("wl", sig, kind, fit(tf, sf, kind))
    return db


W = CostWeights()


class TestAlgorithm1:
    def test_picks_cheaper_partitioner(self):
        db = build_db(
            [dag_stage("s")],
            {
                ("s", "hash"): (lambda d, p: 100.0, lambda d, p: 0),
                ("s", "range"): (lambda d, p: 50.0, lambda d, p: 0),
            },
        )
        scheme, cost = get_stage_par(db, "wl", "s", 1e9, W)
        assert scheme.kind == "range"

    def test_hash_wins_ties(self):
        db = build_db(
            [dag_stage("s")],
            {
                ("s", "hash"): (lambda d, p: 100.0, lambda d, p: 0),
                ("s", "range"): (lambda d, p: 100.0, lambda d, p: 0),
            },
        )
        scheme, _ = get_stage_par(db, "wl", "s", 1e9, W)
        assert scheme.kind == "hash"

    def test_single_kind_available(self):
        db = build_db(
            [dag_stage("s")],
            {("s", "hash"): (lambda d, p: 1e7 / p + 0.1 * p, lambda d, p: 0)},
        )
        scheme, _ = get_stage_par(db, "wl", "s", 1e9, W)
        assert scheme.kind == "hash"

    def test_no_models_raises(self):
        db = build_db([dag_stage("s")], {})
        with pytest.raises(ModelError):
            get_stage_par(db, "wl", "s", 1e9, W)

    def test_minimizes_over_p(self):
        db = build_db(
            [dag_stage("s")],
            {("s", "hash"): (lambda d, p: 1e5 / p + 0.5 * p, lambda d, p: 0)},
        )
        scheme, _ = get_stage_par(db, "wl", "s", 1e9, W)
        # analytic minimum at sqrt(1e5/0.5) ~ 447
        assert 350 <= scheme.num_partitions <= 550


class TestAlgorithm2:
    def test_per_stage_independence(self):
        db = build_db(
            [dag_stage("a", 0, frac=1.0), dag_stage("b", 1, frac=0.5)],
            {
                ("a", "hash"): (lambda d, p: 1e5 / p + 0.5 * p, lambda d, p: 0),
                ("b", "hash"): (lambda d, p: 1e4 / p + 5.0 * p, lambda d, p: 0),
            },
        )
        schemes = get_workload_par(db, "wl", 1e9, W)
        assert [s.signature for s in schemes] == ["a", "b"]
        # Stage b's steeper overhead term pulls its optimum far lower.
        assert schemes[1].scheme.num_partitions < schemes[0].scheme.num_partitions

    def test_stage_input_estimation(self):
        db = build_db([dag_stage("a", frac=0.25)], {})
        assert get_stage_input(db, "wl", "a", 4e9) == pytest.approx(1e9)


class TestRegrouping:
    def test_join_consumer_groups_parents(self):
        stages = [
            dag_stage("scan_a", 0, kind="shuffle_map"),
            dag_stage("scan_b", 1, kind="shuffle_map"),
            dag_stage("join", 2, kind="shuffle_map",
                      parent_signatures=("scan_a", "scan_b"), cogroup_sides=2),
            dag_stage("result", 3),
        ]
        db = build_db(stages, {})
        nodes = get_regrouped_dag(db, "wl")
        join_node = next(n for n in nodes if "join" in n.signatures())
        assert set(join_node.signatures()) == {"scan_a", "scan_b", "join"}
        assert join_node.is_subgraph

    def test_source_stages_group(self):
        stages = [
            dag_stage("load", 0, observed_partitioner_kind=None,
                      source_signatures=("src",)),
            dag_stage("scan1", 1, observed_partitioner_kind=None,
                      source_signatures=("src",)),
            dag_stage("reduce", 2, observed_partitioner_kind="hash"),
        ]
        db = build_db(stages, {})
        nodes = get_regrouped_dag(db, "wl")
        source_node = next(n for n in nodes if "load" in n.signatures())
        assert set(source_node.signatures()) == {"load", "scan1"}
        standalone = next(n for n in nodes if "reduce" in n.signatures())
        assert not standalone.is_subgraph

    def test_all_stages_covered_exactly_once(self):
        stages = [
            dag_stage("a", 0, kind="shuffle_map"),
            dag_stage("b", 1, kind="shuffle_map"),
            dag_stage("j", 2, parent_signatures=("a", "b"), cogroup_sides=2),
            dag_stage("load", 3, observed_partitioner_kind=None,
                      source_signatures=("s1",)),
            dag_stage("x", 4),
        ]
        db = build_db(stages, {})
        nodes = get_regrouped_dag(db, "wl")
        sigs = [s for n in nodes for s in n.signatures()]
        assert sorted(sigs) == sorted(s.signature for s in stages)


class TestAlgorithm3:
    def _join_db(self, range_join_cost):
        """Join subgraph where range is great for A but terrible for join."""
        stages = [
            dag_stage("scan_a", 0, kind="shuffle_map", frac=0.8),
            dag_stage("scan_b", 1, kind="shuffle_map", frac=0.2),
            dag_stage("join", 2, parent_signatures=("scan_a", "scan_b"),
                      cogroup_sides=2, frac=0.5),
        ]
        models = {}
        for sig in ("scan_a", "scan_b"):
            models[(sig, "hash")] = (lambda d, p: 100.0 + 0.01 * p, lambda d, p: 0)
            models[(sig, "range")] = (lambda d, p: 80.0 + 0.01 * p, lambda d, p: 0)
        models[("join", "hash")] = (lambda d, p: 50.0, lambda d, p: 0)
        models[("join", "range")] = (lambda d, p: range_join_cost, lambda d, p: 0)
        return build_db(stages, models)

    def test_subgraph_members_share_scheme_and_group(self):
        db = self._join_db(range_join_cost=5000.0)
        schemes = get_global_par(db, "wl", 1e9, W)
        by_sig = {s.signature: s for s in schemes}
        group = by_sig["join"].group
        assert group is not None
        assert by_sig["scan_a"].group == group
        assert by_sig["scan_a"].scheme == by_sig["join"].scheme

    def test_subgraph_avoids_locally_good_globally_bad_scheme(self):
        # Range is better per-scan but catastrophic for the join: the
        # shared scheme must be hash.
        db = self._join_db(range_join_cost=5000.0)
        schemes = get_global_par(db, "wl", 1e9, W)
        join = next(s for s in schemes if s.signature == "join")
        assert join.scheme.kind == "hash"

    def test_subgraph_keeps_range_when_join_tolerates_it(self):
        db = self._join_db(range_join_cost=40.0)
        schemes = get_global_par(db, "wl", 1e9, W)
        join = next(s for s in schemes if s.signature == "join")
        assert join.scheme.kind == "range"

    def test_get_subgraph_par_prices_all_members(self):
        db = self._join_db(range_join_cost=5000.0)
        members = db.dag("wl").stages
        scheme, cost = get_subgraph_par(db, "wl", members, 1e9, W)
        assert scheme.kind == "hash"
        assert cost > 0

    def test_fixed_stage_kept_when_gamma_not_cleared(self):
        stages = [
            dag_stage("fixed", 0, user_fixed=True,
                      observed_partitioner_kind="hash",
                      observed_num_partitions=300),
        ]
        db = build_db(
            stages,
            # Optimal P barely better than the current: repartition should
            # NOT clear the 1.5x bar.
            {("fixed", "hash"): (lambda d, p: 100.0 + 0.001 * p, lambda d, p: 0)},
        )
        schemes = get_global_par(db, "wl", 1e9, W, gamma=1.5)
        # Rejection means the node is left entirely alone: no config entry
        # is emitted, so the advisor never touches the user's plan.
        assert schemes == []

    def test_fixed_stage_repartitioned_when_benefit_large(self):
        stages = [
            dag_stage("fixed", 0, user_fixed=True,
                      observed_partitioner_kind="hash",
                      observed_num_partitions=800),
        ]
        db = build_db(
            stages,
            # At 800 the stage is ~9x slower than at its optimum.
            {("fixed", "hash"): (lambda d, p: 10.0 + 0.2 * (p - 100), lambda d, p: 0)},
        )
        schemes = get_global_par(db, "wl", 1e9, W, gamma=1.5)
        assert schemes[0].insert_repartition
        assert schemes[0].scheme.num_partitions < 800

    def test_output_ordered_by_stage_order(self):
        db = self._join_db(range_join_cost=100.0)
        schemes = get_global_par(db, "wl", 1e9, W)
        orders = [db.dag("wl").stage(s.signature).order for s in schemes]
        assert orders == sorted(orders)

"""Tests for config validation."""

from repro.chopper.config_gen import ConfigEntry, WorkloadConfig
from repro.chopper.schemes import PartitionScheme
from repro.chopper.validate import validate_config


def graph(ctx):
    pairs = ctx.parallelize([(i % 5, i) for i in range(100)], 4)
    return pairs.reduce_by_key(lambda a, b: a + b, 4)


def signatures(ctx, rdd):
    return [s.signature for s in ctx.dag_scheduler.provisional_stages(rdd)]


def entry(sig, n=8):
    return ConfigEntry(signature=sig, scheme=PartitionScheme("hash", n))


class TestValidateConfig:
    def test_full_coverage_ok(self, ctx):
        rdd = graph(ctx)
        config = WorkloadConfig(workload="t")
        for sig in signatures(ctx, rdd):
            config.add(entry(sig))
        report = validate_config(config, rdd, ctx)
        assert report.ok
        assert report.coverage == 1.0
        assert not report.stale

    def test_stale_entry_detected(self, ctx):
        rdd = graph(ctx)
        config = WorkloadConfig(workload="t")
        config.add(entry("deadbeef00000000"))
        report = validate_config(config, rdd, ctx)
        assert report.stale == ["deadbeef00000000"]
        assert not report.ok
        assert "STALE" in report.summary()

    def test_uncovered_stages_reported(self, ctx):
        rdd = graph(ctx)
        report = validate_config(WorkloadConfig(workload="t"), rdd, ctx)
        assert len(report.uncovered) == 2
        assert report.coverage == 0.0
        # Uncovered alone is not an error: defaults apply.
        assert not report.stale

    def test_tiny_partition_count_warns(self, ctx):
        rdd = graph(ctx)
        sig = signatures(ctx, rdd)[0]
        config = WorkloadConfig(workload="t")
        config.add(entry(sig, n=1))  # 16-core test cluster
        report = validate_config(config, rdd, ctx)
        assert report.warnings
        assert "idle" in report.warnings[0]

    def test_huge_partition_count_warns(self, ctx):
        rdd = graph(ctx)
        sig = signatures(ctx, rdd)[0]
        config = WorkloadConfig(workload="t")
        config.add(entry(sig, n=100_000))
        report = validate_config(config, rdd, ctx)
        assert any("dispatch" in w for w in report.warnings)

    def test_validation_does_not_mutate_graph(self, ctx):
        rdd = graph(ctx)
        sig = signatures(ctx, rdd)[-1]
        config = WorkloadConfig(workload="t")
        config.add(entry(sig, n=11))
        validate_config(config, rdd, ctx)
        # No advisor installed, nothing applied: defaults still run.
        rdd.collect()
        assert ctx.job_stats[-1].stages[-1].num_partitions == 4

"""Tests for the workload configuration file."""

from repro.chopper.config_gen import ConfigEntry, WorkloadConfig
from repro.chopper.optimizer import StageScheme
from repro.chopper.schemes import PartitionScheme


def entry(sig="s1", kind="hash", n=100, **kw):
    return ConfigEntry(signature=sig, scheme=PartitionScheme(kind, n), **kw)


class TestWorkloadConfig:
    def test_add_and_lookup(self):
        config = WorkloadConfig(workload="wl")
        config.add(entry())
        assert config.entry("s1").scheme.num_partitions == 100
        assert config.entry("missing") is None
        assert len(config) == 1

    def test_add_overwrites_same_signature(self):
        config = WorkloadConfig(workload="wl")
        config.add(entry(n=100))
        config.add(entry(n=200))
        assert len(config) == 1
        assert config.entry("s1").scheme.num_partitions == 200

    def test_from_schemes(self):
        schemes = [
            StageScheme("a", PartitionScheme("hash", 10), 0.5, group="g0"),
            StageScheme("b", PartitionScheme("range", 20), 0.7,
                        insert_repartition=True),
        ]
        config = WorkloadConfig.from_schemes("wl", schemes)
        assert config.entry("a").group == "g0"
        assert config.entry("b").insert_repartition

    def test_json_roundtrip(self):
        config = WorkloadConfig(workload="wl")
        config.add(entry("s1", "hash", 100, group="g0", cost=0.42))
        config.add(entry("s2", "range", 250, insert_repartition=True))
        clone = WorkloadConfig.from_json(config.to_json())
        assert clone.workload == "wl"
        assert clone.entry("s1").group == "g0"
        assert clone.entry("s1").cost == 0.42
        assert clone.entry("s2").scheme == PartitionScheme("range", 250)
        assert clone.entry("s2").insert_repartition

    def test_file_roundtrip(self, tmp_path):
        config = WorkloadConfig(workload="wl")
        config.add(entry())
        path = tmp_path / "config.json"
        config.save(path)
        assert WorkloadConfig.load(path).entry("s1") is not None

    def test_json_is_human_readable(self):
        config = WorkloadConfig(workload="wl")
        config.add(entry())
        text = config.to_json()
        assert '"signature"' in text
        assert '"num_partitions": 100' in text

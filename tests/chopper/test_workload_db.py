"""Tests for the workload DB: observations, DAG summaries, persistence."""

import pytest

from repro.chopper.model import StagePerfModel
from repro.chopper.stats import RunRecord, StageObservation
from repro.chopper.workload_db import WorkloadDB, WorkloadDag
from repro.common.errors import ModelError
from tests.chopper.test_model import synth_obs


def make_obs(sig, order, d=1e9, p=300, kind="hash", **kw):
    return StageObservation(
        signature=sig, kind=kw.pop("stage_kind", "result"),
        partitioner_kind=kind, input_bytes=d, num_partitions=p,
        duration=10.0, shuffle_bytes=100.0, order=order, **kw,
    )


def make_run(workload="wl", obs=None, input_bytes=1e9):
    return RunRecord(
        workload=workload, input_bytes=input_bytes,
        observations=obs or [make_obs("a", 0), make_obs("b", 1)],
    )


class TestObservations:
    def test_add_and_filter_by_signature(self):
        db = WorkloadDB()
        db.add_run(make_run())
        assert len(db.observations("wl")) == 2
        assert len(db.observations("wl", signature="a")) == 1

    def test_filter_by_partitioner(self):
        db = WorkloadDB()
        db.add_run(make_run(obs=[
            make_obs("a", 0, kind="hash"),
            make_obs("a", 1, kind="range"),
            make_obs("a", 2, kind=None),
        ]))
        hash_rows = db.observations("wl", partitioner_kind="hash")
        # None-kind rows are included for both kinds.
        assert len(hash_rows) == 2

    def test_unknown_workload_empty(self):
        assert WorkloadDB().observations("ghost") == []

    def test_workloads_listing(self):
        db = WorkloadDB()
        db.add_run(make_run("b"))
        db.add_run(make_run("a"))
        assert db.workloads() == ["a", "b"]


class TestDag:
    def test_from_run_collapses_repeats(self):
        record = make_run(obs=[
            make_obs("load", 0, d=1e9),
            make_obs("iter", 1, d=5e8),
            make_obs("iter", 2, d=5e8),
            make_obs("iter", 3, d=5e8),
        ])
        dag = WorkloadDag.from_run(record)
        assert dag.signatures() == ["load", "iter"]
        assert dag.stage("iter").repeats == 3
        assert dag.stage("iter").input_fraction == pytest.approx(0.5)

    def test_input_fraction(self):
        record = make_run(obs=[make_obs("a", 0, d=2.5e8)], input_bytes=1e9)
        dag = WorkloadDag.from_run(record)
        assert dag.stage("a").input_fraction == pytest.approx(0.25)

    def test_unknown_stage_raises(self):
        with pytest.raises(ModelError):
            WorkloadDag().stage("missing")

    def test_db_requires_dag(self):
        with pytest.raises(ModelError):
            WorkloadDB().dag("wl")

    def test_observed_scheme_recorded(self):
        record = make_run(obs=[make_obs("a", 0, p=123, kind="range")])
        dag = WorkloadDag.from_run(record)
        assert dag.stage("a").observed_partitioner_kind == "range"
        assert dag.stage("a").observed_num_partitions == 123


class TestModels:
    def _model(self):
        return StagePerfModel.fit(
            synth_obs([1e9, 2e9], [100, 300], lambda d, p: 1.0, lambda d, p: 0.0)
        )

    def test_set_get(self):
        db = WorkloadDB()
        db.set_model("wl", "a", "hash", self._model())
        assert db.has_model("wl", "a", "hash")
        assert not db.has_model("wl", "a", "range")
        assert db.model("wl", "a", "hash").n_samples == 4

    def test_missing_model_raises(self):
        with pytest.raises(ModelError):
            WorkloadDB().model("wl", "a", "hash")


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        db = WorkloadDB()
        record = make_run(obs=[
            make_obs("a", 0, source_signatures=("src1",)),
            make_obs("b", 1, parent_signatures=("a",), cogroup_sides=2),
        ])
        db.add_run(record)
        db.set_dag("wl", WorkloadDag.from_run(record))
        db.set_model(
            "wl", "a", "hash",
            StagePerfModel.fit(
                synth_obs([1e9, 2e9], [100, 300], lambda d, p: d * 1e-9,
                          lambda d, p: p)
            ),
        )
        path = tmp_path / "db.json"
        db.save(path)
        clone = WorkloadDB.load(path)
        assert len(clone.observations("wl")) == 2
        assert clone.dag("wl").stage("b").cogroup_sides == 2
        assert clone.dag("wl").stage("a").source_signatures == ("src1",)
        assert clone.model("wl", "a", "hash").predict_time(1e9, 200) == (
            pytest.approx(db.model("wl", "a", "hash").predict_time(1e9, 200))
        )

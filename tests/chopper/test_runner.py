"""Integration tests for the CHOPPER runner pipeline (small workloads)."""

import pytest

from repro.chopper import ChopperRunner, improvement
from repro.chopper.config_gen import WorkloadConfig
from repro.cluster import uniform_cluster
from repro.common.errors import ModelError
from repro.engine import EngineConf
from repro.workloads import KMeansWorkload, SQLWorkload


def small_runner(workload=None, **kw):
    wl = workload or KMeansWorkload(
        physical_records=800, lloyd_iterations=2, init_rounds=2, virtual_gb=4.0
    )
    return ChopperRunner(
        wl,
        cluster_factory=lambda: uniform_cluster(n_workers=3, cores=8),
        base_conf=EngineConf(default_parallelism=48),
        **kw,
    )


@pytest.fixture(scope="module")
def trained_runner():
    runner = small_runner()
    runner.profile(p_grid=(16, 48, 96, 160), scales=(0.5, 1.0))
    runner.train()
    return runner


class TestProfile:
    def test_profile_populates_db(self, trained_runner):
        runner = trained_runner
        assert runner.db.has_dag("kmeans")
        assert len(runner.db.observations("kmeans")) > 50

    def test_dag_matches_workload_structure(self, trained_runner):
        dag = trained_runner.db.dag("kmeans")
        # 2 + 2*2 init + iteration pair + final pair signatures collapse
        # repeated stages, so the DAG is compact.
        assert 6 <= len(dag.stages) <= 10
        iter_stages = [s for s in dag.stages if s.repeats > 1]
        assert iter_stages  # init/iteration signatures repeat

    def test_train_before_profile_raises(self):
        with pytest.raises(ModelError):
            small_runner().train()


class TestOptimize:
    def test_config_covers_dag(self, trained_runner):
        config = trained_runner.optimize()
        dag = trained_runner.db.dag("kmeans")
        assert set(config.entries) == set(dag.signatures())

    def test_per_stage_mode(self, trained_runner):
        config = trained_runner.optimize(mode="per-stage")
        assert len(config) > 0
        assert all(e.group is None for e in config.entries.values())

    def test_unknown_mode(self, trained_runner):
        with pytest.raises(ModelError):
            trained_runner.optimize(mode="psychic")

    def test_config_roundtrips_through_file(self, trained_runner, tmp_path):
        config = trained_runner.optimize()
        path = tmp_path / "kmeans.json"
        config.save(path)
        assert len(WorkloadConfig.load(path)) == len(config)


class TestCompare:
    def test_chopper_not_worse(self, trained_runner):
        van, chop = trained_runner.compare()
        assert improvement(van, chop) > -0.05  # at worst break-even

    def test_results_identical(self, trained_runner):
        van, chop = trained_runner.compare()
        assert van.result.value == pytest.approx(chop.result.value)

    def test_outcome_metadata(self, trained_runner):
        van = trained_runner.run_vanilla()
        assert van.label == "vanilla"
        assert van.total_time > 0
        assert van.total_shuffle_bytes > 0
        assert van.record.stage_count == trained_runner.workload.expected_stage_count()

    def test_explicit_config_run(self, trained_runner):
        config = trained_runner.optimize()
        outcome = trained_runner.run_chopper(config=config)
        assert outcome.label == "chopper"
        assert outcome.ctx.conf.copartition_scheduling


class TestSQLPipeline:
    def test_sql_end_to_end(self):
        runner = small_runner(
            workload=SQLWorkload(physical_records=2000, virtual_gb=6.0)
        )
        runner.profile(p_grid=(16, 48, 96), scales=(1.0,))
        runner.train()
        van, chop = runner.compare()
        # Same query answer under both systems.
        assert dict(van.result.value) == pytest.approx(dict(chop.result.value))

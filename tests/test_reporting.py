"""Tests for the plain-text reporting helpers."""

import pytest

from repro.cluster import uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.reporting import (
    comparison_report,
    gantt,
    stage_report,
    utilization_report,
)


@pytest.fixture
def run_ctx():
    ctx = AnalyticsContext(
        uniform_cluster(n_workers=2, cores=4), EngineConf(default_parallelism=8)
    )
    pairs = ctx.parallelize([(i % 5, i) for i in range(400)], 6)
    pairs.reduce_by_key(lambda a, b: a + b, 4).collect()
    return ctx


class TestStageReport:
    def test_contains_all_stages(self, run_ctx):
        text = stage_report(run_ctx.stage_stats, title="demo")
        assert "demo" in text
        assert "shuffle_map" in text and "result" in text
        assert "total stage time" in text

    def test_columns_present(self, run_ctx):
        text = stage_report(run_ctx.stage_stats)
        for col in ("stage", "kind", "P", "time", "shuffle", "skew"):
            assert col in text

    def test_empty_is_safe(self):
        assert "total stage time" in stage_report([])


class TestGantt:
    def test_shows_every_worker(self, run_ctx):
        text = gantt(run_ctx, width=40)
        for worker in run_ctx.cluster.workers:
            assert worker.name in text

    def test_width_respected(self, run_ctx):
        text = gantt(run_ctx, width=30)
        bars = [line for line in text.splitlines() if "|" in line]
        for bar in bars:
            inner = bar.split("|")[1]
            assert len(inner) == 30

    def test_busy_cores_visible(self, run_ctx):
        text = gantt(run_ctx, width=40)
        # Some columns show concurrent tasks (digits).
        assert any(ch.isdigit() for ch in text.split("|", 1)[1])

    def test_no_tasks(self):
        ctx = AnalyticsContext(
            uniform_cluster(n_workers=1, cores=1),
            EngineConf(default_parallelism=2),
        )
        assert gantt(ctx) == "(no tasks)"


class TestUtilizationReport:
    def test_rows_per_node(self, run_ctx):
        text = utilization_report(run_ctx)
        for worker in run_ctx.cluster.workers:
            assert worker.name in text
        assert "cpu" in text and "disk tx/s" in text


class TestComparisonReport:
    def test_side_by_side_with_delta(self, run_ctx):
        ctx2 = AnalyticsContext(
            uniform_cluster(n_workers=2, cores=4),
            EngineConf(default_parallelism=8),
        )
        pairs = ctx2.parallelize([(i % 5, i) for i in range(400)], 3)
        pairs.reduce_by_key(lambda a, b: a + b, 2).collect()
        text = comparison_report(run_ctx.stage_stats, ctx2.stage_stats)
        assert "totals:" in text
        assert "%" in text

    def test_uneven_lengths(self, run_ctx):
        text = comparison_report(run_ctx.stage_stats, run_ctx.stage_stats[:1])
        assert "-" in text

"""Shared fixtures: small clusters and contexts for fast tests."""

from __future__ import annotations

import pytest

from repro.cluster import paper_cluster, uniform_cluster
from repro.engine import AnalyticsContext, EngineConf
from repro.engine.costmodel import CostModelConfig


def quiet_cost() -> CostModelConfig:
    """Cost model without stochastic jitter or dispatch stagger.

    Unit tests compare exact durations and start times; the production
    defaults keep both effects on.
    """
    return CostModelConfig(jitter_sigma=0.0, driver_dispatch_interval=0.0)


@pytest.fixture
def small_cluster():
    """4 homogeneous workers x 4 cores: fast and easy to reason about."""
    return uniform_cluster(n_workers=4, cores=4)


@pytest.fixture
def ctx(small_cluster):
    """A context with small default parallelism for unit tests."""
    return AnalyticsContext(
        small_cluster, EngineConf(default_parallelism=8, cost=quiet_cost())
    )


@pytest.fixture
def paper_ctx():
    """The paper's heterogeneous 6-node testbed."""
    return AnalyticsContext(paper_cluster(), EngineConf(default_parallelism=300))

"""Tests for the cluster model and the paper's testbed factory."""

import pytest

from repro.cluster import NodeSpec, Topology, paper_cluster, uniform_cluster
from repro.cluster.cluster import GBPS
from repro.common.errors import ConfigurationError
from repro.common.units import GB


class TestNodeSpec:
    def test_valid(self):
        node = NodeSpec("x", cores=8, speed=1.0, memory=64 * GB, net_bw=GBPS)
        assert node.cores == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cores=0, speed=1.0, memory=GB, net_bw=GBPS),
            dict(cores=4, speed=0.0, memory=GB, net_bw=GBPS),
            dict(cores=4, speed=1.0, memory=-1.0, net_bw=GBPS),
            dict(cores=4, speed=1.0, memory=GB, net_bw=0.0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            NodeSpec("bad", **kwargs)

    def test_executor_memory_bounded_by_node_memory(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(
                "big-exec", cores=4, speed=1.0, memory=GB,
                net_bw=GBPS, executor_memory=2 * GB,
            )


class TestTopology:
    def _nodes(self):
        return [
            NodeSpec("fast", cores=4, speed=1.0, memory=GB, net_bw=10 * GBPS,
                     executor_memory=GB / 2),
            NodeSpec("slow", cores=4, speed=1.0, memory=GB, net_bw=1 * GBPS,
                     executor_memory=GB / 2),
        ]

    def test_endpoint_limited_bandwidth(self):
        topo = Topology(self._nodes())
        assert topo.bandwidth("fast", "slow") == 1 * GBPS
        assert topo.bandwidth("slow", "fast") == 1 * GBPS

    def test_loopback_is_fast(self):
        topo = Topology(self._nodes())
        assert topo.bandwidth("fast", "fast") > 10 * GBPS

    def test_link_override(self):
        topo = Topology(self._nodes())
        topo.set_link("fast", "slow", 5.0)
        assert topo.bandwidth("slow", "fast") == 5.0

    def test_transfer_time(self):
        topo = Topology(self._nodes())
        assert topo.transfer_time("fast", "slow", 1 * GBPS) == pytest.approx(1.0)
        assert topo.transfer_time("fast", "slow", 0) == 0.0

    def test_duplicate_names_rejected(self):
        nodes = self._nodes() + [
            NodeSpec("fast", cores=1, speed=1.0, memory=GB, net_bw=GBPS,
                     executor_memory=GB / 2)
        ]
        with pytest.raises(ConfigurationError):
            Topology(nodes)

    def test_unknown_node_rejected(self):
        topo = Topology(self._nodes())
        with pytest.raises(ConfigurationError):
            topo.bandwidth("fast", "ghost")


class TestPaperCluster:
    def test_six_nodes_section_2b(self):
        cluster = paper_cluster()
        assert cluster.worker_names == ["A", "B", "C", "D", "E"]
        assert cluster.master.name == "F"

    def test_core_inventory(self):
        cluster = paper_cluster()
        assert cluster.total_cores == 3 * 32 + 2 * 8
        assert cluster.worker("A").cores == 32
        assert cluster.worker("D").cores == 8

    def test_heterogeneous_network(self):
        topo = paper_cluster().topology
        assert topo.bandwidth("A", "B") == pytest.approx(10 * GBPS)
        assert topo.bandwidth("A", "D") == pytest.approx(1 * GBPS)

    def test_speed_ratios(self):
        cluster = paper_cluster()
        assert cluster.worker("A").speed == 1.0
        assert cluster.worker("D").speed == pytest.approx(2.3 / 2.0)
        assert cluster.master.speed == pytest.approx(2.5 / 2.0)

    def test_executor_memory_default_40gb(self):
        cluster = paper_cluster()
        assert cluster.worker("B").executor_memory == pytest.approx(40 * GB)


class TestUniformCluster:
    def test_shape(self):
        cluster = uniform_cluster(n_workers=3, cores=2)
        assert len(cluster.workers) == 3
        assert cluster.total_cores == 6

    def test_needs_workers(self):
        with pytest.raises(ConfigurationError):
            uniform_cluster(n_workers=0)

    def test_unknown_worker(self):
        with pytest.raises(ConfigurationError):
            uniform_cluster().worker("nope")

"""PCA workload: compute- and network-intensive, as the paper describes.

"PCA ... is both computation and network-intensive machine learning
workload that involves multiple iterations to compute a linearly
uncorrelated set of vectors from a set of possibly correlated ones"
(§IV). Stage layout at the defaults (12 stage executions):

* stage 0 — load, parse, cache (count);
* stages 1-2 — column means via ``tree_aggregate`` (shuffle + result);
* stages 3-4 — covariance accumulation via ``tree_aggregate`` of
  centered outer products (the compute-heavy pass);
* stages 5-10 — three distributed power-method iterations for the
  leading principal components (each a shuffled aggregate of x (x . v));
* stage 11 — final explained-variance pass (narrow).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import PCADataGen


class PCAWorkload(Workload):
    """Principal components via distributed covariance + power iterations."""

    name = "pca"

    def __init__(
        self,
        virtual_gb: float = 27.6,
        dim: int = 20,
        components: int = 3,
        power_iterations: int = 3,
        agg_scale: int = 16,
        physical_records: int = 16_000,
        physical_scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.dim = dim
        self.components = components
        self.power_iterations = power_iterations
        self.agg_scale = agg_scale
        records = self.check_physical_records(physical_records)
        self.physical_records = max(64, int(records * physical_scale))

    def expected_stage_count(self) -> int:
        return 1 + 2 + 2 + 2 * self.power_iterations + 1

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = PCADataGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            dim=self.dim,
            seed=self.seed,
        )
        rows = gen.rdd(ctx, ctx.default_parallelism).cache()
        n = rows.count()  # stage 0

        d = self.dim
        mean = (
            self._tree_sum(
                rows, lambda data: data.sum(axis=0), np.zeros(d),
                op_name="pcaMeans",
            )
            / n
        )  # stages 1-2

        def centered_gram(data: np.ndarray) -> np.ndarray:
            centered = data - mean
            return centered.T @ centered

        cov = (
            self._tree_sum(
                rows, centered_gram, np.zeros((d, d)), cost=3.0,
                op_name="pcaCovariance",
            )
            / n
        )  # stages 3-4

        components = []
        deflated = cov.copy()
        for c in range(self.components):
            v = _power_vector(deflated, self.seed + c)
            components.append(v)
            deflated = deflated - np.outer(v, v) * float(v @ deflated @ v)

        # Distributed refinement of the leading component: the paper's
        # "multiple iterations" network-intensive phase (stages 5-10).
        v = components[0]
        for _it in range(self.power_iterations):
            def gram_multiply(data: np.ndarray, v=v) -> np.ndarray:
                centered = data - mean
                return centered.T @ (centered @ v)

            w = self._tree_sum(
                rows, gram_multiply, np.zeros(d), cost=2.0, op_name="pcaPower"
            )
            norm = float(np.linalg.norm(w))
            if norm > 0:
                v = w / norm
        components[0] = v

        explained = self._explained_variance(rows, mean, np.array(components))
        return WorkloadResult(
            value=np.array(components),
            details={"n": n, "mean": mean, "explained": explained},
        )

    # ------------------------------------------------------------------

    def _tree_sum(
        self, rows, block_fn, zero, cost: float = 1.5, op_name: str = "pcaPartials"
    ):
        """Shuffled aggregation of a per-partition numpy reduction.

        Built on map_partitions + reduceByKey rather than tree_aggregate
        so the partials are computed blockwise (vectorized) and the
        compute weight can be declared.
        """
        scale = self.agg_scale

        def partials(split: int, records: List[np.ndarray]) -> List[tuple]:
            if not records:
                return []
            return [(split % scale, block_fn(np.asarray(records)))]

        combined = rows.map_partitions(
            partials, op_name=op_name, cost=cost, out_scale=1.0
        ).reduce_by_key(lambda a, b: a + b, num_partitions=None, numeric_add=True)
        acc = zero.copy()
        for _k, v in combined.collect():
            acc = acc + v
        return acc

    def _explained_variance(self, rows, mean, components: np.ndarray) -> float:
        def partial(_split: int, records: List[np.ndarray]) -> List[tuple]:
            if not records:
                return [(0.0, 0.0)]
            centered = np.asarray(records) - mean
            projected = centered @ components.T
            return [
                (float((projected**2).sum()), float((centered**2).sum()))
            ]

        pairs = rows.map_partitions(
            partial, op_name="pcaVariance", cost=1.5, out_scale=1.0
        ).collect()
        num = sum(p[0] for p in pairs)
        den = sum(p[1] for p in pairs)
        return num / den if den > 0 else 0.0


def _power_vector(matrix: np.ndarray, seed: int, iterations: int = 50) -> np.ndarray:
    rng = np.random.default_rng(seed)
    v = rng.normal(size=matrix.shape[0])
    v /= np.linalg.norm(v)
    for _ in range(iterations):
        w = matrix @ v
        norm = np.linalg.norm(w)
        if norm == 0:
            return v
        v = w / norm
    return v

"""PageRank: the join-heavy iterative workload (co-partitioning showcase).

Each iteration joins the cached adjacency lists with the current ranks —
the textbook case for partitioner alignment: when the links RDD and the
ranks RDD share a partitioner, every iteration's join runs without a
shuffle on the links side.
"""

from __future__ import annotations

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.engine.partitioner import HashPartitioner
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import EdgeDataGen


class PageRankWorkload(Workload):
    """Power-iteration PageRank over a skewed synthetic graph."""

    name = "pagerank"

    def __init__(
        self,
        virtual_gb: float = 15.0,
        n_vertices: int = 1000,
        iterations: int = 3,
        damping: float = 0.85,
        link_partitions: int = 60,
        physical_records: int = 12_000,
        physical_scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.n_vertices = n_vertices
        self.iterations = iterations
        self.damping = damping
        self.link_partitions = link_partitions
        records = self.check_physical_records(physical_records)
        self.physical_records = max(256, int(records * physical_scale))

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = EdgeDataGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            n_vertices=self.n_vertices,
            seed=self.seed,
        )
        edges = gen.rdd(ctx, ctx.default_parallelism)
        partitioner = HashPartitioner(self.link_partitions)
        links = edges.group_by_key(partitioner=partitioner).cache()
        links.count()

        ranks = links.map_values(lambda _targets: 1.0)
        for _it in range(self.iterations):
            contribs = links.join(ranks).flat_map_values(
                lambda pair: [
                    (target, pair[1] / len(pair[0])) for target in pair[0]
                ]
            )
            # flat_map_values emits (src, (target, contrib)); re-key by target.
            by_target = contribs.map_partitions(
                lambda _s, recs: [(t, c) for _src, (t, c) in recs],
                op_name="contribByTarget",
            )
            summed = by_target.reduce_by_key(
                lambda a, b: a + b, partitioner=partitioner, numeric_add=True
            )
            ranks = summed.map_values(
                lambda total: (1.0 - self.damping) + self.damping * total
            )
        top = sorted(ranks.collect(), key=lambda kv: (-kv[1], kv[0]))[:10]
        return WorkloadResult(value=top, details={"vertices": self.n_vertices})

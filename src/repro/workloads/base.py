"""Workload abstraction shared by the drivers and the CHOPPER runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.common.errors import WorkloadError
from repro.engine.context import AnalyticsContext


@dataclass
class WorkloadResult:
    """What a workload run hands back to the harness."""

    value: Any
    details: Dict[str, Any] = field(default_factory=dict)


class Workload:
    """A runnable, scalable benchmark driver.

    Subclasses set ``name`` and ``input_bytes`` (the virtual dataset size
    at ``scale=1.0``) and implement :meth:`run`, which drives jobs on the
    given context. ``scale`` shrinks the *virtual* input (CHOPPER's
    sampled test runs vary the input size); ``physical_scale`` shrinks the
    *physical* sample (test-speed knob, orthogonal to the simulation).
    """

    name: str = "workload"
    input_bytes: float = 0.0

    def __init__(self, physical_scale: float = 1.0, seed: int = 7) -> None:
        if physical_scale <= 0:
            raise WorkloadError("physical_scale must be positive")
        self.physical_scale = physical_scale
        self.seed = seed

    @staticmethod
    def check_physical_records(value: int) -> int:
        """Reject a nonsensical physical sample size up front.

        Subclasses clamp small requests up to a workable floor, which
        would otherwise turn ``physical_records=0`` into a silent
        default instead of an error.
        """
        if value < 1:
            raise WorkloadError(f"physical_records must be >= 1, got {value}")
        return value

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        raise NotImplementedError

    def virtual_bytes(self, scale: float = 1.0) -> float:
        """Virtual input size for a run at ``scale``."""
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        return self.input_bytes * scale

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

"""Synthetic data generators (the SparkBench data-generator stand-ins).

Each generator produces a deterministic *physical* sample — a pure
function of the global record index, organized in fixed micro-blocks —
and declares the *virtual* byte size it represents. The returned
``size_scale`` converts physical record bytes into virtual bytes for the
cost model and shuffle accounting (see DESIGN.md's substitution table).

Because records are generated per micro-block of the global index space
(not per split), **the dataset is identical under any partition count** —
re-splitting a source (CHOPPER's stage-0 tuning) changes granularity,
never data. This is what lets the benchmark harness assert that vanilla
and CHOPPER runs compute identical answers.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from hashlib import blake2b
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.common.errors import WorkloadError
from repro.common.rng import derive_seed, seeded_rng
from repro.common.sizing import estimate_size
from repro.engine.context import AnalyticsContext
from repro.engine.rdd import SourceRDD

BLOCK = 64  # records per generation micro-block

# Generated micro-blocks, keyed by (generator type, generator fields,
# stream label, block id). Blocks are pure functions of that key, and the
# engine re-materializes sources many times per run (and dozens of times
# per profiling sweep), so memoizing them trades memory for a large
# constant factor of generation work. Consumers must treat cached records
# as immutable — every built-in workload already does.
_BLOCK_CACHE: Dict[tuple, List] = {}


def clear_block_cache() -> None:
    """Drop memoized micro-blocks (isolation hook for benchmarks)."""
    _BLOCK_CACHE.clear()


@dataclass
class _GenBase:
    """Shared plumbing: micro-block generation and virtual byte accounting.

    ``parse_cost`` is the compute weight of the scan+parse step relative
    to an in-memory pass — text deserialization dominates load stages, as
    in the paper's stage 0.
    """

    virtual_bytes: float
    physical_records: int
    seed: int = 7
    parse_cost: float = 15.0

    def __post_init__(self) -> None:
        if self.virtual_bytes <= 0 or self.physical_records < 1:
            raise WorkloadError("need positive virtual size and physical records")

    def _split_range(self, split: int, num_splits: int) -> Tuple[int, int]:
        n = self.physical_records
        return (split * n) // num_splits, ((split + 1) * n) // num_splits

    def _block_rng(self, label: str, block: int) -> np.random.Generator:
        return seeded_rng(derive_seed(self.seed, label, block))

    def _block_len(self, block: int) -> int:
        return min(BLOCK, self.physical_records - block * BLOCK)

    def _gather(
        self,
        split: int,
        num_splits: int,
        block_fn: Callable[[int], List],
        label: str,
    ) -> List:
        """Records of one split, assembled from whole/partial micro-blocks.

        ``block_fn(b)`` must deterministically return block ``b``'s
        records (length ``_block_len(b)``); ``label`` names the stream
        (the same label passed to ``_block_rng``) so blocks can be
        memoized across materializations in ``_BLOCK_CACHE``.
        """
        start, end = self._split_range(split, num_splits)
        if end <= start:
            return []
        out: List = []
        # Key on the fields records actually depend on: virtual_bytes and
        # parse_cost only rescale accounting, so e.g. a benchmark's tiny
        # and full variants of the same stream share cached blocks.
        key_base = (
            (type(self).__name__, self.physical_records, self.seed)
            + tuple(astuple(self)[4:])
            + (label,)
        )
        first, last = start // BLOCK, (end - 1) // BLOCK
        for block in range(first, last + 1):
            key = key_base + (block,)
            records = _BLOCK_CACHE.get(key)
            if records is None:
                _BLOCK_CACHE[key] = records = block_fn(block)
            lo = max(start - block * BLOCK, 0)
            hi = min(end - block * BLOCK, len(records))
            out.extend(records[lo:hi])
        return out

    def _size_scale(self, sample_record) -> float:
        per_record = estimate_size(sample_record)
        return self.virtual_bytes / (per_record * self.physical_records)

    def dataset_version(self, label: str) -> str:
        """Content version of one generated stream.

        Hashes exactly the fields record content depends on — the same
        ones the block cache keys on (virtual_bytes and parse_cost only
        rescale accounting) — so the partition-pruning result cache is
        invalidated iff the data actually changes.
        """
        key = (
            (type(self).__name__, self.physical_records, self.seed)
            + tuple(astuple(self)[4:])
            + (label,)
        )
        return blake2b(repr(key).encode("utf-8"), digest_size=8).hexdigest()


@dataclass
class KMeansDataGen(_GenBase):
    """Points drawn around ``n_clusters`` Gaussian centers in ``dim`` dims."""

    dim: int = 10
    n_clusters: int = 20
    spread: float = 0.5

    def centers(self) -> np.ndarray:
        rng = seeded_rng(derive_seed(self.seed, "kmeans-centers"))
        return rng.uniform(-10.0, 10.0, size=(self.n_clusters, self.dim))

    def rdd(self, ctx: AnalyticsContext, num_partitions: int) -> SourceRDD:
        centers = self.centers()

        def block(b: int) -> List[np.ndarray]:
            n = self._block_len(b)
            rng = self._block_rng("kmeans", b)
            assignments = rng.integers(0, self.n_clusters, size=n)
            noise = rng.normal(0.0, self.spread, size=(n, self.dim))
            return list(centers[assignments] + noise)

        scale = self._size_scale(np.zeros(self.dim))
        return ctx.source(
            lambda split, splits: self._gather(split, splits, block, "kmeans"),
            num_partitions, size_scale=scale, op_name="kmeans-points",
            cost=self.parse_cost,
        )


@dataclass
class PCADataGen(_GenBase):
    """Rows with correlated features (a few dominant principal directions)."""

    dim: int = 20
    intrinsic_dim: int = 4

    def _mixing(self) -> np.ndarray:
        rng = seeded_rng(derive_seed(self.seed, "pca-mixing"))
        return rng.normal(0.0, 1.0, size=(self.intrinsic_dim, self.dim))

    def rdd(self, ctx: AnalyticsContext, num_partitions: int) -> SourceRDD:
        mixing = self._mixing()

        def block(b: int) -> List[np.ndarray]:
            n = self._block_len(b)
            rng = self._block_rng("pca", b)
            latent = rng.normal(0.0, 1.0, size=(n, self.intrinsic_dim))
            noise = rng.normal(0.0, 0.05, size=(n, self.dim))
            return list(latent @ mixing + noise)

        scale = self._size_scale(np.zeros(self.dim))
        return ctx.source(
            lambda split, splits: self._gather(split, splits, block, "pca"),
            num_partitions, size_scale=scale, op_name="pca-rows",
            cost=self.parse_cost,
        )


@dataclass
class SQLTableGen(_GenBase):
    """Orders + customers tables with a Zipf-hot customer distribution.

    ``orders`` records: ``(order_id, cust_id, product_id, amount)``;
    ``customers`` records: ``(cust_id, region)``. The Zipf exponent makes
    a few customers account for most orders — the hot-key skew that makes
    partitioner choice matter (§III-B).

    ``orders_layout`` controls how order ids land in partitions — the
    range-vs-hash placement trade-off partition pruning makes visible:

    * ``"range"`` (default): ``order_id`` is the global record index, so
      each split holds one contiguous id range and its zone map is tight
      — an ``order_id < N`` filter prunes most splits.
    * ``"hash"``: ids are scrambled by a stable hash, every split spans
      nearly the full id space, and zone maps can prove nothing.
    """

    n_customers: int = 500
    n_products: int = 100
    n_regions: int = 8
    zipf_a: float = 1.4
    customers_fraction: float = 0.1  # share of virtual bytes in customers
    orders_layout: str = "range"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.orders_layout not in ("range", "hash"):
            raise WorkloadError(
                f"orders_layout must be 'range' or 'hash', "
                f"got {self.orders_layout!r}"
            )

    def orders_rdd(self, ctx: AnalyticsContext, num_partitions: int) -> SourceRDD:
        from repro.engine.partitioner import stable_hash

        n_ids = self.physical_records
        scramble = self.orders_layout == "hash"

        def block(b: int) -> List[Tuple]:
            n = self._block_len(b)
            rng = self._block_rng("orders", b)
            cust = (rng.zipf(self.zipf_a, size=n) - 1) % self.n_customers
            prod = rng.integers(0, self.n_products, size=n)
            amount = np.round(rng.exponential(50.0, size=n), 2)
            base = b * BLOCK
            if scramble:
                ids = [stable_hash(base + i) % n_ids for i in range(n)]
            else:
                ids = [base + i for i in range(n)]
            return [
                (ids[i], int(cust[i]), int(prod[i]), float(amount[i]))
                for i in range(n)
            ]

        scale = (
            self.virtual_bytes
            * (1.0 - self.customers_fraction)
            / (estimate_size((0, 0, 0, 0.0)) * self.physical_records)
        )
        return ctx.source(
            lambda split, splits: self._gather(split, splits, block, "orders"),
            num_partitions, size_scale=scale, op_name="orders",
            cost=self.parse_cost, version=self.dataset_version("orders"),
        )

    def customers_rdd(self, ctx: AnalyticsContext, num_partitions: int) -> SourceRDD:
        n_customers = self.n_customers
        region_seed = derive_seed(self.seed, "regions")

        def generate(split: int, num_splits: int) -> List[Tuple]:
            start = (split * n_customers) // num_splits
            end = ((split + 1) * n_customers) // num_splits
            out = []
            for cust_id in range(start, end):
                region = seeded_rng(derive_seed(region_seed, cust_id)).integers(
                    0, self.n_regions
                )
                out.append((cust_id, f"region-{int(region)}"))
            return out

        scale = (
            self.virtual_bytes
            * self.customers_fraction
            / (estimate_size((0, "region-0")) * n_customers)
        )
        return ctx.source(
            generate, num_partitions, size_scale=scale, op_name="customers",
            cost=self.parse_cost, version=self.dataset_version("customers"),
        )


@dataclass
class LabeledDataGen(_GenBase):
    """Labeled points for binary classification (logistic regression).

    Records are ``(features: np.ndarray, label: int)`` drawn from a
    logistic model with a fixed ground-truth weight vector, so the
    learned weights can be checked against the truth.
    """

    dim: int = 10
    noise: float = 0.5

    def true_weights(self) -> np.ndarray:
        rng = seeded_rng(derive_seed(self.seed, "lr-weights"))
        w = rng.normal(0.0, 1.0, size=self.dim)
        return w / np.linalg.norm(w)

    def rdd(self, ctx: AnalyticsContext, num_partitions: int) -> SourceRDD:
        weights = self.true_weights()

        def block(b: int) -> List[Tuple[np.ndarray, int]]:
            n = self._block_len(b)
            rng = self._block_rng("lr", b)
            x = rng.normal(0.0, 1.0, size=(n, self.dim))
            logits = x @ weights + rng.normal(0.0, self.noise, size=n)
            y = (logits > 0).astype(int)
            return [(x[i], int(y[i])) for i in range(n)]

        scale = self._size_scale((np.zeros(self.dim), 0))
        return ctx.source(
            lambda split, splits: self._gather(split, splits, block, "lr"),
            num_partitions, size_scale=scale, op_name="labeled-points",
            cost=self.parse_cost,
        )


@dataclass
class TextDataGen(_GenBase):
    """Lines of words with a Zipf vocabulary (WordCount input)."""

    vocabulary: int = 2000
    words_per_line: int = 8
    # Zipf exponent of the word-frequency distribution. Values close to
    # 1 are near-uniform; larger values concentrate mass on the top
    # ranks (the `--skew` CLI knob, for exercising AQE skew handling).
    zipf_a: float = 1.3

    def rdd(self, ctx: AnalyticsContext, num_partitions: int) -> SourceRDD:
        def block(b: int) -> List[str]:
            n = self._block_len(b)
            rng = self._block_rng("text", b)
            ranks = (rng.zipf(self.zipf_a, size=(n, self.words_per_line)) - 1) % self.vocabulary
            return [" ".join(f"w{w}" for w in row) for row in ranks]

        sample = " ".join(["w1000"] * self.words_per_line)
        scale = self._size_scale(sample)
        return ctx.source(
            lambda split, splits: self._gather(split, splits, block, "text"),
            num_partitions, size_scale=scale, op_name="text-lines",
            cost=self.parse_cost,
        )


@dataclass
class EdgeDataGen(_GenBase):
    """Directed edges of a preferential-attachment-ish graph (PageRank)."""

    n_vertices: int = 1000

    def rdd(self, ctx: AnalyticsContext, num_partitions: int) -> SourceRDD:
        n_vertices = self.n_vertices

        def block(b: int) -> List[Tuple[int, int]]:
            n = self._block_len(b)
            rng = self._block_rng("edges", b)
            src = rng.integers(0, n_vertices, size=n)
            # Popular destinations: quadratic skew toward low vertex ids.
            dst = (rng.random(size=n) ** 2 * n_vertices).astype(int)
            return [(int(s), int(d)) for s, d in zip(src, dst) if s != d]

        scale = self._size_scale((0, 0))
        return ctx.source(
            lambda split, splits: self._gather(split, splits, block, "edges"),
            num_partitions, size_scale=scale, op_name="edges",
            cost=self.parse_cost,
        )

"""WordCount: the classic two-stage aggregation (examples and tests)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import TextDataGen


class WordCountWorkload(Workload):
    """Count word frequencies over Zipf-distributed text."""

    name = "wordcount"

    def __init__(
        self,
        virtual_gb: float = 10.0,
        vocabulary: int = 2000,
        top_n: int = 20,
        physical_records: int = 8_000,
        physical_scale: float = 1.0,
        seed: int = 7,
        skew: Optional[float] = None,
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.vocabulary = vocabulary
        self.top_n = top_n
        # Zipf exponent override for the word distribution (None = the
        # generator's default 1.3). Larger = heavier key skew.
        self.skew = skew
        records = self.check_physical_records(physical_records)
        self.physical_records = max(64, int(records * physical_scale))

    def _datagen(self, scale: float) -> TextDataGen:
        kwargs = {}
        if self.skew is not None:
            kwargs["zipf_a"] = self.skew
        return TextDataGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            vocabulary=self.vocabulary,
            seed=self.seed,
            **kwargs,
        )

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = self._datagen(scale)
        lines = gen.rdd(ctx, ctx.default_parallelism)

        def tokenize(_split: int, records: List[str]) -> List[tuple]:
            return [(word, 1) for line in records for word in line.split()]

        counts = lines.map_partitions(
            tokenize, op_name="tokenize", cost=1.3
        ).reduce_by_key(lambda a, b: a + b, numeric_add=True)
        top = sorted(counts.collect(), key=lambda kv: (-kv[1], kv[0]))[: self.top_n]
        return WorkloadResult(value=top, details={"distinct": counts.count()})


class ShuffleWordCountWorkload(WordCountWorkload):
    """Shuffle-heavy WordCount: raw pairs cross the wire, not combiners.

    Disabling the map-side combine ships every ``(word, weight)`` record
    through the shuffle, so runtime is dominated by bucketing, block
    transfer and the reduce-side fold — the path the columnar record
    format accelerates. The narrow pre-shuffle chain (filter short words,
    lift counts to float weights) is a fusible ``filter``/``mapValues``
    pair with vectorized kernels, exercising operator fusion on both the
    loop-fused and columnar paths.
    """

    name = "wordcount-shuffle"

    def __init__(self, *args, min_word_len: int = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.min_word_len = min_word_len

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = self._datagen(scale)
        lines = gen.rdd(ctx, ctx.default_parallelism)

        def tokenize(_split: int, records: List[str]) -> List[tuple]:
            return [(word, 1) for line in records for word in line.split()]

        min_len = self.min_word_len
        weighted = (
            lines.map_partitions(tokenize, op_name="tokenize", cost=1.3)
            .filter(
                lambda kv: len(kv[0]) >= min_len,
                vec=lambda keys, values: np.char.str_len(keys) >= min_len,
            )
            .map_values(float, vec=lambda values: values.astype(np.float64))
        )
        counts = weighted.reduce_by_key(
            lambda a, b: a + b, numeric_add=True, map_side_combine=False
        )
        top = sorted(counts.collect(), key=lambda kv: (-kv[1], kv[0]))[: self.top_n]
        return WorkloadResult(value=top, details={"distinct": counts.count()})

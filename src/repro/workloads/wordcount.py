"""WordCount: the classic two-stage aggregation (examples and tests)."""

from __future__ import annotations

from typing import List

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import TextDataGen


class WordCountWorkload(Workload):
    """Count word frequencies over Zipf-distributed text."""

    name = "wordcount"

    def __init__(
        self,
        virtual_gb: float = 10.0,
        vocabulary: int = 2000,
        top_n: int = 20,
        physical_records: int = 8_000,
        physical_scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.vocabulary = vocabulary
        self.top_n = top_n
        records = self.check_physical_records(physical_records)
        self.physical_records = max(64, int(records * physical_scale))

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = TextDataGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            vocabulary=self.vocabulary,
            seed=self.seed,
        )
        lines = gen.rdd(ctx, ctx.default_parallelism)

        def tokenize(_split: int, records: List[str]) -> List[tuple]:
            return [(word, 1) for line in records for word in line.split()]

        counts = lines.map_partitions(
            tokenize, op_name="tokenize", cost=1.3
        ).reduce_by_key(lambda a, b: a + b, numeric_add=True)
        top = sorted(counts.collect(), key=lambda kv: (-kv[1], kv[0]))[: self.top_n]
        return WorkloadResult(value=top, details={"distinct": counts.count()})

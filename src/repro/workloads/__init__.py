"""SparkBench-style workloads: KMeans, PCA, SQL, plus extras.

Each workload drives the engine the way the paper's evaluation does
(§IV): KMeans with 20 stages and shuffles at stages 12-17, PCA with
compute- and network-intensive aggregation stages, SQL with
scan/aggregate/join/sort. Data generators produce a small physical sample
carrying the paper's virtual input sizes (Table I: KMeans 21.8 GB, PCA
27.6 GB, SQL 34.5 GB).
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import (
    KMeansDataGen,
    LabeledDataGen,
    PCADataGen,
    SQLTableGen,
    TextDataGen,
    EdgeDataGen,
)
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.logistic import LogisticRegressionWorkload
from repro.workloads.pca import PCAWorkload
from repro.workloads.sql import SQLWorkload
from repro.workloads.wordcount import ShuffleWordCountWorkload, WordCountWorkload
from repro.workloads.pagerank import PageRankWorkload

__all__ = [
    "Workload",
    "WorkloadResult",
    "KMeansDataGen",
    "LabeledDataGen",
    "PCADataGen",
    "SQLTableGen",
    "TextDataGen",
    "EdgeDataGen",
    "KMeansWorkload",
    "LogisticRegressionWorkload",
    "PCAWorkload",
    "SQLWorkload",
    "ShuffleWordCountWorkload",
    "WordCountWorkload",
    "PageRankWorkload",
]

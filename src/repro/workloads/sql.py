"""SQL workload: scan, aggregate, join, aggregate, sort (§IV).

"SQL is a workload that performs typical query operations that count,
aggregate, and join the data sets ... compute intensive for count and
aggregation operations and shuffle intensive in the join phase."

The query, in SQL terms::

    SELECT c.region, SUM(o.amount) AS revenue
    FROM   (SELECT cust_id, SUM(amount) AS amount
            FROM orders GROUP BY cust_id) o
    JOIN   customers c ON o.cust_id = c.cust_id
    GROUP BY c.region
    ORDER BY c.region

Stage layout under vanilla defaults (6 stage executions; the paper's run
shows ids 0-4 — their query shape differs slightly, ours adds the
sort-sampling pass):

* stage 0 — scan+project orders, write the per-customer aggregation
  shuffle;
* stage 1 — scan customers, write the join-side shuffle;
* stage 2 — fused [aggregate orders -> cogroup -> join -> project],
  writing the region-aggregation shuffle (the paper's "sub-stages
  combined for shuffle write");
* stage 3 — region reduce + sort-sample pass;
* stages 4-5 — range repartition for the sort and the final result.

The orders table's Zipf-hot customer keys are what make the hash/range
partitioner choice matter for the join.
"""

from __future__ import annotations

from typing import Optional

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import SQLTableGen


class SQLWorkload(Workload):
    """Aggregate-join-aggregate-sort query over generated tables."""

    name = "sql"

    def __init__(
        self,
        virtual_gb: float = 34.5,
        n_customers: int = 500,
        n_regions: int = 8,
        physical_records: int = 30_000,
        physical_scale: float = 1.0,
        seed: int = 7,
        fixed_agg_partitions: Optional[int] = None,
        sort_output: bool = True,
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.n_customers = n_customers
        self.n_regions = n_regions
        records = self.check_physical_records(physical_records)
        self.physical_records = max(256, int(records * physical_scale))
        # When set, the driver pins the per-customer aggregation to an
        # explicit partition count (a user-fixed scheme) — the setup for
        # CHOPPER's gamma-gated repartition insertion (§III-C).
        self.fixed_agg_partitions = fixed_agg_partitions
        self.sort_output = sort_output

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = SQLTableGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            n_customers=self.n_customers,
            n_regions=self.n_regions,
            seed=self.seed,
        )
        orders = gen.orders_rdd(ctx, ctx.default_parallelism)
        customers = gen.customers_rdd(ctx, ctx.default_parallelism)

        by_customer = orders.map_partitions(
            lambda _s, recs: [(r[1], r[3]) for r in recs],
            op_name="projectOrders",
            cost=1.2,
        )
        per_customer = by_customer.reduce_by_key(
            lambda a, b: a + b,
            num_partitions=self.fixed_agg_partitions,
            numeric_add=True,
        )

        joined = per_customer.join(customers)
        by_region = joined.map_partitions(
            lambda _s, recs: [(region, amount) for _c, (amount, region) in recs],
            op_name="projectRegion",
            cost=1.1,
        )
        revenue = by_region.reduce_by_key(lambda a, b: a + b, numeric_add=True)

        if self.sort_output:
            result = revenue.sort_by_key().collect()
        else:
            result = sorted(revenue.collect())
        return WorkloadResult(
            value=result,
            details={"regions": len(result)},
        )

"""SQL workload: scan, aggregate, join, aggregate, sort (§IV).

"SQL is a workload that performs typical query operations that count,
aggregate, and join the data sets ... compute intensive for count and
aggregation operations and shuffle intensive in the join phase."

The query, in SQL terms::

    SELECT c.region, SUM(o.amount) AS revenue
    FROM   (SELECT cust_id, SUM(amount) AS amount
            FROM orders GROUP BY cust_id) o
    JOIN   customers c ON o.cust_id = c.cust_id
    GROUP BY c.region
    ORDER BY c.region

Since PR 7 the query goes through the relational layer
(:meth:`build_query` returns the :class:`~repro.relational.table.Table`),
so the logical-plan rewrite batches run before lowering. The driver
hand-tunes a ``repartition(default_parallelism)`` onto the customers
(build) side of the join — a common "spread the small table" reflex —
which the optimizer recognizes as pure cost (the join reshuffles anyway)
and elides, so the optimized plan executes strictly fewer stages than
``optimize=False`` while collecting bit-identical rows.

Stage layout with the optimizer on (6 stage executions across the
sort-sampling and collect jobs; the paper's run shows ids 0-4 — their
query shape differs slightly, ours adds the sort-sampling pass):

* stage 0 — scan customers, write its join-side shuffle;
* stage 1 — scan+project orders with map-side combine, write the
  per-customer aggregation shuffle;
* stage 2 — fused [per-customer reduce -> cogroup -> join -> flatten],
  writing the region-aggregation shuffle (the paper's "sub-stages
  combined for shuffle write"; the reduce fuses in because the
  aggregation's hash partitioner on ``cust_id`` aligns with the join's);
* stage 3 — region reduce feeding the sort's sampling job;
* stage 4 — region reduce again, writing the range-repartition shuffle;
* stage 5 — the final sorted result.

Unoptimized it is 7: the customers scan writes a round-robin exchange
and an identity pass-through stage rewrites the join-side shuffle. The
orders table's Zipf-hot customer keys are what make the hash/range
partitioner choice matter for the join.
"""

from __future__ import annotations

from typing import Optional

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.relational import Table, col, sum_
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import SQLTableGen

ORDERS_SCHEMA = ["order_id", "cust_id", "product_id", "amount"]
CUSTOMERS_SCHEMA = ["cust_id", "region"]


class SQLWorkload(Workload):
    """Aggregate-join-aggregate-sort query over generated tables."""

    name = "sql"

    def __init__(
        self,
        virtual_gb: float = 34.5,
        n_customers: int = 500,
        n_regions: int = 8,
        physical_records: int = 30_000,
        physical_scale: float = 1.0,
        seed: int = 7,
        fixed_agg_partitions: Optional[int] = None,
        sort_output: bool = True,
        optimize: Optional[bool] = None,
        skew: Optional[float] = None,
        max_order: Optional[int] = None,
        orders_layout: str = "range",
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.n_customers = n_customers
        self.n_regions = n_regions
        # Zipf exponent override for the orders' customer-key
        # distribution (None = the generator's default 1.4).
        self.skew = skew
        records = self.check_physical_records(physical_records)
        self.physical_records = max(256, int(records * physical_scale))
        # When set, the driver pins the per-customer aggregation to an
        # explicit partition count (a user-fixed scheme) — the setup for
        # CHOPPER's gamma-gated repartition insertion (§III-C).
        self.fixed_agg_partitions = fixed_agg_partitions
        self.sort_output = sort_output
        # None defers to EngineConf.logical_optimizer; False forces the
        # raw (unoptimized) lowering — results are bit-identical.
        self.optimize = optimize
        # When set, the query filters orders to order_id < max_order — a
        # selective scan predicate zone maps can prune (`--max-order`).
        self.max_order = max_order
        # Placement of order ids across partitions: "range" (contiguous,
        # prunable) or "hash" (scrambled, unprunable). See SQLTableGen.
        self.orders_layout = orders_layout

    def build_query(self, ctx: AnalyticsContext, scale: float = 1.0) -> Table:
        """The query as a relational plan (what ``repro explain`` shows)."""
        gen_kwargs = {}
        if self.skew is not None:
            gen_kwargs["zipf_a"] = self.skew
        gen = SQLTableGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            n_customers=self.n_customers,
            n_regions=self.n_regions,
            seed=self.seed,
            orders_layout=self.orders_layout,
            **gen_kwargs,
        )
        orders = Table.from_rdd(
            gen.orders_rdd(ctx, ctx.default_parallelism),
            ORDERS_SCHEMA,
            optimize=self.optimize,
        )
        if self.max_order is not None:
            orders = orders.where(col("order_id") < self.max_order)
        customers = Table.from_rdd(
            gen.customers_rdd(ctx, ctx.default_parallelism),
            CUSTOMERS_SCHEMA,
            optimize=self.optimize,
        )
        per_customer = (
            orders.select("cust_id", "amount")
            .group_by("cust_id")
            .agg(
                sum_(col("amount")).alias("amount"),
                num_partitions=self.fixed_agg_partitions,
            )
        )
        # The hand-tuned spread of the build side the optimizer elides.
        joined = per_customer.join(
            customers.repartition(ctx.default_parallelism), on="cust_id"
        )
        revenue = joined.group_by("region").agg(
            sum_(col("amount")).alias("revenue")
        )
        if self.sort_output:
            return revenue.order_by("region")
        return revenue

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        query = self.build_query(ctx, scale)
        if self.sort_output:
            result = query.collect()
        else:
            result = sorted(query.collect())
        return WorkloadResult(
            value=result,
            details={"regions": len(result)},
        )

"""KMeans workload, structured like the paper's SparkBench run (§II-B, §IV).

Stage layout (20 stage executions at the defaults, matching the paper's
"KMeans has 20 stages in total ... only stages 12-17 involve data
shuffle" and Table III's stage ids):

* stage 0 — load, parse, and cache the points (count action);
* stage 1 — initial center sample (takeSample pass);
* stages 2-11 — five init refinement rounds, each a cost pass
  (``initCost``) plus a candidate pass (``initSample``), all narrow;
* stages 12-17 — three Lloyd iterations, each a map-side-combined
  ``reduceByKey`` (shuffle-map stage) plus its result stage;
* stages 18-19 — the final cluster-size aggregation (one more shuffle).

The Lloyd iterations broadcast the current centers, so every iteration's
lineage is structurally identical — they share one stage signature, which
is exactly what lets CHOPPER assign stages 12-17 a single scheme.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import KMeansDataGen


class KMeansWorkload(Workload):
    """Lloyd's KMeans with a kmeans||-flavored initialization."""

    name = "kmeans"

    def __init__(
        self,
        virtual_gb: float = 21.8,
        k: int = 20,
        dim: int = 10,
        lloyd_iterations: int = 3,
        init_rounds: int = 5,
        physical_records: int = 20_000,
        physical_scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.k = k
        self.dim = dim
        self.lloyd_iterations = lloyd_iterations
        self.init_rounds = init_rounds
        records = self.check_physical_records(physical_records)
        self.physical_records = max(64, int(records * physical_scale))

    def expected_stage_count(self) -> int:
        return 2 + 2 * self.init_rounds + 2 * self.lloyd_iterations + 2

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = KMeansDataGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            dim=self.dim,
            n_clusters=self.k,
            seed=self.seed,
        )
        points = gen.rdd(ctx, ctx.default_parallelism).cache()

        n = points.count()  # stage 0: load + cache
        # Stage 1: the initial-center sampling pass. Runs through its own
        # named op so its stage signature differs from stage 0's — stage 0
        # pays the parse+cache cost, this pass reads the cache, and CHOPPER
        # must not train one model on both behaviours.
        sample_view = points.map_partitions(
            lambda _s, recs: recs, op_name="initSeed"
        )
        centers = np.array(sample_view.take_sample(self.k, seed=self.seed))

        for _round in range(self.init_rounds):  # stages 2-11
            cost = self._clustering_cost(ctx, points, centers)
            centers = self._refine_worst_center(ctx, points, centers)

        for _it in range(self.lloyd_iterations):  # stages 12-17
            centers = self._lloyd_step(ctx, points, centers)

        sizes = self._cluster_sizes(ctx, points, centers)  # stages 18-19
        cost = sum(sizes.values())  # total membership, sanity value
        return WorkloadResult(
            value=centers,
            details={"n": n, "sizes": sizes, "k": self.k, "members": cost},
        )

    # ------------------------------------------------------------------

    def _clustering_cost(self, ctx, points, centers: np.ndarray) -> float:
        bc = ctx.broadcast(centers)

        def partial_cost(_split: int, records: List[np.ndarray]) -> List[float]:
            if not records:
                return [0.0]
            data = np.asarray(records)
            return [float(_min_dists(data, bc.value).sum())]

        return points.map_partitions(
            partial_cost, op_name="initCost", cost=1.4, out_scale=1.0
        ).sum()

    def _refine_worst_center(self, ctx, points, centers: np.ndarray) -> np.ndarray:
        """Replace the least-useful center with the farthest point seen."""
        bc = ctx.broadcast(centers)

        def farthest(_split: int, records: List[np.ndarray]) -> List[Tuple[float, tuple]]:
            if not records:
                return []
            data = np.asarray(records)
            dists = _min_dists(data, bc.value)
            i = int(np.argmax(dists))
            return [(float(dists[i]), tuple(float(x) for x in data[i]))]

        candidates = points.map_partitions(
            farthest, op_name="initSample", cost=1.4, out_scale=1.0
        )
        best = candidates.reduce(lambda a, b: a if a[0] >= b[0] else b)
        new_centers = centers.copy()
        # Replace the center crowding its nearest neighbour the most.
        diff = centers[:, None, :] - centers[None, :, :]
        pairwise = np.sqrt((diff**2).sum(axis=2))
        np.fill_diagonal(pairwise, np.inf)
        worst = int(pairwise.min(axis=1).argmin())
        new_centers[worst] = np.array(best[1])
        return new_centers

    def _lloyd_step(self, ctx, points, centers: np.ndarray) -> np.ndarray:
        bc = ctx.broadcast(centers)

        def assign(_split: int, records: List[np.ndarray]) -> List[tuple]:
            if not records:
                return []
            data = np.asarray(records)
            cids = _closest(data, bc.value)
            return [
                (int(cid), (vec, 1)) for cid, vec in zip(cids, records)
            ]

        def merge(a: tuple, b: tuple) -> tuple:
            return (a[0] + b[0], a[1] + b[1])

        assigned = points.map_partitions(assign, op_name="assign", cost=2.0)
        # merge is elementwise + over (vec, count) tuples: numeric_add.
        totals = assigned.reduce_by_key(merge, numeric_add=True).collect_as_map()
        new_centers = centers.copy()
        for cid, (vec_sum, count) in totals.items():
            if count > 0:
                new_centers[cid] = vec_sum / count
        return new_centers

    def _cluster_sizes(self, ctx, points, centers: np.ndarray) -> dict:
        bc = ctx.broadcast(centers)

        def sizes(_split: int, records: List[np.ndarray]) -> List[tuple]:
            if not records:
                return []
            data = np.asarray(records)
            return [(int(cid), 1) for cid in _closest(data, bc.value)]

        return (
            points.map_partitions(sizes, op_name="clusterSizes", cost=1.6)
            .reduce_by_key(lambda a, b: a + b, numeric_add=True)
            .collect_as_map()
        )


def _closest(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Index of the nearest center for each row (vectorized)."""
    # (n, k) squared distances via the expansion trick — no copies of data.
    d2 = (
        (data**2).sum(axis=1)[:, None]
        - 2.0 * data @ centers.T
        + (centers**2).sum(axis=1)[None, :]
    )
    return d2.argmin(axis=1)


def _min_dists(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    d2 = (
        (data**2).sum(axis=1)[:, None]
        - 2.0 * data @ centers.T
        + (centers**2).sum(axis=1)[None, :]
    )
    return np.sqrt(np.maximum(d2.min(axis=1), 0.0))

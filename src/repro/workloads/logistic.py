"""Logistic regression: the gradient-descent workload from the paper's intro.

§IV motivates PCA as a preprocessing step "in various data mining
algorithms such as SVM and logistic regression"; this driver completes
the picture: batch gradient descent over cached labeled points, one
shuffled gradient aggregation per iteration (broadcast weights, combined
partials) — the same iterative stage structure CHOPPER tunes in KMeans.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.units import GB
from repro.engine.context import AnalyticsContext
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.datagen import LabeledDataGen


class LogisticRegressionWorkload(Workload):
    """Batch gradient descent for binary logistic regression."""

    name = "logistic"

    def __init__(
        self,
        virtual_gb: float = 12.0,
        dim: int = 10,
        iterations: int = 5,
        learning_rate: float = 1.0,
        agg_scale: int = 16,
        physical_records: int = 12_000,
        physical_scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        super().__init__(physical_scale=physical_scale, seed=seed)
        self.input_bytes = virtual_gb * GB
        self.dim = dim
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.agg_scale = agg_scale
        records = self.check_physical_records(physical_records)
        self.physical_records = max(128, int(records * physical_scale))

    def expected_stage_count(self) -> int:
        return 1 + 2 * self.iterations + 1

    def run(self, ctx: AnalyticsContext, scale: float = 1.0) -> WorkloadResult:
        gen = LabeledDataGen(
            virtual_bytes=self.virtual_bytes(scale),
            physical_records=self.physical_records,
            dim=self.dim,
            seed=self.seed,
        )
        points = gen.rdd(ctx, ctx.default_parallelism).cache()
        n = points.count()  # stage 0: load + cache

        weights = np.zeros(self.dim)
        agg_scale = self.agg_scale
        for _it in range(self.iterations):  # 2 stages per iteration
            bc = ctx.broadcast(weights)

            def gradient(split: int, records: List) -> List:
                if not records:
                    return []
                x = np.asarray([r[0] for r in records])
                y = np.asarray([r[1] for r in records], dtype=float)
                preds = _sigmoid(x @ bc.value)
                grad = x.T @ (preds - y)
                return [(split % agg_scale, grad)]

            partials = points.map_partitions(
                gradient, op_name="lrGradient", cost=2.0, out_scale=1.0
            )
            total = np.zeros(self.dim)
            for _k, g in partials.reduce_by_key(
                lambda a, b: a + b, numeric_add=True
            ).collect():
                total = total + g
            weights = weights - self.learning_rate * total / n

        accuracy = self._accuracy(points, weights, n)  # final narrow stage
        return WorkloadResult(
            value=weights, details={"n": n, "accuracy": accuracy}
        )

    def _accuracy(self, points, weights: np.ndarray, n: int) -> float:
        def correct(_split: int, records: List) -> List:
            if not records:
                return [0]
            x = np.asarray([r[0] for r in records])
            y = np.asarray([r[1] for r in records])
            preds = (_sigmoid(x @ weights) > 0.5).astype(int)
            return [int((preds == y).sum())]

        hits = points.map_partitions(
            correct, op_name="lrAccuracy", cost=1.5, out_scale=1.0
        ).sum()
        return hits / n if n else 0.0


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

"""Command-line interface: ``python -m repro.cli <command>``.

Sub-commands:

* ``run`` — execute one workload (vanilla or CHOPPER) and print the
  per-stage table;
* ``compare`` — the full profile → train → optimize → vanilla-vs-CHOPPER
  loop, printing the Fig. 7-style summary;
* ``profile`` — run the test-run sweep and save the workload DB to JSON;
* ``optimize`` — load a workload DB and emit the workload config file;
* ``workloads`` — list the available workloads and their defaults.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Dict, List, Optional, Type

from dataclasses import replace

from repro.chopper import ChopperAdvisor, ChopperRunner, WorkloadConfig, improvement
from repro.chopper.workload_db import WorkloadDB
from repro.cluster import paper_cluster
from repro.common.errors import (
    ConfigurationError,
    LedgerError,
    ReproError,
    WorkloadError,
)
from repro.common.units import fmt_bytes, fmt_duration, parse_bytes
from repro.engine import AnalyticsContext, EngineConf
from repro.obs import (
    EventLog,
    LedgerCollector,
    MetricsRegistry,
    ResourceProfiler,
    RunLedger,
    Tracer,
    profiling_enabled,
)
from repro.workloads import (
    KMeansWorkload,
    LogisticRegressionWorkload,
    PCAWorkload,
    PageRankWorkload,
    ShuffleWordCountWorkload,
    SQLWorkload,
    Workload,
    WordCountWorkload,
)

WORKLOADS: Dict[str, Type[Workload]] = {
    "kmeans": KMeansWorkload,
    "pca": PCAWorkload,
    "sql": SQLWorkload,
    "wordcount": WordCountWorkload,
    "wordcount-shuffle": ShuffleWordCountWorkload,
    "logistic": LogisticRegressionWorkload,
    "pagerank": PageRankWorkload,
}


def build_workload(args: argparse.Namespace) -> Workload:
    cls = WORKLOADS.get(args.workload)
    if cls is None:
        raise WorkloadError(
            f"unknown workload {args.workload!r}"
            f" (choose from: {', '.join(sorted(WORKLOADS))})"
        )
    kwargs = {}
    if args.virtual_gb is not None:
        kwargs["virtual_gb"] = args.virtual_gb
    if args.physical_records is not None:
        if args.physical_records < 1:
            raise WorkloadError(
                f"--physical-records must be >= 1, got {args.physical_records}"
            )
        kwargs["physical_records"] = args.physical_records
    if getattr(args, "skew", None) is not None:
        if "skew" not in inspect.signature(cls.__init__).parameters:
            raise WorkloadError(
                f"--skew is not supported by workload {args.workload!r}"
            )
        kwargs["skew"] = args.skew
    if getattr(args, "max_order", None) is not None:
        if "max_order" not in inspect.signature(cls.__init__).parameters:
            raise WorkloadError(
                f"--max-order is not supported by workload {args.workload!r}"
            )
        kwargs["max_order"] = args.max_order
    return cls(**kwargs)


def chaos_conf_kwargs(args: argparse.Namespace) -> dict:
    """Translate ``--chaos-*`` flags into EngineConf keyword arguments."""
    kwargs: dict = {}
    for spec in getattr(args, "chaos_kill", None) or []:
        node, sep, when = spec.partition("=")
        if not sep or not node:
            raise ConfigurationError(
                f"--chaos-kill expects NODE=TIME, got {spec!r}"
            )
        try:
            at = float(when)
        except ValueError:
            raise ConfigurationError(
                f"--chaos-kill time must be a number, got {when!r}"
            ) from None
        kwargs.setdefault("node_failure_times", {})[node] = at
    if getattr(args, "chaos_rate", None):
        kwargs["node_failure_rate"] = args.chaos_rate
    if getattr(args, "chaos_recovery", None):
        kwargs["node_recovery_delay"] = args.chaos_recovery
    return kwargs


def perf_conf_kwargs(args: argparse.Namespace) -> dict:
    """Translate the perf flags into EngineConf keyword arguments.

    Invalid values are EngineConf's to reject (ConfigurationError), so
    every entry point shares the one-line ``error: ...`` diagnostic.
    """
    kwargs: dict = {}
    if getattr(args, "record_format", None) is not None:
        kwargs["record_format"] = args.record_format
    if getattr(args, "fuse", False):
        kwargs["operator_fusion"] = True
    if getattr(args, "memory_budget", None) is not None:
        try:
            kwargs["memory_budget"] = parse_bytes(args.memory_budget)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
    if getattr(args, "spill_dir", None) is not None:
        kwargs["spill_dir"] = args.spill_dir
    if getattr(args, "no_optimize", False):
        kwargs["logical_optimizer"] = False
    if getattr(args, "aqe", False):
        kwargs["adaptive_execution"] = True
    if getattr(args, "aqe_target", None) is not None:
        try:
            kwargs["aqe_target_partition_bytes"] = float(
                parse_bytes(args.aqe_target)
            )
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
    if getattr(args, "no_prune", False):
        kwargs["partition_pruning"] = False
    if getattr(args, "cache", None) is not None:
        kwargs["result_cache"] = args.cache
    if getattr(args, "cache_path", None) is not None:
        kwargs["result_cache_path"] = args.cache_path
    return kwargs


def make_runner(args: argparse.Namespace) -> ChopperRunner:
    runner = ChopperRunner(
        build_workload(args),
        base_conf=EngineConf(
            default_parallelism=args.parallelism, **perf_conf_kwargs(args)
        ),
    )
    if getattr(args, "trace", None):
        runner.tracer = Tracer()
    if getattr(args, "metrics", None):
        runner.metrics_registry = MetricsRegistry()
    if getattr(args, "ledger", None):
        runner.ledger = RunLedger(args.ledger)
    if getattr(args, "log", None):
        runner.event_log = EventLog()
    if profiling_enabled(getattr(args, "profile", False)):
        runner.profiler = ResourceProfiler()
    return runner


def print_profile_summary(out, rolled: dict) -> None:
    """One-line host-resource summary of a profiled run/sweep."""
    host = rolled["host"]
    gc_info = host["gc"]
    out.write(
        f"profile: wall {host['wall_s']:.3f}s"
        f" cpu {host['cpu_s']:.3f}s"
        f" alloc peak {fmt_bytes(host['tracemalloc_peak_bytes'])}"
        f" gc {gc_info['collections']}x"
        f" ({gc_info['pause_s'] * 1e3:.1f}ms paused)\n"
    )


def print_stage_table(out, observations) -> None:
    out.write(
        f"{'stage':>5s} {'kind':>12s} {'P':>6s} {'time':>10s} {'shuffle':>10s}\n"
    )
    for obs in observations:
        out.write(
            f"{obs.order:5d} {obs.kind:>12s} {obs.num_partitions:6d}"
            f" {fmt_duration(obs.duration):>10s}"
            f" {fmt_bytes(obs.shuffle_bytes):>10s}\n"
        )


# ----------------------------------------------------------------------
# Sub-commands
# ----------------------------------------------------------------------


def cmd_workloads(args: argparse.Namespace, out) -> int:
    out.write(f"{'name':>10s} {'default input':>14s}\n")
    for name, cls in WORKLOADS.items():
        workload = cls()
        out.write(f"{name:>10s} {fmt_bytes(workload.input_bytes):>14s}\n")
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:
    import dataclasses

    workload = build_workload(args)
    metrics = MetricsRegistry() if args.metrics else None
    event_log = EventLog() if args.log else None
    profiler = None
    if profiling_enabled(args.profile):
        profiler = ResourceProfiler()
        profiler.start()
    ctx = AnalyticsContext(
        paper_cluster(),
        EngineConf(
            default_parallelism=args.parallelism,
            **chaos_conf_kwargs(args),
            **perf_conf_kwargs(args),
        ),
        metrics_registry=metrics,
        event_log=event_log,
        profiler=profiler,
    )
    if event_log is not None:
        event_log.bind(run=workload.name)
    tracer = None
    if args.trace:
        tracer = Tracer()
        ctx.obs.set_tracer(tracer)
    advisor = None
    if args.config:
        ctx.conf.copartition_scheduling = True
        advisor = ChopperAdvisor(WorkloadConfig.load(args.config))
        ctx.set_advisor(advisor)
    from repro.chopper import HistoryLogger, StatisticsCollector
    from repro.chopper.runner import ChopperRunner as _Runner

    logger = HistoryLogger.attach(ctx, args.history) if args.history else None
    ledger_collector = LedgerCollector() if args.ledger else None
    if ledger_collector is not None:
        ledger_collector.attach(ctx)
    collector = StatisticsCollector(workload.name, workload.virtual_bytes(args.scale))
    with collector.attached(ctx):
        workload.run(ctx, scale=args.scale)
    if logger is not None:
        logger.detach()
        out.write(f"history -> {args.history}\n")
    rolled = None
    if profiler is not None:
        profiler.stop()
        rolled = profiler.rollup()
    if ledger_collector is not None:
        ledger_collector.detach()
        body = ledger_collector.body()
        body["scale"] = args.scale
        body["input_bytes"] = workload.virtual_bytes(args.scale)
        body["config"] = dataclasses.asdict(ctx.conf)
        body["cluster"] = dict(ctx.obs.nodes)
        body["chopper"] = _Runner._advisor_summary(advisor)
        body["model_eval"] = None
        if rolled is not None:
            # Real host measurements — non-deterministic by nature, so
            # identity checks drop this key (see docs/observability.md).
            body["profile"] = rolled
        run_id = RunLedger(args.ledger).append(workload.name, "run", body)
        out.write(f"ledger {run_id} -> {args.ledger}\n")
    if tracer is not None:
        tracer.save(args.trace)
        out.write(f"trace -> {args.trace}\n")
    if metrics is not None:
        from repro.obs.diagnostics import counter_health

        metrics.save(args.metrics)
        out.write(f"metrics -> {args.metrics}\n")
        out.write(
            "health: "
            + " ".join(
                f"{name.split('.', 1)[1]}={total:g}"
                for name, total in counter_health(metrics).items()
            )
            + "\n"
        )
    if event_log is not None:
        event_log.save(args.log)
        out.write(f"log -> {args.log} ({len(event_log.records)} records)\n")
    if rolled is not None:
        print_profile_summary(out, rolled)
    record = collector.record
    print_stage_table(out, record.observations)
    out.write(f"total: {fmt_duration(ctx.now)} (simulated)\n")
    if args.gantt:
        from repro.reporting import gantt

        out.write(gantt(ctx, width=72) + "\n")
    ctx.close()
    return 0


def cmd_explain(args: argparse.Namespace, out) -> int:
    """Print a workload's relational plan before and after optimization."""
    workload = build_workload(args)
    builder = getattr(workload, "build_query", None)
    if builder is None:
        raise WorkloadError(
            f"workload {workload.name!r} has no relational query plan "
            f"(try: sql)"
        )
    ctx = AnalyticsContext(
        paper_cluster(),
        EngineConf(
            default_parallelism=args.parallelism, **perf_conf_kwargs(args)
        ),
    )
    try:
        table = builder(ctx, scale=args.scale)
        out.write(table.explain() + "\n")
    finally:
        ctx.close()
    return 0


def _sniff_report_input(path: str) -> str:
    """Classify a report input file: 'history' or 'ledger'.

    Both are JSONL; a history file starts with its ``{"event": "header"}``
    line, a ledger entry carries a ``run_id``.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline().strip()
    except OSError as exc:
        raise LedgerError(f"cannot read {path}: {exc.strerror or exc}") from None
    if not first:
        raise LedgerError(f"{path} is empty")
    try:
        head = json.loads(first)
    except json.JSONDecodeError:
        raise LedgerError(
            f"{path} is neither a history file nor a run ledger "
            f"(first line is not JSON)"
        ) from None
    if isinstance(head, dict) and head.get("event") == "header":
        return "history"
    if isinstance(head, dict) and "run_id" in head:
        return "ledger"
    raise LedgerError(
        f"{path} is neither a history file nor a run ledger "
        f"(unrecognized first line)"
    )


def cmd_report(args: argparse.Namespace, out) -> int:
    """Render a history file (text table) or a ledger run (HTML)."""
    if _sniff_report_input(args.history) == "history":
        from repro.chopper import load_history_record

        record = load_history_record(
            args.history, workload="history", input_bytes=1.0
        )
        print_stage_table(out, record.observations)
        out.write(f"total stage span: {fmt_duration(record.total_time)}\n")
        return 0

    from repro.reporting import html_report

    ledger = RunLedger(args.history)
    if args.run:
        entry = ledger.read(args.run)
    else:
        entries = ledger.entries()
        if not entries:
            raise LedgerError(f"{args.history} holds no runs")
        entry = entries[-1]
    html = html_report(entry)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(html)
        out.write(f"report {entry['run_id']} -> {args.out}\n")
    else:
        out.write(html + "\n")
    return 0


def cmd_logs(args: argparse.Namespace, out) -> int:
    """Tail/filter a structured event log written by ``--log``."""
    from repro.obs.log import filter_records, format_record, load_records

    records = filter_records(
        load_records(args.path),
        level=args.level,
        stage=args.stage,
        node=args.node,
        event=args.event,
        tail=args.tail,
    )
    for record in records:
        out.write(format_record(record) + "\n")
    return 0


def cmd_export_metrics(args: argparse.Namespace, out) -> int:
    """Export a saved metrics snapshot as Prometheus text or OTLP JSON."""
    from repro.obs.export import to_otlp, to_prometheus

    with open(args.snapshot, "r", encoding="utf-8") as fh:
        snap = json.load(fh)
    if not isinstance(snap, dict) or not (
        {"counters", "gauges", "histograms"} <= set(snap)
    ):
        raise ConfigurationError(
            f"{args.snapshot} is not a metrics snapshot "
            f"(write one with --metrics)"
        )
    if args.otlp:
        text = json.dumps(to_otlp(snap), indent=2, sort_keys=True) + "\n"
    else:
        text = to_prometheus(snap)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        out.write(f"metrics export -> {args.out}\n")
    else:
        out.write(text)
    return 0


def cmd_cache(args: argparse.Namespace, out) -> int:
    """Inspect or manage an on-disk partition-pruning result cache."""
    from repro.relational.cache import open_backend, sniff_backend

    kind = args.backend or sniff_backend(args.path)
    backend = open_backend(kind, path=args.path)
    try:
        entries = backend.entries()
        if args.action == "stats":
            tables = sorted({e.table for e in entries})
            kept = sum(len(e.partitions) for e in entries)
            total = sum(e.num_partitions for e in entries)
            out.write(
                f"backend: {kind}\n"
                f"path: {args.path}\n"
                f"entries: {len(entries)}\n"
                f"hits: {sum(e.hits for e in entries)}\n"
                f"partitions kept: {kept}/{total}\n"
                f"tables: {', '.join(tables) or '-'}\n"
            )
        elif args.action == "inspect":
            if not entries:
                out.write("(empty)\n")
            for e in entries:
                out.write(
                    f"{e.key}  table={e.table} version={e.version[:12]}"
                    f" partitions={len(e.partitions)}/{e.num_partitions}"
                    f" hits={e.hits}"
                    f" kept={','.join(str(p) for p in e.partitions)}\n"
                )
        elif args.action == "clear":
            backend.clear()
            out.write(f"cleared {len(entries)} entries from {args.path}\n")
        else:  # export
            doc = {
                "backend": kind,
                "path": args.path,
                "entries": [e.to_dict() for e in entries],
            }
            text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text)
                out.write(f"cache export -> {args.out}\n")
            else:
                out.write(text)
    finally:
        backend.close()
    return 0


def cmd_diff_runs(args: argparse.Namespace, out) -> int:
    """Compare two ledger runs; non-zero exit on a regression (CI gate)."""
    from repro.obs.diagnostics import diff_runs

    ledger = RunLedger(args.ledger)
    diff = diff_runs(
        ledger.read(args.run_a),
        ledger.read(args.run_b),
        time_threshold=args.threshold,
        shuffle_threshold=args.shuffle_threshold,
    )
    out.write(
        f"wall clock: {diff.wall_clock_a:.3f}s -> {diff.wall_clock_b:.3f}s "
        f"({diff.time_delta * 100:+.1f}%)\n"
        f"shuffle:    {fmt_bytes(diff.shuffle_a)} -> "
        f"{fmt_bytes(diff.shuffle_b)} ({diff.shuffle_delta * 100:+.1f}%)\n"
    )
    if diff.ok:
        out.write("ok: no regression\n")
        return 0
    for line in diff.regressions:
        out.write(f"REGRESSION: {line}\n")
    return 1


def _write_telemetry(runner: ChopperRunner, args, out) -> None:
    """Persist a runner's event log and print its profile summary."""
    if runner.event_log is not None:
        runner.event_log.save(args.log)
        out.write(
            f"log -> {args.log} ({len(runner.event_log.records)} records)\n"
        )
    if runner.profiler is not None:
        print_profile_summary(out, runner.profiler.rollup())


def cmd_profile(args: argparse.Namespace, out) -> int:
    runner = make_runner(args)
    runs = runner.profile(
        p_grid=tuple(args.grid), scales=tuple(args.scales), jobs=args.jobs
    )
    trained = runner.train()
    runner.db.save(args.db)
    out.write(
        f"profiled {runs} runs, trained {trained} models -> {args.db}\n"
    )
    _write_telemetry(runner, args, out)
    return 0


def cmd_optimize(args: argparse.Namespace, out) -> int:
    runner = make_runner(args)
    runner.db = WorkloadDB.load(args.db)
    config = runner.optimize(mode=args.mode)
    if args.output:
        config.save(args.output)
        out.write(f"wrote {len(config)} entries -> {args.output}\n")
    else:
        out.write(config.to_json() + "\n")
    return 0


def cmd_compare(args: argparse.Namespace, out) -> int:
    runner = make_runner(args)
    out.write("profiling...\n")
    runner.profile(
        p_grid=tuple(args.grid), scales=tuple(args.scales), jobs=args.jobs
    )
    runner.train()
    chaos = chaos_conf_kwargs(args)
    if chaos:
        # Chaos applies to the measured head-to-head runs only; the
        # profiling sweep above stays failure-free so the trained models
        # see clean observations.
        runner.base_conf = replace(runner.base_conf, **chaos)
    vanilla, chopper = runner.compare(mode=args.mode, jobs=args.jobs)
    if runner.tracer is not None:
        runner.tracer.save(args.trace)
        out.write(f"trace -> {args.trace}\n")
    if runner.metrics_registry is not None:
        runner.metrics_registry.save(args.metrics)
        out.write(f"metrics -> {args.metrics}\n")
    _write_telemetry(runner, args, out)
    out.write(f"vanilla: {fmt_duration(vanilla.total_time)}\n")
    out.write(f"chopper: {fmt_duration(chopper.total_time)}\n")
    out.write(f"improvement: {improvement(vanilla, chopper) * 100:.1f}%\n")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome-trace JSON of the run(s)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write a metrics-registry JSON snapshot")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="append structured run entries to this JSONL "
                             "run ledger")
    parser.add_argument("--log", default=None, metavar="PATH",
                        help="write a structured JSONL event log of the "
                             "run(s); read it back with `repro logs`")
    parser.add_argument("--profile", action="store_true",
                        help="measure real host resources per task/stage "
                             "(CPU, allocations, GC pauses); also enabled "
                             "by REPRO_PROFILE=1. Simulated results stay "
                             "bit-identical")


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--chaos-kill", action="append", default=None,
                        metavar="NODE=TIME",
                        help="kill worker NODE at simulated TIME seconds "
                             "(repeatable)")
    parser.add_argument("--chaos-rate", type=float, default=None,
                        help="seeded per-worker failure probability")
    parser.add_argument("--chaos-recovery", type=float, default=None,
                        metavar="SECONDS",
                        help="dead nodes rejoin after this many seconds")


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    # No argparse `choices=`: unknown names are rejected in
    # build_workload() with a WorkloadError so every entry point (CLI,
    # tests, library use) gets the same clean one-line diagnostic.
    parser.add_argument("workload", help=f"one of: {', '.join(sorted(WORKLOADS))}")
    parser.add_argument("--virtual-gb", type=float, default=None,
                        help="virtual input size in GiB (default: paper's)")
    parser.add_argument("--physical-records", type=int, default=None,
                        help="physical sample size (speed knob)")
    parser.add_argument("--parallelism", type=int, default=300,
                        help="vanilla default parallelism (paper: 300)")
    # No argparse `choices=` here either: EngineConf validates the value
    # and the ConfigurationError surfaces as the standard one-line
    # `error: ...` diagnostic (exit 2).
    parser.add_argument("--record-format", default=None,
                        help="shuffle block format: 'list' (default) or "
                             "'columnar' (numpy-backed batches; "
                             "bit-identical results)")
    parser.add_argument("--fuse", action="store_true",
                        help="fuse narrow map/filter/mapValues chains into "
                             "one per-partition kernel (bit-identical "
                             "results)")
    parser.add_argument("--memory-budget", default=None, metavar="BYTES",
                        help="physical memory budget over block payloads "
                             "in virtual bytes (e.g. '2G', '512M'); "
                             "payloads past it spill LRU to disk and read "
                             "back transparently (bit-identical results)")
    parser.add_argument("--spill-dir", default=None, metavar="DIR",
                        help="directory for spill block files (default: a "
                             "tempdir); requires --memory-budget")
    parser.add_argument("--no-optimize", action="store_true",
                        help="disable the relational logical-plan optimizer "
                             "(identical results; more stages)")
    parser.add_argument("--aqe", action="store_true",
                        help="adaptive query execution: re-plan each reduce "
                             "side from measured map-output sizes — "
                             "coalesce tiny partitions, split hot ones, "
                             "re-derive range bounds (bit-identical "
                             "results)")
    parser.add_argument("--aqe-target", default=None, metavar="BYTES",
                        help="AQE coalesce/split target partition size in "
                             "virtual bytes (e.g. '4M', '16K'; default "
                             "64M); requires --aqe")
    parser.add_argument("--skew", type=float, default=None, metavar="A",
                        help="Zipf exponent for the key distribution of "
                             "skew-aware workloads (wordcount, "
                             "wordcount-shuffle, sql); larger = hotter keys")
    parser.add_argument("--max-order", type=int, default=None, metavar="N",
                        help="sql only: filter orders to order_id < N "
                             "(a selective scan predicate partition "
                             "pruning can exploit)")
    parser.add_argument("--no-prune", action="store_true",
                        help="disable all partition pruning (zone maps, "
                             "range layouts, and cached partition sets; "
                             "identical results, more scan tasks)")
    # Backend names are validated by EngineConf, not argparse, so the
    # unknown-backend diagnostic is the standard one-line `error: ...`.
    parser.add_argument("--cache", default=None, metavar="BACKEND",
                        help="partition-pruning result cache backend: "
                             "'memory', 'sqlite', or 'bitmap' (file "
                             "backends need --cache-path); warm runs "
                             "skip partitions proven irrelevant "
                             "(bit-identical results)")
    parser.add_argument("--cache-path", default=None, metavar="PATH",
                        help="result cache file for the sqlite/bitmap "
                             "backends; shared across runs for warm "
                             "lookups")


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent measured "
                             "runs (default: REPRO_PHYSICAL_PARALLELISM "
                             "or 1); results are bit-identical to --jobs 1")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="CHOPPER reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list available workloads")

    p_run = sub.add_parser("run", help="run one workload")
    _add_workload_args(p_run)
    p_run.add_argument("--config", default=None,
                       help="CHOPPER workload config file to apply")
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--history", default=None,
                       help="write a JSONL history file of the run")
    p_run.add_argument("--gantt", action="store_true",
                       help="print an ASCII task timeline after the run")
    _add_obs_args(p_run)
    _add_chaos_args(p_run)

    p_explain = sub.add_parser(
        "explain",
        help="print a workload's logical plan before/after optimization",
    )
    _add_workload_args(p_explain)
    p_explain.add_argument("--scale", type=float, default=1.0)

    p_report = sub.add_parser(
        "report", help="render a history file (text) or a ledger run (HTML)"
    )
    p_report.add_argument(
        "history",
        help="history JSONL (run --history) or run ledger (--ledger)",
    )
    p_report.add_argument("--run", default=None, metavar="RUN_ID",
                          help="ledger run to render (default: the latest)")
    p_report.add_argument("--out", default=None, metavar="PATH",
                          help="write the HTML report here instead of stdout")

    p_profile = sub.add_parser("profile", help="test-run sweep -> workload DB")
    _add_workload_args(p_profile)
    p_profile.add_argument("--db", required=True, help="output DB path (JSON)")
    p_profile.add_argument("--grid", type=int, nargs="+",
                           default=[100, 200, 300, 500, 800])
    p_profile.add_argument("--scales", type=float, nargs="+", default=[0.33, 1.0])
    p_profile.add_argument("--ledger", default=None, metavar="PATH",
                           help="append every profiling run to this run "
                                "ledger (disables --jobs fan-out)")
    p_profile.add_argument("--log", default=None, metavar="PATH",
                           help="write a structured JSONL event log of the "
                                "sweep; read it back with `repro logs`")
    p_profile.add_argument("--profile", action="store_true",
                           help="measure real host resources per "
                                "task/stage; also enabled by "
                                "REPRO_PROFILE=1")
    _add_jobs_arg(p_profile)

    p_opt = sub.add_parser("optimize", help="workload DB -> config file")
    _add_workload_args(p_opt)
    p_opt.add_argument("--db", required=True, help="workload DB path (JSON)")
    p_opt.add_argument("--output", default=None, help="config output path")
    p_opt.add_argument("--mode", choices=("global", "per-stage"), default="global")

    p_cmp = sub.add_parser("compare", help="vanilla vs CHOPPER end to end")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--grid", type=int, nargs="+",
                       default=[100, 200, 300, 500, 800])
    p_cmp.add_argument("--scales", type=float, nargs="+", default=[0.33, 1.0])
    p_cmp.add_argument("--mode", choices=("global", "per-stage"), default="global")
    _add_jobs_arg(p_cmp)
    _add_obs_args(p_cmp)
    _add_chaos_args(p_cmp)

    p_logs = sub.add_parser(
        "logs", help="tail/filter a structured event log (run --log)"
    )
    p_logs.add_argument("path", help="JSONL event log written by --log")
    p_logs.add_argument("--level", default=None,
                        help="minimum level: DEBUG, INFO, WARNING, ERROR")
    p_logs.add_argument("--stage", default=None,
                        help="only records whose stage field matches")
    p_logs.add_argument("--node", default=None,
                        help="only records whose node field matches")
    p_logs.add_argument("--event", default=None,
                        help="only records with this event name")
    p_logs.add_argument("--tail", type=int, default=None, metavar="N",
                        help="only the last N matching records")

    p_export = sub.add_parser(
        "export-metrics",
        help="metrics snapshot (run --metrics) -> Prometheus text or "
             "OTLP JSON",
    )
    p_export.add_argument("snapshot",
                          help="metrics snapshot JSON written by --metrics")
    p_export.add_argument("--otlp", action="store_true",
                          help="emit an OTLP-style JSON dump instead of "
                               "Prometheus text exposition")
    p_export.add_argument("--out", default=None, metavar="PATH",
                          help="write here instead of stdout")

    p_cache = sub.add_parser(
        "cache",
        help="inspect/manage an on-disk result cache (run --cache)",
    )
    p_cache.add_argument("action",
                         choices=("stats", "inspect", "clear", "export"),
                         help="stats: one-line totals; inspect: per-entry "
                              "rows; clear: drop all entries; export: JSON "
                              "dump")
    p_cache.add_argument("path", help="cache file (sqlite or bitmap)")
    p_cache.add_argument("--backend", default=None,
                         help="force the backend kind instead of sniffing "
                              "the file magic ('sqlite' or 'bitmap')")
    p_cache.add_argument("--out", default=None, metavar="PATH",
                         help="export: write the JSON dump here instead of "
                              "stdout")

    p_diff = sub.add_parser(
        "diff-runs",
        help="compare two ledger runs; exit 1 on regression (CI gate)",
    )
    p_diff.add_argument("ledger", help="run ledger JSONL")
    p_diff.add_argument("run_a", help="baseline run id")
    p_diff.add_argument("run_b", help="candidate run id")
    p_diff.add_argument("--threshold", type=float, default=0.2,
                        help="fractional wall-clock regression tolerated "
                             "(default 0.2 = 20%%)")
    p_diff.add_argument("--shuffle-threshold", type=float, default=None,
                        help="fractional shuffle-volume regression tolerated "
                             "(default: same as --threshold)")
    return parser


COMMANDS = {
    "workloads": cmd_workloads,
    "report": cmd_report,
    "run": cmd_run,
    "explain": cmd_explain,
    "profile": cmd_profile,
    "optimize": cmd_optimize,
    "compare": cmd_compare,
    "cache": cmd_cache,
    "diff-runs": cmd_diff_runs,
    "logs": cmd_logs,
    "export-metrics": cmd_export_metrics,
}


def main(argv: Optional[List[str]] = None, out=None, err=None) -> int:
    out = out or sys.stdout
    err = err or sys.stderr
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args, out)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        # Operator mistakes (unknown workload, unreadable DB/config path,
        # malformed JSON) get a one-line diagnostic, not a traceback.
        err.write(f"error: {exc}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())

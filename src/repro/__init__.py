"""CHOPPER reproduction: auto-partitioning for in-memory DAG analytics.

Reproduces *CHOPPER: Optimizing Data Partitioning for In-Memory Data
Analytics Frameworks* (IEEE CLUSTER 2016) end to end:

* ``repro.engine`` — a from-scratch, Spark-semantics DAG analytics engine
  running real computations under simulated time;
* ``repro.cluster`` / ``repro.simul`` — the paper's 6-node heterogeneous
  testbed as a discrete-event simulation;
* ``repro.chopper`` — the paper's contribution: per-stage performance
  models (Eq. 1-2), the normalized cost objective (Eq. 3-4),
  Algorithms 1-3, config generation, and the dynamic-partitioning
  scheduler hook;
* ``repro.workloads`` — SparkBench-style KMeans, PCA, and SQL drivers
  plus data generators.

Quickstart::

    from repro import AnalyticsContext, paper_cluster
    ctx = AnalyticsContext(paper_cluster())
    rdd = ctx.parallelize(range(1000), num_partitions=8)
    squares = rdd.map(lambda x: x * x).collect()
"""

from repro.cluster import Cluster, NodeSpec, paper_cluster, uniform_cluster
from repro.engine import (
    AnalyticsContext,
    Broadcast,
    EngineConf,
    HashPartitioner,
    RangePartitioner,
    RDD,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyticsContext",
    "Broadcast",
    "EngineConf",
    "HashPartitioner",
    "RangePartitioner",
    "RDD",
    "Cluster",
    "NodeSpec",
    "paper_cluster",
    "uniform_cluster",
    "__version__",
]

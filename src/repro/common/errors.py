"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid engine, cluster, or CHOPPER configuration was supplied."""


class SchedulingError(ReproError):
    """The DAG or task scheduler reached an inconsistent state."""


class ShuffleError(ReproError):
    """Shuffle data was requested that was never registered or written."""


class ModelError(ReproError):
    """A CHOPPER performance model could not be fitted or evaluated."""


class WorkloadError(ReproError):
    """A workload was driven with invalid parameters or data."""

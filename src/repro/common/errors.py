"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid engine, cluster, or CHOPPER configuration was supplied."""


class SchedulingError(ReproError):
    """The DAG or task scheduler reached an inconsistent state."""


class StageAbortedError(SchedulingError):
    """A stage was resubmitted ``max_stage_attempts`` times and gave up.

    Raised by the DAG scheduler when lineage recovery keeps losing the
    same shuffle outputs (e.g. nodes dying faster than stages re-run).
    """


class ShuffleError(ReproError):
    """Shuffle data was requested that was never registered or written."""


class FetchFailure(ShuffleError):
    """A reduce-side fetch found its map outputs gone (node loss).

    Carries enough structure for lineage recovery: the DAG scheduler
    catches it, resubmits the parent ShuffleMapStage for exactly the
    lost map partitions, and requeues the failed reduce task once they
    are rebuilt — the RDD recovery path of Zaharia et al. (NSDI'12).
    """

    def __init__(self, shuffle_id: int, map_ids, node: str) -> None:
        self.shuffle_id = shuffle_id
        self.map_ids = list(map_ids)
        self.node = node
        super().__init__(
            f"shuffle {shuffle_id}: {len(self.map_ids)} map output(s) "
            f"lost with node {node!r}"
        )


class StorageError(ReproError):
    """Block storage / spill-file state is inconsistent or unreadable."""


class ModelError(ReproError):
    """A CHOPPER performance model could not be fitted or evaluated."""


class LedgerError(ReproError):
    """A run ledger file is missing, corrupt, or lacks the requested run."""


class WorkloadError(ReproError):
    """A workload was driven with invalid parameters or data."""

"""Shared utilities: errors, units, deterministic RNG, size accounting.

These helpers are deliberately dependency-light; every other subpackage
(`repro.simul`, `repro.engine`, `repro.chopper`, ...) builds on them.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    SchedulingError,
    ShuffleError,
    ModelError,
    WorkloadError,
)
from repro.common.units import (
    KB,
    MB,
    GB,
    MINUTE,
    HOUR,
    fmt_bytes,
    fmt_duration,
)
from repro.common.rng import seeded_rng, derive_seed
from repro.common.sizing import estimate_size, Sized

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulingError",
    "ShuffleError",
    "ModelError",
    "WorkloadError",
    "KB",
    "MB",
    "GB",
    "MINUTE",
    "HOUR",
    "fmt_bytes",
    "fmt_duration",
    "seeded_rng",
    "derive_seed",
    "estimate_size",
    "Sized",
]

"""Record size estimation for shuffle and storage accounting.

The engine executes workloads on a small *physical* sample of records that
stands in for a much larger *virtual* dataset (see DESIGN.md). Byte
accounting therefore needs two pieces:

* :func:`estimate_size` — approximate serialized size of one record, the
  way Spark's ``SizeEstimator`` approximates JVM object sizes; and
* a per-RDD ``size_scale`` multiplier (owned by ``repro.engine.rdd``) that
  converts physical bytes to virtual bytes.

Records that know their own virtual footprint can implement the
:class:`Sized` protocol instead.
"""

from __future__ import annotations

from typing import Any

import numpy as np

# Fixed serialized-size assumptions, loosely mirroring compact binary
# encodings (Kryo-like): primitives are 8 bytes, containers pay a small
# per-element overhead.
_PRIMITIVE_BYTES = 8.0
_CONTAINER_OVERHEAD = 16.0
_PER_ELEMENT_OVERHEAD = 4.0


class Sized:
    """Protocol for records that carry an explicit virtual byte size.

    Implement ``nbytes_virtual`` to override :func:`estimate_size` for a
    record type whose physical representation is much smaller than the
    dataset it stands for.
    """

    def nbytes_virtual(self) -> float:
        raise NotImplementedError


def estimate_size(record: Any) -> float:
    """Approximate the serialized size of ``record`` in bytes.

    Handles the record shapes the built-in workloads produce: numpy arrays
    and scalars, numbers, strings/bytes, and (nested) tuples/lists/dicts.
    Unknown objects fall back to a flat 64-byte estimate rather than
    raising, so user-defined records never break shuffle accounting.

    >>> estimate_size(1.0)
    8.0
    >>> estimate_size((1, 2.0)) > 16
    True
    """
    if isinstance(record, Sized):
        return float(record.nbytes_virtual())
    if isinstance(record, np.ndarray):
        return float(record.nbytes) + _CONTAINER_OVERHEAD
    if isinstance(record, (np.generic,)):
        return float(record.nbytes)
    if isinstance(record, (int, float, complex)):
        return _PRIMITIVE_BYTES
    if isinstance(record, bool) or record is None:
        return _PRIMITIVE_BYTES
    if isinstance(record, (str, bytes)):
        return float(len(record)) + _CONTAINER_OVERHEAD
    if isinstance(record, (tuple, list)):
        return (
            _CONTAINER_OVERHEAD
            + _PER_ELEMENT_OVERHEAD * len(record)
            + sum(estimate_size(v) for v in record)
        )
    if isinstance(record, dict):
        return (
            _CONTAINER_OVERHEAD
            + _PER_ELEMENT_OVERHEAD * len(record)
            + sum(estimate_size(k) + estimate_size(v) for k, v in record.items())
        )
    return 64.0


def estimate_partition_size(records: list) -> float:
    """Sum of :func:`estimate_size` over a partition's records."""
    return float(sum(estimate_size(r) for r in records))

"""Record size estimation for shuffle and storage accounting.

The engine executes workloads on a small *physical* sample of records that
stands in for a much larger *virtual* dataset (see DESIGN.md). Byte
accounting therefore needs two pieces:

* :func:`estimate_size` — approximate serialized size of one record, the
  way Spark's ``SizeEstimator`` approximates JVM object sizes; and
* a per-RDD ``size_scale`` multiplier (owned by ``repro.engine.rdd``) that
  converts physical bytes to virtual bytes.

Records that know their own virtual footprint can implement the
:class:`Sized` protocol instead.
"""

from __future__ import annotations

import operator
from typing import Any, List, Optional, Sequence

import numpy as np

_NBYTES = operator.attrgetter("nbytes")

# Fixed serialized-size assumptions, loosely mirroring compact binary
# encodings (Kryo-like): primitives are 8 bytes, containers pay a small
# per-element overhead.
_PRIMITIVE_BYTES = 8.0
_CONTAINER_OVERHEAD = 16.0
_PER_ELEMENT_OVERHEAD = 4.0


class Sized:
    """Protocol for records that carry an explicit virtual byte size.

    Implement ``nbytes_virtual`` to override :func:`estimate_size` for a
    record type whose physical representation is much smaller than the
    dataset it stands for.
    """

    def nbytes_virtual(self) -> float:
        raise NotImplementedError


def estimate_size(record: Any) -> float:
    """Approximate the serialized size of ``record`` in bytes.

    Handles the record shapes the built-in workloads produce: numpy arrays
    and scalars, numbers, strings/bytes, and (nested) tuples/lists/dicts.
    Unknown objects fall back to a flat 64-byte estimate rather than
    raising, so user-defined records never break shuffle accounting.

    >>> estimate_size(1.0)
    8.0
    >>> estimate_size((1, 2.0)) > 16
    True
    """
    if isinstance(record, Sized):
        return float(record.nbytes_virtual())
    if isinstance(record, np.ndarray):
        return float(record.nbytes) + _CONTAINER_OVERHEAD
    if isinstance(record, (np.generic,)):
        return float(record.nbytes)
    if isinstance(record, (int, float, complex)):
        return _PRIMITIVE_BYTES
    if isinstance(record, bool) or record is None:
        return _PRIMITIVE_BYTES
    if isinstance(record, (str, bytes)):
        return float(len(record)) + _CONTAINER_OVERHEAD
    if isinstance(record, (tuple, list)):
        return (
            _CONTAINER_OVERHEAD
            + _PER_ELEMENT_OVERHEAD * len(record)
            + sum(estimate_size(v) for v in record)
        )
    if isinstance(record, dict):
        return (
            _CONTAINER_OVERHEAD
            + _PER_ELEMENT_OVERHEAD * len(record)
            + sum(estimate_size(k) + estimate_size(v) for k, v in record.items())
        )
    return 64.0


def estimate_sizes(records: Sequence[Any]) -> List[float]:
    """Batched :func:`estimate_size`: one size per record, bit-identical.

    Type-dispatched fast path: a homogeneous batch (all records share one
    concrete type) is sized columnarly with numpy — tuples/lists of a
    common length recurse per *column* instead of per record. Every
    arithmetic step mirrors the scalar recursion's operation order, so
    ``estimate_sizes(rs)[i] == estimate_size(rs[i])`` exactly (IEEE-754
    equality, not approximate); mixed batches fall back to the per-record
    loop.

    >>> import numpy as np
    >>> rs = [(1, np.ones(3)), (2, np.zeros(3))]
    >>> estimate_sizes(rs) == [estimate_size(r) for r in rs]
    True
    """
    if not records:
        return []
    arr = sizes_array(records)
    if arr is None:
        return [estimate_size(r) for r in records]
    return arr.tolist()


def sizes_array(records: Sequence[Any]) -> Optional[np.ndarray]:
    """Per-record sizes as a float64 array, or ``None`` for mixed batches.

    The array backend of :func:`estimate_sizes`: staying in numpy end to
    end (no intermediate Python lists) is what makes the batched path
    cheap, and callers that consume arrays directly (the map-task
    bucketing kernel) skip the final ``tolist`` too. ``None`` means the
    batch is heterogeneous and the caller must take the scalar loop.
    """
    n = len(records)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if len(set(map(type, records))) != 1:
        return None
    first = type(records[0])
    if issubclass(first, Sized):
        return np.fromiter(
            (r.nbytes_virtual() for r in records), dtype=np.float64, count=n
        )
    if issubclass(first, np.ndarray):
        # map(attrgetter) keeps the per-record attribute access in C; the
        # equivalent generator expression costs a Python frame per record.
        nbytes = np.fromiter(
            map(_NBYTES, records), dtype=np.float64, count=n
        )
        return nbytes + _CONTAINER_OVERHEAD
    if issubclass(first, np.generic):
        return np.fromiter(map(_NBYTES, records), dtype=np.float64, count=n)
    if issubclass(first, (int, float, complex)) or first is type(None):
        return np.full(n, _PRIMITIVE_BYTES)
    if issubclass(first, (str, bytes)):
        lens = np.fromiter(map(len, records), dtype=np.float64, count=n)
        return lens + _CONTAINER_OVERHEAD
    if issubclass(first, (tuple, list)):
        lens = np.fromiter(map(len, records), dtype=np.intp, count=n)
        width = int(lens[0])
        if not (lens == width).all():
            return None
        base = _CONTAINER_OVERHEAD + _PER_ELEMENT_OVERHEAD * width
        if width == 0:
            return np.full(n, base)
        # Column-wise recursion. The scalar path computes
        # ``base + sum(sizes)`` where sum() is a left fold starting at 0;
        # 0 + x == x for the positive sizes produced here, so folding the
        # column arrays left-to-right reproduces the identical sequence
        # of additions element-wise.
        acc = _column_sizes([r[0] for r in records])
        for j in range(1, width):
            acc = acc + _column_sizes([r[j] for r in records])
        return base + acc
    # dicts and unknown objects: rare as bulk records; keep the exact loop.
    return None


def _column_sizes(column: List[Any]) -> np.ndarray:
    arr = sizes_array(column)
    if arr is None:  # mixed column: exact scalar loop, then lift to array
        arr = np.array([estimate_size(v) for v in column], dtype=np.float64)
    return arr


def estimate_partition_size(
    records: list,
    *,
    vectorized: bool = False,
    sample_cap: Optional[int] = None,
) -> float:
    """Sum of :func:`estimate_size` over a partition's records.

    With ``vectorized=True`` the per-record sizes come from
    :func:`estimate_sizes`; the left-fold summation order is preserved, so
    the result is bit-identical to the serial loop.

    ``sample_cap`` enables the *approximate* sampling mode: size only
    ``sample_cap`` evenly spaced records and scale up by the record count.
    This is NOT bit-identical to the exact sum and is therefore opt-in —
    nothing in the engine enables it by default.
    """
    if sample_cap is not None and len(records) > sample_cap > 0:
        step = len(records) / sample_cap
        sampled = [records[int(i * step)] for i in range(sample_cap)]
        return float(sum(estimate_sizes(sampled)) * (len(records) / sample_cap))
    if vectorized:
        return float(sum(estimate_sizes(records)))
    return float(sum(estimate_size(r) for r in records))

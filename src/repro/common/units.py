"""Byte and time unit constants plus human-readable formatters.

All sizes in the library are plain ``float`` byte counts and all times are
plain ``float`` seconds of *simulated* time; these helpers keep call sites
readable (``21.8 * GB``) and log output legible.
"""

from __future__ import annotations

KB: float = 1024.0
MB: float = 1024.0 * KB
GB: float = 1024.0 * MB
TB: float = 1024.0 * GB

MINUTE: float = 60.0
HOUR: float = 3600.0

_BYTE_STEPS = ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB"))


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary-unit suffix.

    >>> fmt_bytes(1536)
    '1.50 KB'
    >>> fmt_bytes(0)
    '0 B'
    """
    if n < 0:
        return "-" + fmt_bytes(-n)
    for step, suffix in _BYTE_STEPS:
        if n >= step:
            return f"{n / step:.2f} {suffix}"
    return f"{n:.0f} B"


_SUFFIXES = {
    "": 1.0, "b": 1.0,
    "k": KB, "kb": KB,
    "m": MB, "mb": MB,
    "g": GB, "gb": GB,
    "t": TB, "tb": TB,
}


def parse_bytes(text: str) -> float:
    """Parse a human byte count: ``"64M"``, ``"1.5GB"``, ``"4096"``.

    Binary units (1K = 1024), case-insensitive, optional ``B`` suffix.
    Raises ``ValueError`` on anything else, so argparse renders it as a
    clean usage error.

    >>> parse_bytes("1.5K")
    1536.0
    >>> parse_bytes("100")
    100.0
    """
    s = str(text).strip().lower()
    i = len(s)
    while i > 0 and (s[i - 1].isalpha()):
        i -= 1
    number, suffix = s[:i].strip(), s[i:]
    if suffix not in _SUFFIXES or not number:
        raise ValueError(f"unrecognized byte size {text!r} (try e.g. '64M', '1.5GB')")
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"unrecognized byte size {text!r}") from None
    if value < 0:
        raise ValueError(f"byte size must be >= 0, got {text!r}")
    return value * _SUFFIXES[suffix]


def fmt_duration(seconds: float) -> str:
    """Format a duration in seconds as a compact h/m/s string.

    >>> fmt_duration(75)
    '1m15.0s'
    >>> fmt_duration(0.5)
    '0.500s'
    """
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.3f}s"
    if seconds < HOUR:
        minutes = int(seconds // MINUTE)
        return f"{minutes}m{seconds - minutes * MINUTE:.1f}s"
    hours = int(seconds // HOUR)
    rem = seconds - hours * HOUR
    minutes = int(rem // MINUTE)
    return f"{hours}h{minutes}m{rem - minutes * MINUTE:.0f}s"

"""Byte and time unit constants plus human-readable formatters.

All sizes in the library are plain ``float`` byte counts and all times are
plain ``float`` seconds of *simulated* time; these helpers keep call sites
readable (``21.8 * GB``) and log output legible.
"""

from __future__ import annotations

KB: float = 1024.0
MB: float = 1024.0 * KB
GB: float = 1024.0 * MB
TB: float = 1024.0 * GB

MINUTE: float = 60.0
HOUR: float = 3600.0

_BYTE_STEPS = ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB"))


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary-unit suffix.

    >>> fmt_bytes(1536)
    '1.50 KB'
    >>> fmt_bytes(0)
    '0 B'
    """
    if n < 0:
        return "-" + fmt_bytes(-n)
    for step, suffix in _BYTE_STEPS:
        if n >= step:
            return f"{n / step:.2f} {suffix}"
    return f"{n:.0f} B"


def fmt_duration(seconds: float) -> str:
    """Format a duration in seconds as a compact h/m/s string.

    >>> fmt_duration(75)
    '1m15.0s'
    >>> fmt_duration(0.5)
    '0.500s'
    """
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.3f}s"
    if seconds < HOUR:
        minutes = int(seconds // MINUTE)
        return f"{minutes}m{seconds - minutes * MINUTE:.1f}s"
    hours = int(seconds // HOUR)
    rem = seconds - hours * HOUR
    minutes = int(rem // MINUTE)
    return f"{hours}h{minutes}m{rem - minutes * MINUTE:.0f}s"

"""Deterministic random-number management.

Everything random in the library (data generation, range-partitioner
sampling, cost-model jitter) flows through :func:`seeded_rng` /
:func:`derive_seed` so a whole simulated workload run is reproducible from
a single integer seed — a hard requirement for the benchmark harness, which
asserts qualitative shapes against the paper.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5EED


def seeded_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a NumPy :class:`~numpy.random.Generator` for ``seed``."""
    return np.random.default_rng(seed)


def derive_seed(base: int, *labels: object) -> int:
    """Derive a child seed from ``base`` and a sequence of labels.

    Uses a stable hash (BLAKE2) over the label reprs so the same labels
    always yield the same child seed across processes and Python versions
    (unlike built-in ``hash`` which is salted per process).

    >>> derive_seed(1, "a") == derive_seed(1, "a")
    True
    >>> derive_seed(1, "a") != derive_seed(1, "b")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(base).encode())
    for label in labels:
        h.update(b"\x00")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest(), "big") & 0x7FFFFFFFFFFFFFFF

"""Accumulators: write-only shared counters, as in Spark.

Tasks add to an accumulator during execution; the driver reads the total
afterwards. Two Spark behaviours are kept:

* adds from **failed** attempts are discarded (the attempt produced no
  side effects);
* adds from **speculative duplicate** attempts do double-count, exactly
  like pre-2.x Spark's well-known caveat for transformations — the
  docstring warns, and :attr:`Accumulator.exact` is False once any task
  was re-executed in the owning context.
"""

from __future__ import annotations

from typing import Callable, Generic, Optional, TypeVar

from repro.common.errors import ConfigurationError
from repro.engine import effects

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A commutative, associative shared counter.

    Create through :meth:`AnalyticsContext.accumulator`; call ``add``
    from task code (closures), read ``value`` at the driver.
    """

    def __init__(
        self,
        zero: T,
        add_op: Optional[Callable[[T, T], T]] = None,
        name: str = "accumulator",
    ) -> None:
        self._zero = zero
        self._value = zero
        self._add_op = add_op or (lambda a, b: a + b)
        self.name = name
        self.adds = 0

    def add(self, amount: T) -> None:
        """Fold ``amount`` into the accumulator (called from tasks)."""
        sink = effects.active()
        if sink is not None:
            # Deferred attempt: the fold happens at the task's serial
            # position so a non-commutative add_op still sees the adds
            # in serial order.
            sink.ops.append(("acc", self, amount))
            return
        self._fold(amount)

    def _fold(self, amount: T) -> None:
        self._value = self._add_op(self._value, amount)
        self.adds += 1

    def __iadd__(self, amount: T) -> "Accumulator[T]":
        self.add(amount)
        return self

    @property
    def value(self) -> T:
        """Driver-side read of the accumulated total."""
        return self._value

    def reset(self) -> None:
        self._value = self._zero
        self.adds = 0

    def __repr__(self) -> str:
        return f"Accumulator({self.name}={self._value!r})"


def make_accumulator(
    zero: T, add_op: Optional[Callable[[T, T], T]] = None, name: str = "acc"
) -> Accumulator[T]:
    """Validated constructor (used by the context)."""
    if add_op is None and not isinstance(zero, (int, float)):
        raise ConfigurationError(
            "non-numeric accumulators need an explicit add_op"
        )
    return Accumulator(zero, add_op, name)

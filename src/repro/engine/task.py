"""Tasks and the per-task measurement context.

A :class:`Task` is one unit of work — one partition of one stage — exactly
as in Spark. The :class:`TaskContext` rides along while the task's RDD
pipeline materializes, accumulating the quantities the cost model turns
into a simulated duration: virtual bytes computed, source bytes scanned,
shuffle bytes read (local/remote, per source node) and written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.adaptive import AdaptiveTaskSpec
    from repro.engine.stage import Stage


@dataclass
class TaskContext:
    """Accumulates the measurable side effects of one task's execution."""

    node: str
    stage_run_id: int = -1
    task_index: int = -1
    probe: bool = False  # probe contexts (driver-side sampling) skip caching

    # Weighted virtual bytes of compute across the pipeline.
    compute_bytes: float = 0.0
    records_out: int = 0
    # Virtual output bytes of each RDD materialized so far in this task,
    # plus explicit input hints (shuffle fetch payloads). A pipeline
    # step's work is priced on max(input, output) bytes — an aggregating
    # step that collapses a big partition into one record still pays for
    # scanning the partition.
    rdd_bytes: Dict[int, float] = field(default_factory=dict)
    input_hints: Dict[int, float] = field(default_factory=dict)
    # Virtual bytes scanned from a source partition (disk input).
    input_bytes: float = 0.0
    # Largest single materialized partition in the pipeline (drives the
    # oversize penalty).
    max_partition_bytes: float = 0.0
    # Shuffle read accounting.
    shuffle_read_local: float = 0.0
    shuffle_read_remote_by_src: Dict[str, float] = field(default_factory=dict)
    shuffle_blocks_fetched: int = 0
    # Shuffle write accounting (map tasks).
    shuffle_write: float = 0.0
    # Bytes read from the block-store cache (local and remote).
    cache_read_bytes: float = 0.0
    cache_remote_by_src: Dict[str, float] = field(default_factory=dict)
    # AQE slice tasks: shuffle_id -> half-open [lo, hi) range of map
    # outputs this task fetches instead of all of them.
    map_ranges: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def note_compute(self, weighted_bytes: float, records: int, raw_bytes: float) -> None:
        self.compute_bytes += weighted_bytes
        self.records_out += records
        if raw_bytes > self.max_partition_bytes:
            self.max_partition_bytes = raw_bytes

    def note_input_hint(self, rdd_id: int, nbytes: float) -> None:
        """Declare extra input volume for one RDD (shuffle fetch payload)."""
        self.input_hints[rdd_id] = self.input_hints.get(rdd_id, 0.0) + nbytes

    def note_input(self, nbytes: float) -> None:
        self.input_bytes += nbytes

    def note_cache_read(self, nbytes: float, src_node: Optional[str] = None) -> None:
        """Record a cache hit; ``src_node`` set when the block is remote."""
        self.cache_read_bytes += nbytes
        if src_node is not None and src_node != self.node:
            self.cache_remote_by_src[src_node] = (
                self.cache_remote_by_src.get(src_node, 0.0) + nbytes
            )
        if nbytes > self.max_partition_bytes:
            self.max_partition_bytes = nbytes

    def note_shuffle_read(
        self, local_bytes: float, remote_by_src: Dict[str, float], n_blocks: int
    ) -> None:
        self.shuffle_read_local += local_bytes
        for src, nbytes in remote_by_src.items():
            self.shuffle_read_remote_by_src[src] = (
                self.shuffle_read_remote_by_src.get(src, 0.0) + nbytes
            )
        self.shuffle_blocks_fetched += n_blocks

    def note_shuffle_write(self, nbytes: float) -> None:
        self.shuffle_write += nbytes

    @property
    def shuffle_read_remote(self) -> float:
        return sum(self.shuffle_read_remote_by_src.values())


@dataclass
class Task:
    """One partition's worth of work for a stage."""

    stage: "Stage"
    partition: int
    preferred_nodes: List[str] = field(default_factory=list)
    attempt: int = 0
    # AQE re-planned stages: which original partitions this physical
    # task covers (and, for slice tasks, which map-output range). None
    # on statically-planned stages, where partition IS the split index.
    spec: Optional["AdaptiveTaskSpec"] = None

    @property
    def label(self) -> str:
        return f"stage{self.stage.stage_id}-p{self.partition}a{self.attempt}"


def probe_context(node: str = "__driver__") -> TaskContext:
    """A throwaway context for driver-side physical evaluation.

    Used when CHOPPER needs real records outside the simulation — e.g.
    sampling keys to build a range partitioner. Nothing it observes is
    charged to the simulated clock directly (the caller adds an explicit
    sampling cost instead), and caching is disabled.
    """
    return TaskContext(node=node, probe=True)

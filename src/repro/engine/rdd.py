"""Resilient Distributed Datasets: the engine's user-facing data API.

Faithful to Spark's RDD semantics at the granularity the paper cares
about:

* transformations are **lazy** and build a lineage DAG of narrow and
  shuffle dependencies;
* actions submit a job to the DAGScheduler, which cuts the lineage into
  stages at shuffle boundaries;
* a partition is the unit of parallelism — one task per partition;
* ``partitioner`` metadata propagates through partitioning-preserving ops
  so joins/aggregations over co-partitioned RDDs skip the shuffle.

Computations run for real on the (physically small) records; only *time*
is simulated. Each RDD carries a ``size_scale`` converting physical bytes
to the virtual dataset size it represents (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.common.errors import ConfigurationError, WorkloadError
from repro.common.rng import derive_seed, seeded_rng
from repro.common.sizing import estimate_partition_size, estimate_size
from repro.engine.batch import RecordBatch
from repro.engine.dependencies import (
    Aggregator,
    CoalesceDependency,
    Dependency,
    NarrowDependency,
    OneToOneDependency,
    RangeNarrowDependency,
    ShuffleDependency,
    SubsetDependency,
)
from repro.engine import effects
from repro.engine.partitioner import HashPartitioner, Partitioner
from repro.engine.task import TaskContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import AnalyticsContext


class RecordOp:
    """Per-record description of a narrow op, the unit of operator fusion.

    ``kind`` is ``"map"`` / ``"filter"`` / ``"map_values"``; ``fn`` is the
    user's per-record function (the same one the unfused lambda applies).
    ``vec`` is an optional columnar kernel the workload opts in with:

    * map: ``vec(keys, values) -> (keys, values)``
    * filter: ``vec(keys, values) -> bool mask``
    * map_values: ``vec(values) -> values``

    The opt-in contract is elementwise bit-identity with ``fn`` after the
    round trip to Python scalars — the engine only invokes ``vec`` on
    ndarray columns and treats its outputs exactly like scalar results.
    """

    __slots__ = ("kind", "fn", "vec")

    def __init__(self, kind: str, fn: Callable, vec: Optional[Callable] = None):
        self.kind = kind
        self.fn = fn
        self.vec = vec


def _run_chain(
    chain: List["MapPartitionsRDD"], base_records: List
) -> Tuple[List, List[int], List[float]]:
    """Loop-fused evaluation of a narrow chain over one partition.

    One pass over the base records applies every step's per-record
    function in sequence — no intermediate partition lists — while
    accumulating each step's record count and raw size sum in the same
    record order the unfused path sums them, so per-step accounting
    (``_note_chain``) reproduces ``materialize``'s numbers exactly.
    """
    k = len(chain)
    ops = [step._record_op for step in chain]
    counts = [0] * k
    sums = [0.0] * k
    out: List = []
    for r in base_records:
        v = r
        dead = False
        for i, op in enumerate(ops):
            if op.kind == "map":
                v = op.fn(v)
            elif op.kind == "filter":
                if not op.fn(v):
                    dead = True
                    break
            else:  # map_values
                key, value = v  # same unpacking (and errors) as unfused
                v = (key, op.fn(value))
            counts[i] += 1
            sums[i] += estimate_size(v)
        if not dead:
            out.append(v)
    return out, counts, sums


def _run_chain_vec(
    chain: List["MapPartitionsRDD"], batch: RecordBatch
) -> Tuple[RecordBatch, List[int], List[float]]:
    """Columnar evaluation of a fully vec-enabled narrow chain."""
    counts: List[int] = []
    sums: List[float] = []
    for step in chain:
        op = step._record_op
        if op.kind == "map":
            keys, values = op.vec(batch.keys, batch.values)
            batch = RecordBatch(keys, values)
        elif op.kind == "filter":
            mask = np.asarray(op.vec(batch.keys, batch.values))
            batch = batch.take(np.flatnonzero(mask))
        else:  # map_values
            batch = RecordBatch(batch.keys, op.vec(batch.values))
        counts.append(len(batch))
        # Left-fold sum over the per-record sizes, matching the scalar
        # path's summation order (np.sum is pairwise — not equivalent).
        sums.append(float(sum(batch.sizes_array().tolist())))
    return batch, counts, sums


class RDD:
    """Base class: lineage node with lazy transformations and actions."""

    def __init__(
        self,
        ctx: "AnalyticsContext",
        deps: List[Dependency],
        op_name: str,
        compute_factor: float = 1.0,
    ) -> None:
        self.ctx = ctx
        self.id = ctx.next_rdd_id()
        self.deps = deps
        self.op_name = op_name
        self.compute_factor = compute_factor
        self._cached = False
        self._signature: Optional[str] = None

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        """Partition count; narrow RDDs inherit their (first) parent's."""
        return self.deps[0].parent.num_partitions

    @property
    def partitioner(self) -> Optional[Partitioner]:
        """How this RDD's records are known to be partitioned, if at all."""
        return None

    @property
    def size_scale(self) -> float:
        """Multiplier from physical record bytes to virtual bytes."""
        return max(dep.parent.size_scale for dep in self.deps)

    @property
    def signature(self) -> str:
        """Structural stage signature (paper §III-A).

        A stable hash over the operation name and the parents' signatures
        — *not* over partition counts or RDD ids — so the repeated stages
        of an iterative workload (KMeans stages 12-17) share one
        signature and one CHOPPER config entry / trained model.
        """
        if self._signature is None:
            h = hashlib.blake2b(digest_size=8)
            h.update(self.op_name.encode())
            for dep in self.deps:
                tag = b"S" if isinstance(dep, ShuffleDependency) else b"N"
                h.update(tag)
                h.update(dep.parent.signature.encode())
            self._signature = h.hexdigest()
        return self._signature

    def shuffle_deps(self) -> List[ShuffleDependency]:
        return [d for d in self.deps if isinstance(d, ShuffleDependency)]

    def narrow_deps(self) -> List[NarrowDependency]:
        return [d for d in self.deps if isinstance(d, NarrowDependency)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def compute(self, split: int, task: TaskContext) -> List:
        """Produce this RDD's records for one partition (subclass hook)."""
        raise NotImplementedError

    def materialize(self, split: int, task: TaskContext) -> List:
        """Compute (or fetch from cache) one partition, with accounting.

        The step's compute is priced on ``max(input, output)`` virtual
        bytes: a step that expands data pays for its output, a step that
        collapses a big partition into a small aggregate still pays for
        scanning the partition.
        """
        if self._cached:
            block = self.ctx.block_store.get(self.id, split)
            if block is not None:
                task.note_cache_read(block.nbytes, src_node=block.node)
                task.rdd_bytes[self.id] = block.nbytes
                return block.records
        records = self.compute(split, task)
        raw_bytes = (
            estimate_partition_size(
                records, vectorized=self.ctx.conf.vectorized_kernels
            )
            * self.size_scale
        )
        input_bytes = task.input_hints.get(self.id, 0.0)
        for dep in self.narrow_deps():
            input_bytes = max(input_bytes, task.rdd_bytes.get(dep.parent.id, 0.0))
        work_bytes = max(raw_bytes, input_bytes)
        task.note_compute(work_bytes * self.compute_factor, len(records), work_bytes)
        task.rdd_bytes[self.id] = raw_bytes
        if self._cached and not task.probe:
            self.ctx.block_store.put(self.id, split, records, raw_bytes, task.node)
        return records

    def materialize_batch(
        self, split: int, task: TaskContext
    ) -> Union[List, "RecordBatch"]:
        """Like :meth:`materialize`, but may return a columnar batch.

        Only callers prepared for a :class:`RecordBatch` (the map-task
        shuffle write path) use this; the base implementation is the
        plain list path. Accounting is identical either way.
        """
        return self.materialize(split, task)

    # ------------------------------------------------------------------
    # Caching
    # ------------------------------------------------------------------

    def cache(self) -> "RDD":
        """Keep computed partitions in the block store."""
        self._cached = True
        return self

    persist = cache

    def unpersist(self) -> "RDD":
        self._cached = False
        self.ctx.block_store.evict_rdd(self.id)
        return self

    @property
    def is_cached(self) -> bool:
        return self._cached

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def map_partitions(
        self,
        fn: Callable[[int, List], List],
        op_name: str = "mapPartitions",
        preserves_partitioning: bool = False,
        cost: float = 1.0,
        out_scale: Optional[float] = None,
        record_op: Optional[RecordOp] = None,
    ) -> "RDD":
        """Apply ``fn(split_index, records) -> records`` per partition.

        ``cost`` is this step's compute weight (seconds per virtual byte
        relative to the engine baseline) — workloads use it to declare
        that e.g. a distance computation is heavier than a projection.

        ``out_scale`` overrides the output's virtual-size multiplier. By
        default the parent's ``size_scale`` is inherited (right for 1:1
        record transforms); an *aggregating* step whose output is
        physically true-sized (per-partition sums, sketches) must pass
        ``out_scale=1.0`` or its few output records would be billed as
        gigabytes.
        """
        return MapPartitionsRDD(
            self, fn, op_name, preserves_partitioning, cost, out_scale,
            record_op=record_op,
        )

    def map(self, f: Callable, cost: float = 1.0, vec: Optional[Callable] = None) -> "RDD":
        return self.map_partitions(
            lambda _s, recs: [f(r) for r in recs], op_name="map", cost=cost,
            record_op=RecordOp("map", f, vec),
        )

    def flat_map(self, f: Callable, cost: float = 1.0) -> "RDD":
        return self.map_partitions(
            lambda _s, recs: [y for r in recs for y in f(r)],
            op_name="flatMap",
            cost=cost,
        )

    def filter(
        self, pred: Callable, cost: float = 1.0, vec: Optional[Callable] = None
    ) -> "RDD":
        return self.map_partitions(
            lambda _s, recs: [r for r in recs if pred(r)],
            op_name="filter",
            preserves_partitioning=True,
            cost=cost,
            record_op=RecordOp("filter", pred, vec),
        )

    def glom(self) -> "RDD":
        return self.map_partitions(lambda _s, recs: [recs], op_name="glom")

    def key_by(self, f: Callable) -> "RDD":
        return self.map_partitions(
            lambda _s, recs: [(f(r), r) for r in recs], op_name="keyBy"
        )

    def keys(self) -> "RDD":
        # NOT partitioning-preserving: the records change from (k, v) to
        # k, so a downstream op keying on record[0] would mis-read the
        # inherited partitioner and skip a needed shuffle (caught by the
        # oracle property tests). Matches Spark, where keys() is a map.
        return self.map_partitions(
            lambda _s, recs: [k for k, _v in recs],
            op_name="keys",
        )

    def values(self) -> "RDD":
        def _second(record):
            _k, v = record
            return v

        return self.map_partitions(
            lambda _s, recs: [v for _k, v in recs],
            op_name="values",
            record_op=RecordOp("map", _second),
        )

    def map_values(
        self, f: Callable, cost: float = 1.0, vec: Optional[Callable] = None
    ) -> "RDD":
        return self.map_partitions(
            lambda _s, recs: [(k, f(v)) for k, v in recs],
            op_name="mapValues",
            preserves_partitioning=True,
            cost=cost,
            record_op=RecordOp("map_values", f, vec),
        )

    def flat_map_values(self, f: Callable, cost: float = 1.0) -> "RDD":
        return self.map_partitions(
            lambda _s, recs: [(k, y) for k, v in recs for y in f(v)],
            op_name="flatMapValues",
            preserves_partitioning=True,
            cost=cost,
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli sample of each partition (deterministic per split)."""
        if not 0.0 <= fraction <= 1.0:
            raise WorkloadError(f"sample fraction must be in [0, 1], got {fraction}")

        def _sample(split: int, recs: List) -> List:
            rng = seeded_rng(derive_seed(seed, "sample", split))
            mask = rng.random(len(recs)) < fraction
            return [r for r, keep in zip(recs, mask) if keep]

        return self.map_partitions(_sample, op_name="sample", preserves_partitioning=True)

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.ctx, [self, other])

    def zip_with_index(self) -> "RDD":
        """Pair each record with its global index (Spark's zipWithIndex).

        Like Spark, this runs a lightweight counting job first to learn
        the per-partition offsets.
        """
        counts = self.ctx.run_job(self, lambda _s, recs: len(recs))
        offsets = [0]
        for count in counts[:-1]:
            offsets.append(offsets[-1] + count)

        return self.map_partitions(
            lambda s, recs: [
                (r, offsets[s] + i) for i, r in enumerate(recs)
            ],
            op_name="zipWithIndex",
        )

    def subtract(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Records of self that do not appear in ``other``."""
        left = self.map_partitions(
            lambda _s, recs: [(r, True) for r in recs], op_name="subtractLeft"
        )
        right = other.map_partitions(
            lambda _s, recs: [(r, False) for r in recs], op_name="subtractRight"
        )
        grouped = left.cogroup(right, num_partitions=num_partitions)
        return grouped.map_partitions(
            lambda _s, recs: [
                k for k, (mine, theirs) in recs for _ in mine if not theirs
            ],
            op_name="subtract",
        )

    def intersection(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Distinct records present in both RDDs."""
        left = self.map_partitions(
            lambda _s, recs: [(r, True) for r in recs], op_name="intersectLeft"
        )
        right = other.map_partitions(
            lambda _s, recs: [(r, True) for r in recs], op_name="intersectRight"
        )
        grouped = left.cogroup(right, num_partitions=num_partitions)
        return grouped.map_partitions(
            lambda _s, recs: [
                k for k, (mine, theirs) in recs if mine and theirs
            ],
            op_name="intersection",
        )

    def coalesce(self, num_partitions: int, shuffle: bool = False) -> "RDD":
        """Reduce the partition count, without (default) or with a shuffle."""
        if shuffle:
            return self.repartition(num_partitions)
        if num_partitions >= self.num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD":
        """Round-robin reshuffle into ``num_partitions`` partitions."""
        from repro.engine.shuffled import ShuffledRDD

        def _tag(split: int, recs: List) -> List:
            return [((split + i) % num_partitions, r) for i, r in enumerate(recs)]

        tagged = self.map_partitions(_tag, op_name="repartitionTag")
        shuffled = ShuffledRDD(
            tagged,
            HashPartitioner(num_partitions),
            mode="identity",
            op_name="repartition",
        )
        return shuffled.values()

    # ------------------------------------------------------------------
    # Shuffle transformations (delegate to repro.engine.shuffled)
    # ------------------------------------------------------------------

    def _default_partitioner(self, num_partitions: Optional[int]) -> Partitioner:
        """Spark's defaultPartitioner: reuse a parent partitioner if any."""
        if num_partitions is None:
            if self.partitioner is not None:
                return self.partitioner
            return HashPartitioner(self.ctx.default_parallelism)
        return HashPartitioner(num_partitions)

    def combine_by_key(
        self,
        create_combiner: Callable,
        merge_value: Callable,
        merge_combiners: Callable,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
        map_side_combine: bool = True,
        op_name: str = "combineByKey",
        numeric_add: bool = False,
    ) -> "RDD":
        from repro.engine.shuffled import ShuffledRDD

        part = partitioner or self._default_partitioner(num_partitions)
        agg = Aggregator(
            create_combiner, merge_value, merge_combiners, numeric_add=numeric_add
        )
        return ShuffledRDD(
            self,
            part,
            mode="aggregate",
            aggregator=agg,
            map_side_combine=map_side_combine,
            op_name=op_name,
            user_fixed=(partitioner is not None or num_partitions is not None),
        )

    def reduce_by_key(
        self,
        fn: Callable,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
        numeric_add: bool = False,
        map_side_combine: bool = True,
    ) -> "RDD":
        """Fold values per key with ``fn``.

        Pass ``numeric_add=True`` when ``fn`` is plain scalar addition
        (``lambda a, b: a + b`` over ints or floats) to let the executor
        use the vectorized map-side combine; see
        :class:`~repro.engine.dependencies.Aggregator`.
        ``map_side_combine=False`` ships raw records through the shuffle
        (more shuffle volume — useful for shuffle-bound workloads).
        """
        return self.combine_by_key(
            lambda v: v, fn, fn,
            num_partitions=num_partitions,
            partitioner=partitioner,
            map_side_combine=map_side_combine,
            op_name="reduceByKey",
            numeric_add=numeric_add,
        )

    def aggregate_by_key(
        self,
        zero: Any,
        seq_op: Callable,
        comb_op: Callable,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        def _create(v: Any) -> Any:
            return seq_op(_copy_zero(zero), v)

        return self.combine_by_key(
            _create, seq_op, comb_op,
            num_partitions=num_partitions,
            partitioner=partitioner,
            op_name="aggregateByKey",
        )

    def group_by_key(
        self,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        from repro.engine.shuffled import ShuffledRDD

        part = partitioner or self._default_partitioner(num_partitions)
        return ShuffledRDD(
            self, part, mode="group", op_name="groupByKey",
            user_fixed=(partitioner is not None or num_partitions is not None),
        )

    def group_by(self, f: Callable, num_partitions: Optional[int] = None) -> "RDD":
        return self.key_by(f).group_by_key(num_partitions=num_partitions)

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        paired = self.map_partitions(
            lambda _s, recs: [(r, None) for r in recs], op_name="distinctPair"
        )
        return paired.reduce_by_key(
            lambda a, _b: a, num_partitions=num_partitions
        ).keys()

    def partition_by(self, partitioner: Partitioner) -> "RDD":
        from repro.engine.shuffled import ShuffledRDD

        if self.partitioner is not None and self.partitioner == partitioner:
            return self
        return ShuffledRDD(
            self, partitioner, mode="identity", op_name="partitionBy",
            user_fixed=True,
        )

    def sort_by_key(
        self, num_partitions: Optional[int] = None, sample_seed: int = 0
    ) -> "RDD":
        from repro.engine.partitioner import RangePartitioner
        from repro.engine.shuffled import ShuffledRDD

        n = num_partitions or self.ctx.default_parallelism
        sample = self.ctx.sample_keys(self, max_partitions=4)
        part = RangePartitioner.from_sample(sample, n, seed=sample_seed)
        return ShuffledRDD(
            self, part, mode="identity", sort=True, op_name="sortByKey",
            user_fixed=(num_partitions is not None),
        )

    def cogroup(
        self,
        other: "RDD",
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        from repro.engine.shuffled import CogroupRDD

        part = partitioner or self._cogroup_default_partitioner(other, num_partitions)
        return CogroupRDD(
            self.ctx, [self, other], part,
            user_fixed=(partitioner is not None or num_partitions is not None),
        )

    def _cogroup_default_partitioner(
        self, other: "RDD", num_partitions: Optional[int]
    ) -> Partitioner:
        if num_partitions is None:
            for rdd in (self, other):
                if rdd.partitioner is not None:
                    return rdd.partitioner
            return HashPartitioner(self.ctx.default_parallelism)
        return HashPartitioner(num_partitions)

    def join(
        self,
        other: "RDD",
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        grouped = self.cogroup(other, num_partitions, partitioner)
        return grouped.map_partitions(
            lambda _s, recs: [
                (k, (a, b)) for k, (left, right) in recs for a in left for b in right
            ],
            op_name="join",
            preserves_partitioning=True,
        )

    def left_outer_join(
        self,
        other: "RDD",
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        grouped = self.cogroup(other, num_partitions, partitioner)

        def _expand(_s: int, recs: List) -> List:
            out = []
            for k, (left, right) in recs:
                for a in left:
                    if right:
                        out.extend((k, (a, b)) for b in right)
                    else:
                        out.append((k, (a, None)))
            return out

        return grouped.map_partitions(
            _expand, op_name="leftOuterJoin", preserves_partitioning=True
        )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self) -> List:
        parts = self.ctx.run_job(self, lambda _s, recs: recs)
        return [r for part in parts for r in part]

    def count(self) -> int:
        return sum(self.ctx.run_job(self, lambda _s, recs: len(recs)))

    def first(self) -> Any:
        for part in self.ctx.run_job(self, lambda _s, recs: recs[:1]):
            if part:
                return part[0]
        raise WorkloadError("first() on an empty RDD")

    def take(self, n: int) -> List:
        out: List = []
        for part in self.ctx.run_job(self, lambda _s, recs: recs[: max(n, 0)]):
            out.extend(part)
            if len(out) >= n:
                return out[:n]
        return out

    def reduce(self, fn: Callable) -> Any:
        sentinel = object()

        def _part(_s: int, recs: List) -> Any:
            acc: Any = sentinel
            for r in recs:
                acc = r if acc is sentinel else fn(acc, r)
            return acc

        partials = [p for p in self.ctx.run_job(self, _part) if p is not sentinel]
        if not partials:
            raise WorkloadError("reduce() on an empty RDD")
        acc = partials[0]
        for p in partials[1:]:
            acc = fn(acc, p)
        return acc

    def aggregate(self, zero: Any, seq_op: Callable, comb_op: Callable) -> Any:
        def _part(_s: int, recs: List) -> Any:
            acc = _copy_zero(zero)
            for r in recs:
                acc = seq_op(acc, r)
            return acc

        acc = _copy_zero(zero)
        for p in self.ctx.run_job(self, _part):
            acc = comb_op(acc, p)
        return acc

    def tree_aggregate(
        self, zero: Any, seq_op: Callable, comb_op: Callable, scale: int = 8
    ) -> Any:
        """Aggregate with an intermediate shuffle level (Spark's treeAggregate).

        Partials are combined into ``scale`` groups by a shuffle before the
        driver merge — the pattern PCA uses, and a shuffle CHOPPER can tune.
        """
        if scale < 1:
            raise WorkloadError("tree_aggregate scale must be >= 1")

        def _part(split: int, recs: List) -> List:
            acc = _copy_zero(zero)
            for r in recs:
                acc = seq_op(acc, r)
            return [(split % scale, acc)]

        partials = self.map_partitions(_part, op_name="treeAggregatePartials")
        combined = partials.reduce_by_key(comb_op, num_partitions=scale)
        acc = _copy_zero(zero)
        for _k, v in combined.collect():
            acc = comb_op(acc, v)
        return acc

    def fold(self, zero: Any, fn: Callable) -> Any:
        """Aggregate with a zero value and one associative function."""
        return self.aggregate(zero, fn, fn)

    def take_ordered(self, n: int, key: Optional[Callable] = None) -> List:
        """The ``n`` smallest records (by ``key``), globally ordered."""
        key = key or (lambda r: r)

        def _part(_s: int, recs: List) -> List:
            return sorted(recs, key=key)[: max(n, 0)]

        candidates: List = []
        for part in self.ctx.run_job(self, _part):
            candidates.extend(part)
        return sorted(candidates, key=key)[:n]

    def top(self, n: int, key: Optional[Callable] = None) -> List:
        """The ``n`` largest records (by ``key``), descending."""
        key = key or (lambda r: r)

        def _part(_s: int, recs: List) -> List:
            return sorted(recs, key=key, reverse=True)[: max(n, 0)]

        candidates: List = []
        for part in self.ctx.run_job(self, _part):
            candidates.extend(part)
        return sorted(candidates, key=key, reverse=True)[:n]

    def max(self) -> Any:
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> Any:
        return self.reduce(lambda a, b: a if a <= b else b)

    def stats(self) -> Dict[str, float]:
        """Count/mean/min/max/stdev of a numeric RDD in one pass."""

        def _part(_s: int, recs: List):
            if not recs:
                return (0, 0.0, 0.0, float("inf"), float("-inf"))
            total = float(sum(recs))
            sq = float(sum(r * r for r in recs))
            return (len(recs), total, sq, float(min(recs)), float(max(recs)))

        count, total, sq = 0, 0.0, 0.0
        lo, hi = float("inf"), float("-inf")
        for n, t, s, p_lo, p_hi in self.ctx.run_job(self, _part):
            count += n
            total += t
            sq += s
            lo = min(lo, p_lo)
            hi = max(hi, p_hi)
        if count == 0:
            raise WorkloadError("stats() on an empty RDD")
        mean = total / count
        variance = max(sq / count - mean * mean, 0.0)
        return {
            "count": float(count),
            "mean": mean,
            "min": lo,
            "max": hi,
            "stdev": variance**0.5,
        }

    def sum(self) -> float:
        return float(
            sum(self.ctx.run_job(self, lambda _s, recs: sum(recs) if recs else 0))
        )

    def mean(self) -> float:
        total, count = 0.0, 0
        for part_sum, part_n in self.ctx.run_job(
            self, lambda _s, recs: (sum(recs), len(recs))
        ):
            total += part_sum
            count += part_n
        if count == 0:
            raise WorkloadError("mean() on an empty RDD")
        return total / count

    def count_by_key(self) -> Dict:
        counts: Dict = {}
        for part in self.ctx.run_job(
            self, lambda _s, recs: [(k, 1) for k, _v in recs]
        ):
            for k, n in part:
                counts[k] = counts.get(k, 0) + n
        return counts

    def collect_as_map(self) -> Dict:
        return dict(self.collect())

    def take_sample(self, n: int, seed: int = 0) -> List:
        """Uniform sample of ``n`` records without replacement."""
        records = self.collect()
        if n >= len(records):
            return records
        rng = seeded_rng(derive_seed(seed, "takeSample"))
        idx = rng.choice(len(records), size=n, replace=False)
        return [records[i] for i in sorted(idx)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id}, op={self.op_name!r})"


def _copy_zero(zero: Any) -> Any:
    """Fresh copy of an aggregation zero value (guards mutable zeros)."""
    import copy

    return copy.deepcopy(zero)


class SourceRDD(RDD):
    """A re-splittable source: records generated per (split, num_splits).

    ``generator(split, num_splits)`` must deterministically return the
    records of one partition. Because partition contents are a pure
    function of the split count, CHOPPER can change a source stage's
    parallelism (``set_num_partitions``) without changing the dataset —
    the engine-side hook for tuning stage-0 granularity.
    """

    def __init__(
        self,
        ctx: "AnalyticsContext",
        generator: Callable[[int, int], List],
        num_partitions: int,
        size_scale: float = 1.0,
        op_name: str = "source",
        cost: float = 1.0,
        version: Optional[str] = None,
    ) -> None:
        super().__init__(ctx, [], op_name, compute_factor=cost)
        if num_partitions < 1:
            raise ConfigurationError("source needs at least one partition")
        self._generator = generator
        self._num_partitions = num_partitions
        self._size_scale = size_scale
        # A content version (hash of the generator's identity) makes the
        # source eligible for zone maps and result caching; unversioned
        # sources are never described or cached. The relational layer
        # fills ``zone_map_spec`` when a consumer could use the maps.
        self.dataset_version = version
        self.zone_map_spec = None

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    @property
    def size_scale(self) -> float:
        return self._size_scale

    @property
    def signature(self) -> str:
        if self._signature is None:
            h = hashlib.blake2b(digest_size=8)
            h.update(b"source:")
            h.update(self.op_name.encode())
            self._signature = h.hexdigest()
        return self._signature

    def set_num_partitions(self, num_partitions: int) -> None:
        """Re-split the source (CHOPPER stage-0 tuning hook)."""
        if num_partitions < 1:
            raise ConfigurationError("source needs at least one partition")
        if self._cached:
            self.ctx.block_store.evict_rdd(self.id)
        self._num_partitions = num_partitions

    def compute(self, split: int, task: TaskContext) -> List:
        records = list(self._generator(split, self._num_partitions))
        nbytes = (
            estimate_partition_size(
                records, vectorized=self.ctx.conf.vectorized_kernels
            )
            * self._size_scale
        )
        task.note_input(nbytes)
        spec = self.zone_map_spec
        if spec is not None:
            # Record zone maps as a pure observer: a deterministic
            # function of the split's records, deferred through the
            # task-effects sink (replayed in grant order on the driver)
            # and idempotent across retries/speculation, so it never
            # touches simulated time or result identity.
            key = (spec.table, spec.version, self._num_partitions)
            store = self.ctx.zone_maps
            if not store.has(key, split):
                from repro.relational.stats import collect_column_stats

                stats = collect_column_stats(records, spec.columns)
                sink = effects.active()
                if sink is not None:
                    sink.ops.append(("zone_map", key, split, stats))
                else:
                    store.put(key, split, stats)
        return records


class MapPartitionsRDD(RDD):
    """Narrow one-to-one transformation of the parent's partitions."""

    def __init__(
        self,
        parent: RDD,
        fn: Callable[[int, List], List],
        op_name: str,
        preserves_partitioning: bool = False,
        cost: float = 1.0,
        out_scale: Optional[float] = None,
        record_op: Optional[RecordOp] = None,
    ) -> None:
        super().__init__(
            parent.ctx, [OneToOneDependency(parent)], op_name, compute_factor=cost
        )
        self._fn = fn
        self._preserves = preserves_partitioning
        self._out_scale = out_scale
        self._record_op = record_op

    @property
    def partitioner(self) -> Optional[Partitioner]:
        return self.deps[0].parent.partitioner if self._preserves else None

    @property
    def size_scale(self) -> float:
        if self._out_scale is not None:
            return self._out_scale
        return self.deps[0].parent.size_scale

    def compute(self, split: int, task: TaskContext) -> List:
        parent_records = self.deps[0].parent.materialize(split, task)
        return list(self._fn(split, parent_records))

    # ------------------------------------------------------------------
    # Operator fusion
    # ------------------------------------------------------------------

    def _fusion_chain(self) -> Optional[List["MapPartitionsRDD"]]:
        """The longest fusible narrow chain ending at this RDD, or None.

        Fusible steps are per-record ops (map / filter / mapValues, which
        carry a :class:`RecordOp`); the chain breaks at a cached
        intermediate (its partitions must land in the block store), at
        any partition-level op (mapPartitions, flatMap, sample, ...) and
        at stage boundaries. A chain needs >= 2 steps to be worth fusing.
        """
        if self._record_op is None or not self.ctx.conf.operator_fusion:
            return None
        chain: List[MapPartitionsRDD] = [self]
        node = self.deps[0].parent
        while (
            isinstance(node, MapPartitionsRDD)
            and node._record_op is not None
            and not node._cached
        ):
            chain.append(node)
            node = node.deps[0].parent
        if len(chain) < 2:
            return None
        chain.reverse()
        return chain

    def _note_chain(
        self,
        chain: List["MapPartitionsRDD"],
        counts: List[int],
        sums: List[float],
        task: TaskContext,
    ) -> None:
        """Replay :meth:`RDD.materialize`'s per-step accounting, exactly."""
        for step, count, raw_sum in zip(chain, counts, sums):
            raw_bytes = raw_sum * step.size_scale
            input_bytes = task.input_hints.get(step.id, 0.0)
            for dep in step.narrow_deps():
                input_bytes = max(
                    input_bytes, task.rdd_bytes.get(dep.parent.id, 0.0)
                )
            work_bytes = max(raw_bytes, input_bytes)
            task.note_compute(
                work_bytes * step.compute_factor, count, work_bytes
            )
            task.rdd_bytes[step.id] = raw_bytes

    def materialize(self, split: int, task: TaskContext) -> List:
        chain = self._fusion_chain()
        if chain is None:
            return super().materialize(split, task)
        if self._cached:
            block = self.ctx.block_store.get(self.id, split)
            if block is not None:
                task.note_cache_read(block.nbytes, src_node=block.node)
                task.rdd_bytes[self.id] = block.nbytes
                return block.records
        base_records = chain[0].deps[0].parent.materialize(split, task)
        records, counts, sums = _run_chain(chain, base_records)
        self._note_chain(chain, counts, sums, task)
        if self._cached and not task.probe:
            self.ctx.block_store.put(
                self.id, split, records, task.rdd_bytes[self.id], task.node
            )
        return records

    def materialize_batch(
        self, split: int, task: TaskContext
    ) -> Union[List, RecordBatch]:
        conf = self.ctx.conf
        chain = self._fusion_chain()
        if chain is None or self._cached:
            # Cached tops keep list blocks in the store (one container
            # type for cache consumers); materialize() handles both the
            # cache hit and the loop-fused recompute.
            return self.materialize(split, task)
        base_records = chain[0].deps[0].parent.materialize(split, task)
        batch: Optional[RecordBatch] = None
        if (
            conf.record_format == "columnar"
            and conf.vectorized_kernels
            and base_records
            and all(step._record_op.vec is not None for step in chain)
        ):
            batch = RecordBatch.from_records(base_records)
            if batch is not None and not (
                isinstance(batch.keys, np.ndarray)
                and isinstance(batch.values, np.ndarray)
            ):
                batch = None  # vec kernels consume ndarray columns only
        if batch is not None:
            out, counts, sums = _run_chain_vec(chain, batch)
            self._note_chain(chain, counts, sums, task)
            return out
        records, counts, sums = _run_chain(chain, base_records)
        self._note_chain(chain, counts, sums, task)
        return records


class UnionRDD(RDD):
    """Concatenation of several RDDs' partition lists (narrow)."""

    def __init__(self, ctx: "AnalyticsContext", parents: List[RDD]) -> None:
        if not parents:
            raise ConfigurationError("union needs at least one parent")
        deps: List[Dependency] = []
        offset = 0
        for parent in parents:
            deps.append(RangeNarrowDependency(parent, offset, parent.num_partitions))
            offset += parent.num_partitions
        super().__init__(ctx, deps, "union")
        self._num_partitions = offset

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def compute(self, split: int, task: TaskContext) -> List:
        for dep in self.deps:
            locals_ = dep.parent_partitions(split)
            if locals_:
                return dep.parent.materialize(locals_[0], task)
        raise ConfigurationError(f"union split {split} out of range")


class CoalescedRDD(RDD):
    """Merge contiguous groups of parent partitions without a shuffle."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        super().__init__(
            parent.ctx, [CoalesceDependency(parent, num_partitions)], "coalesce"
        )
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def compute(self, split: int, task: TaskContext) -> List:
        dep = self.deps[0]
        records: List = []
        for parent_split in dep.parent_partitions(split):
            records.extend(dep.parent.materialize(parent_split, task))
        return records


class PartitionSubsetRDD(RDD):
    """A pruned view of a parent: child split *i* is parent ``kept[i]``.

    The lowering of a partition-pruned scan. Because the subset is part
    of the lineage (not a scheduling-time filter), every consumer —
    stage building, chaos resubmission, AQE re-planning, preferred
    locations — sees only the kept partitions; the skipped ones never
    become tasks anywhere.
    """

    def __init__(self, parent: RDD, kept) -> None:
        kept = tuple(kept)
        total = parent.num_partitions
        if not kept:
            raise ConfigurationError("partition subset cannot be empty")
        for p in kept:
            if not 0 <= p < total:
                raise ConfigurationError(
                    f"subset partition {p} out of range 0..{total - 1}"
                )
        super().__init__(
            parent.ctx,
            [SubsetDependency(parent, kept)],
            op_name=f"subset[{len(kept)}/{total}]",
        )
        self.kept = kept

    @property
    def num_partitions(self) -> int:
        return len(self.kept)

    @property
    def pruned_count(self) -> int:
        """How many parent partitions this subset skips."""
        return self.deps[0].parent.num_partitions - len(self.kept)

    @property
    def signature(self) -> str:
        if self._signature is None:
            h = hashlib.blake2b(digest_size=8)
            h.update(b"subset:")
            h.update(self.deps[0].parent.signature.encode())
            h.update(repr(self.kept).encode())
            self._signature = h.hexdigest()
        return self._signature

    def compute(self, split: int, task: TaskContext) -> List:
        return self.deps[0].parent.materialize(self.kept[split], task)


def parallelize_generator(data: List, split: int, num_splits: int) -> List:
    """Slice ``data`` into ``num_splits`` nearly equal contiguous chunks."""
    n = len(data)
    start = (split * n) // num_splits
    end = ((split + 1) * n) // num_splits
    return data[start:end]

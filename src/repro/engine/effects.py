"""Deferred task side effects: the heart of deterministic task parallelism.

With ``EngineConf.physical_parallelism > 1`` the task scheduler executes
the bodies of concurrently-granted attempts on a thread pool. Running
task code concurrently is only sound if it cannot race on shared engine
state — so while a worker thread runs, every touch of shared state
(block-store reads/writes, shuffle fetches/puts, metric counters,
accumulator adds) is *recorded* into the attempt's :class:`TaskEffects`
instead of being performed. The scheduler then **applies** each
attempt's effects on the driver thread in grant order — the exact order
serial execution would have produced — after validating that nothing
the thread read has changed underneath it. Invalid (or failed) attempts
are simply re-executed inline at their serial position, so the fallback
is always the bit-exact serial semantics.

The active sink is thread-local: worker threads see their own
:class:`TaskEffects`, the driver thread sees none and mutates state
directly (the unchanged serial path).
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

# Task payloads (specs, records, results) cross process boundaries with
# pickle protocol 5: ndarray-backed containers — RecordBatch columns in
# particular — serialize as raw buffer bytes instead of per-element
# Python objects, which is what keeps the process pool "pickle-light".
PICKLE_PROTOCOL = 5


def dumps_payload(obj: Any) -> bytes:
    """Serialize a cross-process task payload (protocol 5)."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def loads_payload(blob: bytes) -> Any:
    """Deserialize a payload produced by :func:`dumps_payload`."""
    return pickle.loads(blob)

# Op tags recorded in TaskEffects.ops, replayed in order at apply time:
#   ("cache_get", key, block)        - validated: the key still maps to
#                                      the identical block (or None);
#                                      replayed as an LRU touch.
#   ("cache_get_own", key)           - read of the task's own deferred
#                                      put; replayed as an LRU touch.
#   ("cache_put", key, records, nbytes, node)
#   ("shuffle_read", shuffle_id, version)
#                                    - validated: the shuffle's version
#                                      counter is unchanged.
#   ("shuffle_put", shuffle_id, map_id, node, partitioned)
#                                    - replayed via put_map_output; the
#                                      returned byte count feeds the
#                                      task's shuffle-write note.
#   ("counter", counter, value)      - a pre-bound Counter object.
#   ("metric", name, labels, value)  - a lazily-created labeled counter.
#   ("acc", accumulator, value)      - an accumulator fold.
#   ("zone_map", key, split, stats)  - zone-map statistics of one scanned
#                                      partition; replayed as a put into
#                                      ctx.zone_maps (idempotent: stats
#                                      are a pure function of the split).
#   ("log", level, logger, event, fields)
#                                    - a structured log record; emitted
#                                      through ctx.obs.log_event at the
#                                      attempt's serial position, so the
#                                      event log stays byte-identical to
#                                      serial execution (fields is a
#                                      tuple of (key, value) pairs).


class TaskEffects:
    """Recorded shared-state interactions of one deferred task attempt."""

    def __init__(self) -> None:
        self.ops: List[Tuple[Any, ...]] = []
        # Own deferred cache puts, visible to this task's later reads.
        self.cache_writes: Dict[Tuple[int, int], Any] = {}
        self.tctx: Any = None
        self.result: Any = None
        self.exception: Optional[BaseException] = None


_local = threading.local()


def active() -> Optional[TaskEffects]:
    """The sink of the current thread, or None on the driver thread."""
    return getattr(_local, "sink", None)


def activate(effects: TaskEffects) -> None:
    _local.sink = effects


def deactivate() -> None:
    _local.sink = None


# One process-wide worker pool, shared by every context so that sweep
# drivers creating thousands of short-lived contexts don't churn
# threads. Grown (never shrunk) to the largest parallelism requested.
_pool: Optional[ThreadPoolExecutor] = None
_pool_size = 0


def worker_pool(workers: int) -> ThreadPoolExecutor:
    global _pool, _pool_size
    if _pool is None or _pool_size < workers:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-task"
        )
        _pool_size = workers
    return _pool

"""Columnar record batches for the shuffle hot path.

A :class:`RecordBatch` holds one partition's key-value pairs as two
*columns* instead of a list of 2-tuples. Homogeneous scalar columns are
numpy arrays (``int64`` / ``float64`` / unicode); everything else stays a
plain Python list column. The conversion is **loss-free by construction**:
``from_records`` only lifts a column to an array when the round trip back
to Python scalars is provably exact, otherwise the column stays a list —
so ``to_records`` always reproduces the original tuples value-for-value
(and type-for-type: ``int`` stays ``int``, ``str`` stays ``str``).

Why this exists: list-of-tuples shuffle blocks pay a Python object per
record on every bucket/concat/fold step. A batch partitions with one
``argsort``, slices buckets as array views, concatenates with
``np.concatenate`` and folds per key with ``np.add.at`` — while byte
accounting (:meth:`RecordBatch.sizes_array`) reproduces
``estimate_size((k, v))`` bit-for-bit, keeping the paper's Fig. 4 virtual
shuffle volumes unchanged.

Exactness guards (mirroring ``repro.common.sizing`` / ``partitioner``):

* str columns: numpy's fixed-width buffers pad with NULs, so a *trailing*
  NUL is lost in the round trip. Columns whose total ``str_len`` differs
  from the Python lengths stay lists.
* int columns: values outside int64 stay lists (``OverflowError``).
* bool is a subclass of int but ``True + True == 2`` has a different type
  story; ``type is int`` checks keep bool columns as lists.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.sizing import estimate_size, sizes_array

# One column: a numpy array (U / int64 / float64) or a plain Python list.
Column = Union[np.ndarray, List[Any]]

_PRIMITIVE_BYTES = 8.0
_CONTAINER_OVERHEAD = 16.0
# estimate_size of a 2-tuple before its elements:
# _CONTAINER_OVERHEAD + 2 * _PER_ELEMENT_OVERHEAD.
_PAIR_BASE = 24.0


def _lift(items: List[Any]) -> Column:
    """Lift a Python column to an ndarray when the round trip is exact."""
    if not items:
        return items
    kinds = set(map(type, items))
    if kinds == {str}:
        arr = np.array(items)
        # Trailing NULs are indistinguishable from buffer padding; if any
        # string lost length in the round trip, keep the list.
        if int(np.char.str_len(arr).sum()) == sum(map(len, items)):
            return arr
        return items
    if kinds == {int}:
        try:
            return np.array(items, dtype=np.int64)
        except OverflowError:
            return items
    if kinds == {float}:
        arr = np.array(items, dtype=np.float64)  # float64 is exact
        # NaNs group by *object identity* in dict-based folds (nan != nan
        # but `k in d` short-circuits on `is`); a round trip through the
        # array would mint fresh objects and change the grouping.
        if bool(np.isnan(arr).any()):
            return items
        return arr
    return items


def _normalize(col: Column) -> Column:
    """Keep only array dtypes whose ``tolist`` round trip is exact."""
    if isinstance(col, np.ndarray):
        if col.dtype.kind == "U":
            return col
        if col.dtype in (np.dtype(np.int64), np.dtype(np.float64)):
            return col
        return col.tolist()
    return col


class RecordBatch:
    """A partition of key-value records stored as two columns."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: Column, values: Column) -> None:
        self.keys = _normalize(keys)
        self.values = _normalize(values)

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        def _kind(col: Column) -> str:
            return str(col.dtype) if isinstance(col, np.ndarray) else "list"

        return (
            f"RecordBatch(n={len(self)}, keys={_kind(self.keys)}, "
            f"values={_kind(self.values)})"
        )

    def __reduce__(self):
        # Pickles as the two columns; under protocol 5 the ndarray buffers
        # serialize as raw bytes (optionally out-of-band), never as
        # per-element Python objects.
        return (RecordBatch, (self.keys, self.values))

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Tuple]) -> Optional["RecordBatch"]:
        """Columnarize a list of 2-tuples, or ``None`` if it isn't one.

        Only exact 2-tuples qualify (subclasses like namedtuples carry
        behaviour a column cannot represent). The caller keeps the list
        on ``None`` — the scalar path is always correct.
        """
        if not records or type(records[0]) is not tuple:
            return None
        if any(type(r) is not tuple or len(r) != 2 for r in records):
            return None
        return cls(
            _lift([r[0] for r in records]),
            _lift([r[1] for r in records]),
        )

    def to_records(self) -> List[Tuple]:
        """A fresh list of ``(key, value)`` tuples (caller owns it)."""
        keys = self.keys.tolist() if isinstance(self.keys, np.ndarray) else self.keys
        values = (
            self.values.tolist()
            if isinstance(self.values, np.ndarray)
            else self.values
        )
        return list(zip(keys, values))

    def keys_list(self) -> List[Any]:
        """Keys as Python scalars (fresh list for array columns)."""
        if isinstance(self.keys, np.ndarray):
            return self.keys.tolist()
        return list(self.keys)

    def to_shared(self, name: Optional[str] = None):
        """Park this batch in a shared-memory segment (registered once).

        Returns the tiny picklable :class:`~repro.engine.shm.SharedPayload`
        handle — segment name plus dtype/shape metadata and byte spans —
        that any pool worker can :meth:`from_shared` without copying the
        column bytes. The *caller's* process owns the segment (see
        :mod:`repro.engine.shm` lifecycle).
        """
        from repro.engine import shm

        return shm.encode_shared(self, name=name)

    @staticmethod
    def from_shared(payload, copy: bool = False):
        """Rebuild a batch from a :func:`to_shared` handle.

        ``copy=False`` returns column arrays viewing the shared segment
        directly (zero-copy; close the returned
        :class:`~repro.engine.shm.DecodedPayload` when done); ``copy=True``
        materializes private columns. ``_normalize`` keeps int64/float64/
        str arrays as-is, so the zero-copy view survives reconstruction.
        """
        from repro.engine import shm

        return shm.decode_shared(payload, copy=copy)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Select records by index array — array columns slice as views."""

        def _take(col: Column) -> Column:
            if isinstance(col, np.ndarray):
                return col[indices]
            return [col[i] for i in indices]

        return RecordBatch(_take(self.keys), _take(self.values))

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches column-wise, preserving record order."""

        def _cat(cols: List[Column]) -> Column:
            if all(isinstance(c, np.ndarray) for c in cols):
                if len({c.dtype.kind for c in cols}) == 1:
                    return np.concatenate(cols)
            out: List[Any] = []
            for c in cols:
                out.extend(c.tolist() if isinstance(c, np.ndarray) else c)
            return out

        return cls(
            _cat([b.keys for b in batches]),
            _cat([b.values for b in batches]),
        )

    # ------------------------------------------------------------------
    # Byte accounting
    # ------------------------------------------------------------------

    def sizes_array(self) -> np.ndarray:
        """Per-record ``estimate_size((k, v))``, bit-identical.

        Mirrors ``sizing.sizes_array``'s tuple recursion: pair base, then
        key sizes, then value sizes — the same left fold of the same
        float64 values, so shuffle accounting cannot drift between the
        columnar and list paths.
        """
        acc = _column_sizes(self.keys)
        acc = acc + _column_sizes(self.values)
        return _PAIR_BASE + acc


def _column_sizes(col: Column) -> np.ndarray:
    if isinstance(col, np.ndarray):
        if col.dtype.kind == "U":
            # float(len(s)) + container overhead, same as estimate_size.
            return np.char.str_len(col).astype(np.float64) + _CONTAINER_OVERHEAD
        return np.full(len(col), _PRIMITIVE_BYTES)
    arr = sizes_array(col)
    if arr is None:  # mixed column: exact scalar loop, then lift
        arr = np.array([estimate_size(v) for v in col], dtype=np.float64)
    return arr


def as_record_list(records: Union[List, RecordBatch]) -> List:
    """Materialize a records container as a plain list of tuples."""
    if isinstance(records, RecordBatch):
        return records.to_records()
    return records

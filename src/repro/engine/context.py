"""AnalyticsContext: the SparkContext of the simulated engine.

Owns the cluster model, the simulation clock, the shuffle manager, block
store, schedulers, metrics, and collected statistics. Workloads create
RDDs through it and run actions; CHOPPER attaches to it via
:meth:`set_advisor` (the dynamic-partitioning DAGScheduler extension) and
via the listener bus (the statistics collector).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster, paper_cluster
from repro.common.errors import ConfigurationError
from repro.common.rng import DEFAULT_SEED
from repro.common.sizing import estimate_size
from repro.engine import dependencies
from repro.engine.costmodel import CostModelConfig
from repro.engine.dag_scheduler import DAGScheduler
from repro.engine.listener import JobStats, ListenerBus, StageStats
from repro.engine.rdd import RDD, SourceRDD, parallelize_generator
from repro.engine.shuffle import ShuffleManager
from repro.engine.storage import BlockStore, SpillManager, ZoneMapStore
from repro.engine.task_scheduler import TaskScheduler
from repro.obs import MetricsRegistry, Observability
from repro.simul.engine import SimEngine
from repro.simul.metrics import MetricsRecorder


@dataclass
class EngineConf:
    """Engine configuration knobs.

    ``default_parallelism`` is the paper's vanilla baseline (300
    partitions for all workloads, §IV). ``copartition_scheduling`` turns
    on CHOPPER's co-partition-aware task placement.
    """

    default_parallelism: int = 300
    cost: CostModelConfig = field(default_factory=CostModelConfig)
    copartition_scheduling: bool = False
    task_failure_rate: float = 0.0
    max_task_attempts: int = 4
    seed: int = DEFAULT_SEED
    # Delay scheduling (Spark's spark.locality.wait): a queued task with
    # locality preferences refuses non-preferred cores for this many
    # seconds before spreading anywhere. 0 (default) = greedy spread.
    locality_wait: float = 0.0
    # Fraction of each executor's memory available for cached blocks
    # (Spark's storage memory). Cached partitions past the bound evict
    # LRU and recompute on the next read; <= 0 disables the bound.
    cache_memory_fraction: float = 0.5
    # Speculative execution (Spark's spark.speculation): once
    # `speculation_quantile` of a stage's tasks have finished, a running
    # task whose elapsed time exceeds `speculation_multiplier` x the
    # median completed duration gets a duplicate attempt on another node;
    # the first finisher wins.
    speculation: bool = False
    speculation_multiplier: float = 1.5
    speculation_quantile: float = 0.75
    # --- Node-loss chaos (the paper's future-work failure question) ---
    # Deterministic injection: worker name -> absolute simulated time at
    # which the node dies (its executor stops, running attempts fail,
    # its shuffle outputs and cached blocks are discarded).
    node_failure_times: Optional[Dict[str, float]] = None
    # Seeded random injection: each worker independently dies with this
    # probability, at a seeded time within `node_failure_window` seconds.
    node_failure_rate: float = 0.0
    node_failure_window: float = 30.0
    # > 0: a dead node's cores rejoin the pool after this many seconds
    # (a fresh executor — its lost blocks stay lost). 0 = never.
    node_recovery_delay: float = 0.0
    # Lineage recovery bounds: total runs of one map stage (first run +
    # fetch-failure resubmissions) before aborting the job, and how long
    # the DAG scheduler waits to batch concurrent fetch failures before
    # resubmitting (Spark's resubmit delay).
    max_stage_attempts: int = 4
    stage_resubmit_delay: float = 0.05
    # Keys sampled per partition when building range partitioners.
    range_sample_per_partition: int = 20
    # Simulated driver-side cost of a range-bounds sampling pass.
    range_sampling_base_delay: float = 0.2
    range_sampling_per_partition_delay: float = 0.002
    # --- Physical performance knobs (simulated results are unaffected) ---
    # Worker threads executing concurrently-granted task attempts. 1 =
    # fully serial; N > 1 runs attempt bodies on a thread pool while the
    # scheduler applies their effects in grant order, keeping the
    # simulated clock, metrics, and results bit-identical to serial.
    # None reads REPRO_PHYSICAL_PARALLELISM (default 1).
    physical_parallelism: Optional[int] = None
    # Use the numpy bulk kernels (partition_many / estimate_sizes) on the
    # per-record hot paths. Off = the scalar per-record loops; outputs
    # are bit-identical either way (benchmark knob).
    vectorized_kernels: bool = True
    # Shuffle block container: "list" stores per-reduce record lists,
    # "columnar" stores numpy-backed RecordBatch column slices (bucketed,
    # concatenated and folded as arrays). Outputs are bit-identical
    # either way; columnar is the fast path for large shuffles.
    record_format: str = "list"
    # Fuse chains of narrow record ops (map / filter / mapValues) into
    # one per-partition kernel instead of materializing each step's list.
    # Accounting replays per step, so metrics stay bit-identical.
    operator_fusion: bool = False
    # Physical memory budget over block payloads (cached partitions and
    # shuffle blocks), in the engine's virtual byte units. Payloads past
    # the budget spill LRU to an on-disk block directory and read back
    # transparently; simulated results are bit-identical with or without
    # a budget. None = unbudgeted (everything stays resident).
    memory_budget: Optional[float] = None
    # Directory for spill block files; each context creates a private
    # subdirectory inside it and removes it on close(). None = a tempdir.
    spill_dir: Optional[str] = None
    # Run the relational layer's logical-plan rewrite batches (predicate
    # pushdown, column pruning, projection folding, repartition/sort
    # elision, limit pushdown) before lowering Table queries to RDDs.
    # Off = lower the raw operator tree; collected results are identical
    # either way (CI gates on it), the optimized plan just runs fewer
    # stages. None reads REPRO_LOGICAL_OPT (default on).
    logical_optimizer: Optional[bool] = None
    # Partition pruning: a final optimizer batch evaluates Filter
    # predicates against declared range layouts, collected zone maps
    # and the result cache, rewriting scans into partition subsets so
    # skipped partitions never schedule tasks. Collected results are
    # bit-identical on/off (the evidence is always a conservative
    # superset). None reads REPRO_PRUNE (default on).
    partition_pruning: Optional[bool] = None
    # Result cache of pruned partition sets, keyed by query-variant
    # signature: None (off), "memory" (per-context), "sqlite" or
    # "bitmap" (file-backed; warm runs in later processes prune from
    # earlier runs' zone maps).
    result_cache: Optional[str] = None
    # File path of the sqlite/bitmap backends (required for those,
    # rejected for "memory").
    result_cache_path: Optional[str] = None
    # LRU bound on cached query variants.
    result_cache_max_entries: int = 256
    # Optional per-entry age bound in wall-clock seconds. Setting it
    # opens the backend with a wall clock (entry timestamps stop being
    # deterministic logical ticks — the trade TTL users opt into);
    # leaving it None keeps the tick clock and byte-stable cache files.
    result_cache_ttl: Optional[float] = None
    # Adaptive query execution: after each map stage materializes, the
    # DAG scheduler consults the exact per-partition shuffle sizes and
    # may re-plan the not-yet-launched reduce side (coalesce tiny
    # partitions, split hot ones into map-output slices, re-derive range
    # bounds for ordered shuffles from the measured key histogram).
    # Collected results are bit-identical on/off; only the physical task
    # layout (and thus simulated timing) changes. None reads REPRO_AQE
    # (default off).
    adaptive_execution: Optional[bool] = None
    # A reduce partition is "hot" (split candidate) when its measured
    # size exceeds this multiple of the median non-empty partition.
    aqe_skew_threshold: float = 4.0
    # Coalesce packs runs of small partitions up to (and splits carve
    # hot partitions down toward) this many virtual bytes per task.
    aqe_target_partition_bytes: float = 64.0 * 1024 * 1024
    # Upper bound on the slices a single hot partition is carved into.
    aqe_max_subpartitions: int = 16

    def __post_init__(self) -> None:
        if self.record_format not in ("list", "columnar"):
            raise ConfigurationError(
                f"record_format must be 'list' or 'columnar',"
                f" got {self.record_format!r}"
            )
        if self.physical_parallelism is None:
            env = os.environ.get("REPRO_PHYSICAL_PARALLELISM", "").strip()
            try:
                self.physical_parallelism = int(env) if env else 1
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_PHYSICAL_PARALLELISM must be an integer, got {env!r}"
                ) from None
        if self.logical_optimizer is None:
            env = os.environ.get("REPRO_LOGICAL_OPT", "").strip().lower()
            self.logical_optimizer = env not in ("0", "false", "no", "off")
        if self.adaptive_execution is None:
            env = os.environ.get("REPRO_AQE", "").strip().lower()
            self.adaptive_execution = env in ("1", "true", "yes", "on")
        if self.aqe_skew_threshold <= 1.0:
            raise ConfigurationError(
                f"aqe_skew_threshold must be > 1, got {self.aqe_skew_threshold}"
            )
        if self.aqe_target_partition_bytes <= 0:
            raise ConfigurationError(
                f"aqe_target_partition_bytes must be > 0,"
                f" got {self.aqe_target_partition_bytes}"
            )
        if self.aqe_max_subpartitions < 2:
            raise ConfigurationError(
                f"aqe_max_subpartitions must be >= 2,"
                f" got {self.aqe_max_subpartitions}"
            )
        if self.physical_parallelism < 1:
            raise ConfigurationError(
                f"physical_parallelism must be >= 1, got {self.physical_parallelism}"
            )
        if self.default_parallelism < 1:
            raise ConfigurationError("default_parallelism must be >= 1")
        if not 0.0 <= self.task_failure_rate < 1.0:
            raise ConfigurationError("task_failure_rate must be in [0, 1)")
        if not 0.0 <= self.node_failure_rate <= 1.0:
            raise ConfigurationError("node_failure_rate must be in [0, 1]")
        if self.node_failure_rate > 0 and self.node_failure_window <= 0:
            raise ConfigurationError("node_failure_window must be > 0")
        for name, when in (self.node_failure_times or {}).items():
            if when < 0:
                raise ConfigurationError(
                    f"node_failure_times[{name!r}] must be >= 0 (got {when})"
                )
        if self.node_recovery_delay < 0:
            raise ConfigurationError("node_recovery_delay must be >= 0")
        if self.max_stage_attempts < 1:
            raise ConfigurationError("max_stage_attempts must be >= 1")
        if self.stage_resubmit_delay < 0:
            raise ConfigurationError("stage_resubmit_delay must be >= 0")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ConfigurationError(
                f"memory_budget must be > 0 bytes, got {self.memory_budget}"
            )
        if self.spill_dir is not None and self.memory_budget is None:
            raise ConfigurationError(
                "spill_dir requires memory_budget (nothing spills without one)"
            )
        if self.partition_pruning is None:
            env = os.environ.get("REPRO_PRUNE", "").strip().lower()
            self.partition_pruning = env not in ("0", "false", "no", "off")
        if self.result_cache is not None and self.result_cache not in (
            "memory", "sqlite", "bitmap",
        ):
            raise ConfigurationError(
                f"unknown cache backend {self.result_cache!r}"
                f" (choose from memory, sqlite, bitmap)"
            )
        if self.result_cache in ("sqlite", "bitmap") and (
            self.result_cache_path is None
        ):
            raise ConfigurationError(
                f"cache backend {self.result_cache!r} requires a cache path"
            )
        if self.result_cache == "memory" and self.result_cache_path is not None:
            raise ConfigurationError(
                "cache backend 'memory' does not take a cache path"
            )
        if self.result_cache_path is not None and self.result_cache is None:
            raise ConfigurationError(
                "a cache path requires a cache backend (sqlite or bitmap)"
            )
        if self.result_cache_max_entries < 1:
            raise ConfigurationError(
                f"result_cache_max_entries must be >= 1,"
                f" got {self.result_cache_max_entries}"
            )
        if self.result_cache_ttl is not None and self.result_cache_ttl <= 0:
            raise ConfigurationError(
                f"result_cache_ttl must be > 0, got {self.result_cache_ttl}"
            )


class Broadcast:
    """Read-only value shipped once to every executor (e.g. KMeans centers)."""

    def __init__(self, value: Any) -> None:
        self.value = value


class AnalyticsContext:
    """Driver-side entry point for building and running workloads."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        conf: Optional[EngineConf] = None,
        metrics_registry: Optional[MetricsRegistry] = None,
        event_log: Optional[Any] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self.cluster = cluster or paper_cluster()
        self.conf = conf or EngineConf()
        # Shuffle ids restart per context so they are a pure function of
        # the run's DAG (see dependencies.reset_shuffle_ids).
        dependencies.reset_shuffle_ids()
        self.sim = SimEngine()
        self.metrics = MetricsRecorder()
        self.listener_bus = ListenerBus()
        # Observability hub: always-on metrics registry + optional tracer,
        # structured event log, and real-resource profiler. A registry
        # (and log / profiler) may be injected so multi-run drivers
        # aggregate one; the log's clock is rebound to this context's
        # simulated time, so its timestamps stay deterministic.
        self.obs = Observability(
            self.listener_bus,
            metrics=metrics_registry,
            nodes={w.name: w.cores for w in self.cluster.workers},
        )
        if event_log is not None:
            event_log.bind_clock(lambda: self.sim.now)
            self.obs.set_log(event_log)
        if profiler is not None:
            self.obs.set_profiler(profiler)
        self.obs.metrics.gauge("cluster.total_cores").set(self.cluster.total_cores)
        # One spill manager spans cached partitions and shuffle blocks:
        # the memory budget is over every payload the engine holds.
        self.spill: Optional[SpillManager] = None
        if self.conf.memory_budget is not None:
            self.spill = SpillManager(
                self.conf.memory_budget,
                directory=self.conf.spill_dir,
                obs=self.obs,
                clock=lambda: self.sim.now,
            )
        self.shuffle_manager = ShuffleManager(
            block_header=self.conf.cost.shuffle_block_header,
            metrics=self.obs.metrics,
            spill=self.spill,
            obs=self.obs,
        )
        if self.conf.cache_memory_fraction > 0:
            fraction = self.conf.cache_memory_fraction
            topology = self.cluster.topology

            def cache_capacity(node_name: str) -> float:
                return topology.node(node_name).executor_memory * fraction

            self.block_store = BlockStore(
                capacity_for=cache_capacity, spill=self.spill
            )
        else:
            self.block_store = BlockStore(spill=self.spill)
        self.task_scheduler = TaskScheduler(self)
        self.dag_scheduler = DAGScheduler(self)
        self.advisor: Optional[Any] = None

        self.stage_stats: List[StageStats] = []
        self.job_stats: List[JobStats] = []
        # One entry per relational plan optimized in this context (rule
        # hit counts, node counts); surfaces in the run ledger as "plan".
        self.plan_events: List[Dict[str, Any]] = []
        # Zone maps collected at scan time, and the optional result
        # cache of pruned partition sets (see relational/cache.py). The
        # import is deferred: the engine layer only needs the cache
        # machinery when a backend is actually configured.
        self.zone_maps = ZoneMapStore()
        self.query_cache: Optional[Any] = None
        if self.conf.result_cache is not None:
            from repro.relational.cache import ResultCacheManager, open_backend

            # A TTL is wall-clock seconds, so the backend needs a wall
            # clock; without one the deterministic tick clock applies
            # (one tick per get/put, keeping cache files byte-stable).
            backend = open_backend(
                self.conf.result_cache,
                path=self.conf.result_cache_path,
                max_entries=self.conf.result_cache_max_entries,
                ttl=self.conf.result_cache_ttl,
                clock=(
                    time.time
                    if self.conf.result_cache_ttl is not None
                    else None
                ),
            )
            self.query_cache = ResultCacheManager(
                backend, metrics=self.obs.metrics
            )

        self._rdd_counter = 0
        self._job_counter = 0
        self._stage_counter = 0
        self._stage_run_counter = 0

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def next_job_id(self) -> int:
        self._job_counter += 1
        return self._job_counter

    def next_stage_id(self) -> int:
        self._stage_counter += 1
        return self._stage_counter

    def next_stage_run_id(self) -> int:
        self._stage_run_counter += 1
        return self._stage_run_counter

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------

    @property
    def default_parallelism(self) -> int:
        return self.conf.default_parallelism

    def parallelize(
        self,
        data: Sequence,
        num_partitions: Optional[int] = None,
        size_scale: float = 1.0,
        op_name: str = "parallelize",
    ) -> SourceRDD:
        """Distribute an in-memory sequence as a source RDD."""
        data = list(data)
        n = num_partitions or min(self.default_parallelism, max(1, len(data)))
        return SourceRDD(
            self,
            lambda split, splits: parallelize_generator(data, split, splits),
            n,
            size_scale=size_scale,
            op_name=op_name,
        )

    def source(
        self,
        generator: Callable[[int, int], List],
        num_partitions: int,
        size_scale: float = 1.0,
        op_name: str = "source",
        cost: float = 1.0,
        version: Optional[str] = None,
    ) -> SourceRDD:
        """A re-splittable generated source (see :class:`SourceRDD`).

        Give each distinct dataset a distinct ``op_name`` — it is the
        source's structural signature. ``version`` (a content hash of
        the generator's parameters) makes the source eligible for
        zone-map statistics and the partition-pruning result cache.
        """
        return SourceRDD(
            self, generator, num_partitions,
            size_scale=size_scale, op_name=op_name, cost=cost,
            version=version,
        )

    def union(self, rdds: Sequence[RDD]) -> RDD:
        from repro.engine.rdd import UnionRDD

        return UnionRDD(self, list(rdds))

    def accumulator(self, zero: Any = 0, add_op=None, name: str = "acc"):
        """Create a write-only shared counter (see engine.accumulators)."""
        from repro.engine.accumulators import make_accumulator

        return make_accumulator(zero, add_op, name)

    def broadcast(self, value: Any) -> Broadcast:
        """Ship a value to every worker, recording the network traffic."""
        nbytes = estimate_size(value)
        now = self.sim.now
        for worker in self.cluster.workers:
            self.metrics.record_event("net_bytes", worker.name, now, nbytes)
        return Broadcast(value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_job(
        self, rdd: RDD, result_fn: Optional[Callable] = None
    ) -> List[Any]:
        return self.dag_scheduler.run_job(rdd, result_fn)

    def sample_keys(self, rdd: RDD, max_partitions: int = 0) -> List:
        """Collect a key sample of a pair RDD via a lightweight job.

        Used to build range partitioners (Spark's sketch pass). Runs a
        real job, so any un-run parent shuffles execute — and are then
        reused by the main job, exactly like Spark's sampling jobs.
        ``max_partitions`` of 0 samples every partition.
        """
        per_part = self.conf.range_sample_per_partition

        def _sample(split: int, recs: List) -> List:
            if max_partitions and split >= max_partitions:
                return []
            if not recs:
                return []
            stride = max(1, len(recs) // per_part)
            return [r[0] for r in recs[::stride][:per_part]]

        sampled = rdd.map_partitions(_sample, op_name="keySample")
        return sampled.collect()

    # ------------------------------------------------------------------
    # CHOPPER hook
    # ------------------------------------------------------------------

    def set_advisor(self, advisor: Optional[Any]) -> None:
        """Install a partition advisor (``rewrite(final_rdd, ctx)``)."""
        self.advisor = advisor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Total simulated time elapsed in this context."""
        return self.sim.now

    def reset_stats(self) -> None:
        self.stage_stats.clear()
        self.job_stats.clear()
        self.plan_events.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release physical resources (spill files). Idempotent.

        In-memory state stays readable — stats, metrics and cached
        results survive close() — but spilled payloads do not; close a
        context only once its results are collected.
        """
        if self.query_cache is not None:
            # Resolve this run's cache misses from the zone maps its
            # scans collected, then release the backend.
            self.query_cache.flush(self.zone_maps)
            self.query_cache.close()
        self.block_store.clear()
        self.shuffle_manager.clear()
        if self.spill is not None:
            self.spill.close()

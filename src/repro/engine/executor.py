"""Task execution: run the real computation, price it with the cost model.

The :class:`TaskRunner` is called by the task scheduler the moment a task
is granted a core. It executes the task's RDD pipeline *physically*
(producing correct records / results), collects the measurable side
effects in a :class:`TaskContext`, and converts them into a simulated
duration via the :class:`CostModel`. Map tasks additionally partition
their output by the shuffle dependency's partitioner and register the
blocks with the shuffle manager — including optional map-side combining,
which is where aggregation shuffles get their small, `P_map`-proportional
volume (paper Fig. 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.common.errors import FetchFailure, SchedulingError
from repro.common.sizing import estimate_size
from repro.engine.costmodel import CostModel, TaskCostBreakdown
from repro.engine.stage import RESULT, SHUFFLE_MAP, Stage
from repro.engine.task import Task, TaskContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import NodeSpec
    from repro.engine.context import AnalyticsContext


class TaskRunner:
    """Executes tasks and prices their duration."""

    def __init__(self, ctx: "AnalyticsContext") -> None:
        self.ctx = ctx
        self.cost_model = CostModel(ctx.conf.cost)

    def execute(
        self, stage: Stage, task: Task, node: "NodeSpec", result_fn=None
    ) -> Tuple[TaskCostBreakdown, TaskContext, Any]:
        """Run one task on ``node``; returns (cost breakdown, ctx, result)."""
        tctx = TaskContext(node=node.name, task_index=task.partition)
        metrics = self.ctx.obs.metrics
        try:
            if stage.kind == SHUFFLE_MAP:
                result = self._run_map_task(stage, task.partition, tctx)
                metrics.counter("executor.map_tasks", node=node.name).inc()
            elif stage.kind == RESULT:
                records = stage.rdd.materialize(task.partition, tctx)
                result = result_fn(task.partition, records) if result_fn else records
                metrics.counter("executor.result_tasks", node=node.name).inc()
            else:  # pragma: no cover - defensive
                raise SchedulingError(f"unknown stage kind {stage.kind!r}")
        except FetchFailure:
            # Shuffle inputs lost to a dead node; the task scheduler
            # hands the task to the DAG scheduler for lineage recovery.
            metrics.counter("executor.fetch_failures", node=node.name).inc()
            raise
        if tctx.cache_read_bytes:
            metrics.counter("cache.hits", node=node.name).inc()
            metrics.counter("cache.read_bytes", node=node.name).inc(
                tctx.cache_read_bytes
            )
        for src, nbytes in tctx.cache_remote_by_src.items():
            metrics.counter("cache.remote_read_bytes", src=src).inc(nbytes)
        return self.price(tctx, node), tctx, result

    def _run_map_task(self, stage: Stage, split: int, tctx: TaskContext) -> None:
        dep = stage.shuffle_dep
        assert dep is not None, "map task on a stage without a shuffle dep"
        records = stage.rdd.materialize(split, tctx)

        if dep.map_side_combine:
            assert dep.aggregator is not None
            agg = dep.aggregator
            combined: Dict[Any, Any] = {}
            for record in records:
                k = dep.key_fn(record)
                v = record[1]
                if k in combined:
                    combined[k] = agg.merge_value(combined[k], v)
                else:
                    combined[k] = agg.create_combiner(v)
            out_records: List = list(combined.items())
            write_scale = 1.0
        else:
            out_records = records
            write_scale = stage.rdd.size_scale

        partitioner = dep.partitioner
        key_fn = dep.key_fn
        # Mutable per-bucket accumulators: append in place rather than
        # rebuilding and reassigning a (records, bytes) tuple per record.
        bucket_records: Dict[int, List] = {}
        bucket_bytes: Dict[int, float] = {}
        for record in out_records:
            rid = partitioner.partition(key_fn(record))
            recs = bucket_records.get(rid)
            if recs is None:
                bucket_records[rid] = recs = []
                bucket_bytes[rid] = 0.0
            recs.append(record)
            bucket_bytes[rid] += estimate_size(record) * write_scale
        buckets: Dict[int, Tuple[List, float]] = {
            rid: (recs, bucket_bytes[rid]) for rid, recs in bucket_records.items()
        }

        written = self.ctx.shuffle_manager.put_map_output(
            dep.shuffle_id, split, tctx.node, buckets
        )
        tctx.note_shuffle_write(written)

    def price(self, tctx: TaskContext, node: "NodeSpec") -> TaskCostBreakdown:
        """Convert a task's measured side effects into time components."""
        cm = self.cost_model
        topo = self.ctx.cluster.topology
        fetch = cm.shuffle_fetch_time(
            node,
            tctx.shuffle_read_local,
            tctx.shuffle_read_remote_by_src,
            tctx.shuffle_blocks_fetched,
            topo.bandwidth,
        )
        # Remote cache reads travel over the same links as shuffle blocks.
        for src, nbytes in tctx.cache_remote_by_src.items():
            fetch += nbytes / topo.bandwidth(src, node.name)
        return TaskCostBreakdown(
            overhead=cm.config.task_overhead,
            compute=cm.compute_time(
                node, tctx.compute_bytes, tctx.records_out, tctx.max_partition_bytes
            ),
            input_io=cm.input_io_time(node, tctx.input_bytes),
            shuffle_fetch=fetch,
            shuffle_write=cm.shuffle_write_time(node, tctx.shuffle_write),
        )

"""Task execution: run the real computation, price it with the cost model.

The :class:`TaskRunner` is called by the task scheduler the moment a task
is granted a core. It executes the task's RDD pipeline *physically*
(producing correct records / results), collects the measurable side
effects in a :class:`TaskContext`, and converts them into a simulated
duration via the :class:`CostModel`. Map tasks additionally partition
their output by the shuffle dependency's partitioner and register the
blocks with the shuffle manager — including optional map-side combining,
which is where aggregation shuffles get their small, `P_map`-proportional
volume (paper Fig. 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import FetchFailure, SchedulingError
from repro.common.sizing import estimate_size, sizes_array
from repro.engine import effects
from repro.engine.batch import RecordBatch
from repro.engine.combine import combine_numeric_add, fold_batch
from repro.engine.dependencies import default_key_fn
from repro.engine.costmodel import CostModel, TaskCostBreakdown
from repro.engine.effects import TaskEffects
from repro.engine.stage import RESULT, SHUFFLE_MAP, Stage
from repro.engine.task import Task, TaskContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import NodeSpec
    from repro.engine.context import AnalyticsContext


class TaskRunner:
    """Executes tasks and prices their duration."""

    def __init__(self, ctx: "AnalyticsContext") -> None:
        self.ctx = ctx
        self.cost_model = CostModel(ctx.conf.cost)

    def execute(
        self, stage: Stage, task: Task, node: "NodeSpec", result_fn=None
    ) -> Tuple[TaskCostBreakdown, TaskContext, Any]:
        """Run one task on ``node``; returns (cost breakdown, ctx, result)."""
        tctx, result = self._execute_body(stage, task, node, result_fn)
        return self.price(tctx, node), tctx, result

    def execute_deferred(
        self, stage: Stage, task: Task, node: "NodeSpec", result_fn=None
    ) -> TaskEffects:
        """Run a task body on a worker thread, buffering its effects.

        Safe to call concurrently for independently-granted attempts:
        shared-state reads are recorded, writes buffered, and nothing is
        mutated until :meth:`finish_deferred` replays the effects on the
        driver thread at the attempt's serial position.
        """
        eff = TaskEffects()
        effects.activate(eff)
        try:
            eff.tctx, eff.result = self._execute_body(stage, task, node, result_fn)
        except BaseException as exc:  # re-raised inline at apply time
            eff.exception = exc
        finally:
            effects.deactivate()
        return eff

    def finish_deferred(
        self, eff: TaskEffects, stage: Stage, task: Task, node: "NodeSpec",
        result_fn=None,
    ) -> Tuple[TaskCostBreakdown, TaskContext, Any]:
        """Apply a deferred attempt's effects at its serial position.

        Everything the worker thread read is validated first; on any
        mismatch — or a recorded exception — the attempt simply
        re-executes inline, which is the bit-exact serial path.
        """
        if eff.exception is not None or not self._effects_valid(eff):
            return self.execute(stage, task, node, result_fn)
        self._replay(eff)
        return self.price(eff.tctx, node), eff.tctx, eff.result

    def _execute_body(
        self, stage: Stage, task: Task, node: "NodeSpec", result_fn=None
    ) -> Tuple[TaskContext, Any]:
        profiler = self.ctx.obs.profiler
        if profiler is not None:
            # Bracket the real computation with a host-resource probe
            # (wall vs thread CPU, tracemalloc delta). Probes only read
            # clocks/allocator stats, so simulated results are untouched.
            with profiler.task_probe(stage.name):
                return self._execute_body_inner(stage, task, node, result_fn)
        return self._execute_body_inner(stage, task, node, result_fn)

    def _execute_body_inner(
        self, stage: Stage, task: Task, node: "NodeSpec", result_fn=None
    ) -> Tuple[TaskContext, Any]:
        tctx = TaskContext(node=node.name, task_index=task.partition)
        try:
            if task.spec is not None:
                result = self._run_adaptive_task(stage, task, tctx, result_fn)
                name = (
                    "executor.map_tasks"
                    if stage.kind == SHUFFLE_MAP
                    else "executor.result_tasks"
                )
                self._inc(name, node=node.name)
            elif stage.kind == SHUFFLE_MAP:
                result = self._run_map_task(stage, task.partition, tctx)
                self._inc("executor.map_tasks", node=node.name)
            elif stage.kind == RESULT:
                records = stage.rdd.materialize(task.partition, tctx)
                result = result_fn(task.partition, records) if result_fn else records
                self._inc("executor.result_tasks", node=node.name)
            else:  # pragma: no cover - defensive
                raise SchedulingError(f"unknown stage kind {stage.kind!r}")
        except FetchFailure as failure:
            # Shuffle inputs lost to a dead node; the task scheduler
            # hands the task to the DAG scheduler for lineage recovery.
            self._inc("executor.fetch_failures", node=node.name)
            self._log(
                "WARNING", "fetch_failure",
                stage=stage.name, partition=task.partition, node=node.name,
                shuffle=failure.shuffle_id,
            )
            raise
        if tctx.cache_read_bytes:
            self._inc("blockcache.hits", node=node.name)
            self._inc(
                "blockcache.read_bytes", tctx.cache_read_bytes, node=node.name
            )
        for src, nbytes in tctx.cache_remote_by_src.items():
            self._inc("blockcache.remote_read_bytes", nbytes, src=src)
        self._log(
            "DEBUG", "task_executed",
            stage=stage.name, partition=task.partition, node=node.name,
            records_out=tctx.records_out,
        )
        return tctx, result

    def _run_adaptive_task(
        self, stage: Stage, task: Task, tctx: TaskContext, result_fn=None
    ) -> Any:
        """Body of an AQE-re-planned physical task (coalesced or slice).

        A *slice* task computes one original partition from a restricted
        map-output range and returns the **raw records**; the driver
        concatenates the slices in map order and applies ``result_fn``
        once per original partition (see ``StageRun``), so the assembled
        value is byte-identical to the unsplit task's.

        A *coalesced* task runs each original partition's full pipeline
        back-to-back and returns one result per split, exactly what the
        plain per-partition tasks would have produced. Cumulative totals
        (compute, IO, max partition) keep accumulating — one physical
        task pays for all its splits — but the per-RDD byte maps reset
        between splits: ``note_input_hint`` adds per RDD id, so a stale
        entry from split A would inflate split B's priced input.
        """
        spec = task.spec
        assert spec is not None
        if spec.is_slice:
            assert spec.shuffle_id is not None and spec.map_range is not None
            tctx.map_ranges[spec.shuffle_id] = spec.map_range
            return stage.rdd.materialize(spec.splits[0], tctx)
        if spec.is_plain:
            # Physical task index != original split once earlier specs
            # were sliced; always compute the split the spec names.
            split = spec.splits[0]
            if stage.kind == SHUFFLE_MAP:
                return self._run_map_task(stage, split, tctx)
            records = stage.rdd.materialize(split, tctx)
            return result_fn(split, records) if result_fn else records
        results: List[Any] = []
        for i, split in enumerate(spec.splits):
            if i:
                tctx.rdd_bytes = {}
                tctx.input_hints = {}
            if stage.kind == SHUFFLE_MAP:
                results.append(self._run_map_task(stage, split, tctx))
            else:
                records = stage.rdd.materialize(split, tctx)
                results.append(
                    result_fn(split, records) if result_fn else records
                )
        return results

    def _inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Counter increment that defers (creation included) under a sink."""
        sink = effects.active()
        if sink is not None:
            sink.ops.append(("metric", name, tuple(labels.items()), amount))
        else:
            self.ctx.obs.metrics.counter(name, **labels).inc(amount)

    def _log(self, level: str, event: str, **fields: Any) -> None:
        """Structured log emit that defers under a sink (worker thread).

        Deferred records replay at the attempt's serial position — the
        same sim timestamp serial execution would have stamped — so the
        event log stays byte-identical across physical parallelism.
        """
        obs = self.ctx.obs
        if obs.log is None:
            return
        sink = effects.active()
        if sink is not None:
            sink.ops.append(("log", level, "executor", event, tuple(fields.items())))
        else:
            obs.log_event(level, "executor", event, **fields)

    def _effects_valid(self, eff: TaskEffects) -> bool:
        block_store = self.ctx.block_store
        shuffle = self.ctx.shuffle_manager
        for op in eff.ops:
            tag = op[0]
            if tag == "cache_get":
                _, key, block = op
                if block_store.peek(*key) is not block:
                    return False
            elif tag == "shuffle_read":
                _, shuffle_id, version = op
                if shuffle.version(shuffle_id) != version:
                    return False
        return True

    def _replay(self, eff: TaskEffects) -> None:
        ctx = self.ctx
        metrics = ctx.obs.metrics
        for op in eff.ops:
            tag = op[0]
            if tag == "metric":
                _, name, labels, amount = op
                metrics.counter(name, **dict(labels)).inc(amount)
            elif tag == "counter":
                op[1].inc(op[2])
            elif tag == "cache_get":
                if op[2] is not None:
                    ctx.block_store.touch(*op[1])
            elif tag == "cache_get_own":
                ctx.block_store.touch(*op[1])
            elif tag == "cache_put":
                _, key, records, nbytes, node_name = op
                ctx.block_store.put(key[0], key[1], records, nbytes, node_name)
            elif tag == "shuffle_put":
                _, shuffle_id, map_id, node_name, partitioned = op
                written = ctx.shuffle_manager.put_map_output(
                    shuffle_id, map_id, node_name, partitioned
                )
                eff.tctx.note_shuffle_write(written)
            elif tag == "shuffle_read":
                pass  # validation-only
            elif tag == "log":
                _, level, logger, event, fields = op
                ctx.obs.log_event(level, logger, event, **dict(fields))
            elif tag == "acc":
                op[1]._fold(op[2])
            elif tag == "zone_map":
                _, key, split, stats = op
                ctx.zone_maps.put(key, split, stats)
            else:  # pragma: no cover - defensive
                raise SchedulingError(f"unknown deferred op {tag!r}")

    def _run_map_task(self, stage: Stage, split: int, tctx: TaskContext) -> None:
        dep = stage.shuffle_dep
        assert dep is not None, "map task on a stage without a shuffle dep"
        key_fn = dep.key_fn
        fast_key = None if key_fn is default_key_fn else key_fn
        # Columnar blocks require the default record[0] key: the key IS
        # the batch's key column. Custom key functions see whole records.
        columnar = self.ctx.conf.record_format == "columnar" and fast_key is None
        if columnar:
            records = stage.rdd.materialize_batch(split, tctx)
        else:
            records = stage.rdd.materialize(split, tctx)

        out_keys: Optional[List] = None
        batch: Optional[RecordBatch] = None
        if dep.map_side_combine:
            assert dep.aggregator is not None
            agg = dep.aggregator
            if columnar and self.ctx.conf.vectorized_kernels and agg.numeric_add:
                # Fold on columns only when the input already *is* a batch
                # (a fused vec chain produced it). Columnarizing a list
                # input just to fold it costs more than the dict-grouped
                # fold below — instead the (much smaller) combined output
                # is columnarized on the way out.
                if isinstance(records, RecordBatch):
                    batch = fold_batch(records)
            if batch is None:
                plain = (
                    records.to_records()
                    if isinstance(records, RecordBatch)
                    else records
                )
                combined: Optional[Dict[Any, Any]] = None
                if self.ctx.conf.vectorized_kernels and plain and agg.numeric_add:
                    combined = combine_numeric_add(fast_key, plain)
                if combined is None:
                    combined = {}
                    for record in plain:
                        k = key_fn(record)
                        v = record[1]
                        if k in combined:
                            combined[k] = agg.merge_value(combined[k], v)
                        else:
                            combined[k] = agg.create_combiner(v)
                out_records: List = list(combined.items())
                if fast_key is None:
                    out_keys = list(combined)  # items() order, zero extraction
                if columnar and out_records:
                    batch = RecordBatch.from_records(out_records)
            write_scale = 1.0
        else:
            if columnar:
                if isinstance(records, RecordBatch):
                    batch = records if len(records) else None
                elif records:
                    batch = RecordBatch.from_records(records)
            if batch is None:
                out_records = (
                    records.to_records()
                    if isinstance(records, RecordBatch)
                    else records
                )
            write_scale = stage.rdd.size_scale

        partitioner = dep.partitioner
        # Mutable per-bucket accumulators: append in place rather than
        # rebuilding and reassigning a (records, bytes) tuple per record.
        bucket_records: Dict[int, Any] = {}
        bucket_bytes: Dict[int, float] = {}
        if batch is not None:
            # Columnar bucketing: hash/range-partition the key column in
            # one kernel call, accumulate per-bucket bytes with the same
            # unbuffered np.add.at left fold the list path uses, then
            # slice each bucket's records as column views via a stable
            # argsort — buckets emitted in first-occurrence order, records
            # in arrival order, exactly like the scalar dict loop.
            rids = partitioner.partition_many(batch.keys)
            rid_arr = np.fromiter(rids, dtype=np.intp, count=len(rids))
            sizes = batch.sizes_array()
            byte_acc = np.zeros(int(rid_arr.max()) + 1, dtype=np.float64)
            np.add.at(byte_acc, rid_arr, sizes * write_scale)
            order = np.argsort(rid_arr, kind="stable")
            sorted_rids = rid_arr[order]
            cuts = np.flatnonzero(sorted_rids[1:] != sorted_rids[:-1]) + 1
            groups = np.split(order, cuts)
            groups.sort(key=lambda g: g[0])  # first-occurrence order
            for group in groups:
                rid = int(rid_arr[group[0]])
                bucket_records[rid] = batch.take(group)
                bucket_bytes[rid] = float(byte_acc[rid])
        elif self.ctx.conf.vectorized_kernels and out_records:
            # Bulk kernels: one partition_many / sizes_array call per task
            # instead of two Python calls per record, then group records
            # by bucket with a stable argsort instead of a per-record
            # dict loop. Bit-identity with the scalar path holds because:
            # (a) the kernels match their scalar counterparts exactly,
            # (b) np.add.at is unbuffered and applies additions in element
            #     order — the same left fold the scalar loop performs, and
            # (c) stable sort keeps records in arrival order within a
            #     bucket, and buckets are emitted in first-occurrence
            #     order, matching the scalar dict's insertion order.
            if out_keys is None:
                if fast_key is None:
                    out_keys = [r[0] for r in out_records]
                else:
                    out_keys = [fast_key(r) for r in out_records]
            rids = partitioner.partition_many(out_keys)
            rid_arr = np.fromiter(rids, dtype=np.intp, count=len(rids))
            sizes = sizes_array(out_records)
            if sizes is None:  # heterogeneous batch: exact scalar sizing
                sizes = np.array(
                    [estimate_size(r) for r in out_records], dtype=np.float64
                )
            byte_acc = np.zeros(int(rid_arr.max()) + 1, dtype=np.float64)
            np.add.at(byte_acc, rid_arr, sizes * write_scale)
            order = np.argsort(rid_arr, kind="stable")
            sorted_rids = rid_arr[order]
            cuts = np.flatnonzero(sorted_rids[1:] != sorted_rids[:-1]) + 1
            groups = np.split(order, cuts)
            groups.sort(key=lambda g: g[0])  # first-occurrence order
            for group in groups:
                rid = int(rid_arr[group[0]])
                bucket_records[rid] = [out_records[i] for i in group]
                bucket_bytes[rid] = float(byte_acc[rid])
        else:
            for record in out_records:
                rid = partitioner.partition(key_fn(record))
                recs = bucket_records.get(rid)
                if recs is None:
                    bucket_records[rid] = recs = []
                    bucket_bytes[rid] = 0.0
                recs.append(record)
                bucket_bytes[rid] += estimate_size(record) * write_scale
        buckets: Dict[int, Tuple[List, float]] = {
            rid: (recs, bucket_bytes[rid]) for rid, recs in bucket_records.items()
        }

        written = self.ctx.shuffle_manager.put_map_output(
            dep.shuffle_id, split, tctx.node, buckets
        )
        if written is not None:
            tctx.note_shuffle_write(written)
        # None = deferred attempt; the byte count lands when the write
        # replays at the task's serial position (see TaskRunner._replay).

    def price(self, tctx: TaskContext, node: "NodeSpec") -> TaskCostBreakdown:
        """Convert a task's measured side effects into time components."""
        cm = self.cost_model
        topo = self.ctx.cluster.topology
        fetch = cm.shuffle_fetch_time(
            node,
            tctx.shuffle_read_local,
            tctx.shuffle_read_remote_by_src,
            tctx.shuffle_blocks_fetched,
            topo.bandwidth,
        )
        # Remote cache reads travel over the same links as shuffle blocks.
        for src, nbytes in tctx.cache_remote_by_src.items():
            fetch += nbytes / topo.bandwidth(src, node.name)
        return TaskCostBreakdown(
            overhead=cm.config.task_overhead,
            compute=cm.compute_time(
                node, tctx.compute_bytes, tctx.records_out, tctx.max_partition_bytes
            ),
            input_io=cm.input_io_time(node, tctx.input_bytes),
            shuffle_fetch=fetch,
            shuffle_write=cm.shuffle_write_time(node, tctx.shuffle_write),
        )

"""Task cost model: virtual durations for real computations.

Every mechanism the paper attributes performance effects to is modelled as
an explicit term, so the optimum partition count per stage *emerges* and
CHOPPER has a real landscape to learn (Eq. 1-2 are fitted against times
this model produces):

* **per-task overhead** (`task_overhead`, driver dispatch + launch +
  deserialization): dominates when P is large — the paper's 2000-partition
  blow-up;
* **compute** proportional to virtual bytes processed, divided by the
  node's relative speed — heterogeneity and wave quantization (300 tasks
  over 136 cores = 3 waves) come from the event simulation on top;
* **big-partition penalty**: a superlinear factor once a partition
  outgrows `partition_knee` (GC pressure, cache misses, spilling) — too
  *few* partitions hurt, the paper's Fig. 3 low-P wall;
* **shuffle block latency** per fetched map-output block: reduce tasks
  touch `P_map` blocks each, so total stage cost grows with
  `P_map x P_reduce` — the paper's motivation for coalescing;
* **network transfer** of remote shuffle bytes at the pairwise link
  bandwidth (10 Gbps vs 1 Gbps nodes);
* **disk** throughput for input scans and shuffle writes.

All constants live in :class:`CostModelConfig` so benchmarks and ablations
can perturb them; defaults are calibrated so the paper-scale workloads
land in the right absolute ballpark (stage-0 of 21.8 GB KMeans in minutes,
iteration stages in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.node import NodeSpec
from repro.common.errors import ConfigurationError
from repro.common.units import MB


@dataclass
class CostModelConfig:
    """Tunable constants of the task cost model (times in seconds)."""

    # Fixed cost per task: driver serialization, launch, result handling.
    task_overhead: float = 0.25
    # Seconds of compute per virtual byte on a speed-1.0 core, multiplied
    # by each RDD's compute_factor. The default calibrates an in-memory
    # scan at ~10 MB/s per 2.0 GHz core; heavier steps declare a larger
    # compute_factor (e.g. ~15 for text parsing in the data generators).
    per_byte_compute: float = 1.0e-7
    # Seconds per (physical) record on a speed-1.0 core.
    per_record_compute: float = 1.0e-6
    # Partition size at which the superlinear penalty starts, and its
    # exponent: factor = 1 + (bytes / knee - 1) ** exponent for oversized
    # partitions.
    partition_knee: float = 96.0 * MB
    partition_penalty_exponent: float = 1.3
    # Serial per-task dispatch latency at the (single-threaded) driver:
    # task i of a stage becomes runnable i * interval after stage start.
    # This is Spark's driver bottleneck and the main reason thousands of
    # tiny tasks hurt (the paper's 2000-partition blow-up).
    driver_dispatch_interval: float = 0.008
    # Lognormal sigma of per-task duration jitter (GC pauses, OS noise).
    # Finer partitioning lets the pull scheduler absorb stragglers, which
    # is the classic reason moderate over-partitioning helps.
    jitter_sigma: float = 0.15
    # Share each node's NIC among its concurrently fetching tasks. Off by
    # default (the calibrated defaults assume per-task full-link fetches);
    # when on, a task's remote fetch time is multiplied by the number of
    # tasks running on the node at its launch, capped at the core count.
    network_contention: bool = False
    # Memory-spill modeling: each concurrent task's working-set budget is
    # executor_memory * memory_fraction / cores; a partition exceeding it
    # spills, multiplying compute by 1 + spill_penalty * excess ratio.
    # At the paper cluster's 40 GB executors this never triggers for sane
    # partition counts — it prices pathological under-partitioning.
    memory_fraction: float = 0.6
    spill_penalty: float = 1.0
    # Latency per shuffle block fetched by a reduce task.
    shuffle_block_latency: float = 0.0015
    # Serialized bytes of header/metadata per non-empty shuffle block.
    shuffle_block_header: float = 64.0
    # Fraction of shuffle-write bytes that hits disk synchronously.
    shuffle_write_disk_fraction: float = 1.0
    # Disk transaction granularity (for the Fig. 14 metric).
    disk_transaction_bytes: float = 512.0 * 1024

    def __post_init__(self) -> None:
        if self.task_overhead < 0 or self.per_byte_compute < 0:
            raise ConfigurationError("cost constants must be non-negative")
        if self.partition_knee <= 0:
            raise ConfigurationError("partition_knee must be positive")


@dataclass
class TaskCostBreakdown:
    """Per-task cost components (seconds), summed into ``total``."""

    overhead: float = 0.0
    compute: float = 0.0
    input_io: float = 0.0
    shuffle_fetch: float = 0.0
    shuffle_write: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.overhead
            + self.compute
            + self.input_io
            + self.shuffle_fetch
            + self.shuffle_write
        )


class CostModel:
    """Computes virtual task durations from task metrics and node specs."""

    def __init__(self, config: CostModelConfig | None = None) -> None:
        self.config = config or CostModelConfig()

    def oversize_factor(self, partition_bytes: float) -> float:
        """Superlinear slowdown for partitions beyond the knee."""
        knee = self.config.partition_knee
        if partition_bytes <= knee:
            return 1.0
        excess = partition_bytes / knee - 1.0
        return 1.0 + excess ** self.config.partition_penalty_exponent

    def compute_time(
        self,
        node: NodeSpec,
        cost_bytes: float,
        records: float,
        partition_bytes: float,
    ) -> float:
        """Seconds of CPU for ``cost_bytes`` of weighted work on ``node``.

        ``cost_bytes`` is the sum over pipeline steps of (virtual output
        bytes x compute_factor); ``partition_bytes`` is the task's input
        partition size, which drives the oversize penalty.
        """
        base = (
            cost_bytes * self.config.per_byte_compute
            + records * self.config.per_record_compute
        )
        factor = self.oversize_factor(partition_bytes)
        factor *= self.spill_factor(node, partition_bytes)
        return base * factor / node.speed

    def spill_factor(self, node: NodeSpec, partition_bytes: float) -> float:
        """Slowdown when a task's working set exceeds its memory budget."""
        budget = (
            node.executor_memory * self.config.memory_fraction / node.cores
        )
        if budget <= 0 or partition_bytes <= budget:
            return 1.0
        return 1.0 + self.config.spill_penalty * (partition_bytes / budget - 1.0)

    def input_io_time(self, node: NodeSpec, input_bytes: float) -> float:
        """Disk scan time for reading a source partition."""
        if input_bytes <= 0:
            return 0.0
        return input_bytes / node.disk_bw

    def shuffle_fetch_time(
        self,
        node: NodeSpec,
        local_bytes: float,
        remote_bytes_by_src: Dict[str, float],
        n_blocks: int,
        bandwidth_fn,
    ) -> float:
        """Time to pull one reduce partition's blocks to ``node``.

        ``bandwidth_fn(src, dst)`` gives link bandwidth in bytes/second
        (see :class:`repro.cluster.topology.Topology`).
        """
        time = n_blocks * self.config.shuffle_block_latency
        for src, nbytes in remote_bytes_by_src.items():
            time += nbytes / bandwidth_fn(src, node.name)
        # Local blocks are read from the local shuffle files.
        time += local_bytes / node.disk_bw
        return time

    def shuffle_write_time(self, node: NodeSpec, write_bytes: float) -> float:
        """Time to spill map output to local shuffle files."""
        if write_bytes <= 0:
            return 0.0
        return (
            write_bytes * self.config.shuffle_write_disk_fraction / node.disk_bw
        )

    def disk_transactions(self, nbytes: float) -> float:
        """Number of disk transactions ``nbytes`` of IO corresponds to."""
        if nbytes <= 0:
            return 0.0
        return max(1.0, nbytes / self.config.disk_transaction_bytes)

"""Adaptive query execution: skew-aware re-planning of the reduce side.

CHOPPER's Algorithm 2 fixes the partitioner scheme and count *before*
the job runs, from the cost model's predicted stage sizes. This module
is the runtime complement: once a map stage has materialized, the exact
per-partition shuffle sizes are known, and the DAG scheduler may re-plan
the not-yet-launched reduce side before submitting it:

* **coalesce** — pack contiguous runs of small reduce partitions into one
  physical task targeting ``aqe_target_partition_bytes``, saving the
  per-task overhead and dispatch stagger that dominate tiny partitions;
* **split** — carve a hot reduce partition (> ``aqe_skew_threshold`` x
  the median) into sub-tasks that each fetch a contiguous *slice of the
  map outputs*; the driver concatenates the slices in map order, so the
  assembled partition is byte-identical to the unsplit one;
* **switch** — re-derive range-partition bounds for an *ordered* shuffle
  from the exact key histogram (replacing the sampled estimate) and
  re-bucket the already-written map outputs.

Everything here is a pure function of the measured size histogram and
the ``EngineConf`` knobs — given the same map outputs, a re-derived plan
is always identical, which is what keeps chaos-recovery runs and the
threads/procs execution modes bit-identical with AQE on.

Decision logic lives here (unit-testable on synthetic histograms); the
mechanics (map-range fetches, rebucketting, slice assembly) live in
``shuffle.py`` / ``executor.py`` / ``dag_scheduler.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.dependencies import OneToOneDependency, ShuffleDependency
from repro.engine.stage import RESULT, Stage

__all__ = [
    "AdaptiveTaskSpec",
    "AdaptivePlan",
    "hot_partitions",
    "plan_partitions",
    "should_switch",
    "slice_map_ranges",
    "splittable_shuffle",
    "bucket_records",
]


@dataclass(frozen=True)
class AdaptiveTaskSpec:
    """What one *physical* reduce-side task covers.

    ``splits`` are the original partition indices the task computes (a
    coalesced task covers a contiguous run; a plain or slice task covers
    exactly one). ``map_range`` is set only for slice tasks: the
    half-open ``[lo, hi)`` range of map outputs this slice fetches for
    its single split, restricted on ``shuffle_id``.
    """

    splits: Tuple[int, ...]
    map_range: Optional[Tuple[int, int]] = None
    shuffle_id: Optional[int] = None
    slice_index: int = 0
    n_slices: int = 1

    @property
    def is_slice(self) -> bool:
        return self.map_range is not None

    @property
    def is_plain(self) -> bool:
        return len(self.splits) == 1 and self.map_range is None


@dataclass
class AdaptivePlan:
    """A re-planned reduce side: physical task specs + decision record."""

    specs: List[AdaptiveTaskSpec]
    before_sizes: List[float]
    after_sizes: List[float]
    n_coalesced: int  # original partitions packed into multi-split tasks
    n_split: int  # original partitions carved into slices
    shuffle_ids: Tuple[int, ...] = ()

    @property
    def slice_counts(self) -> Dict[int, int]:
        """Original split -> number of slices it was carved into."""
        counts: Dict[int, int] = {}
        for spec in self.specs:
            if spec.is_slice:
                counts[spec.splits[0]] = spec.n_slices
        return counts


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def hot_partitions(
    sizes: Sequence[float], *, skew_threshold: float, target_bytes: float
) -> Set[int]:
    """Partitions whose size flags them for splitting.

    The median is taken over *non-empty* partitions only: range
    partitioners routinely leave trailing empty buckets, and a zero
    median would make every non-empty partition look hot.
    """
    nonzero = [s for s in sizes if s > 0]
    if not nonzero:
        return set()
    med = _median(nonzero)
    return {
        i
        for i, s in enumerate(sizes)
        if s > skew_threshold * med and s > target_bytes
    }


def should_switch(sizes: Sequence[float], *, skew_threshold: float) -> bool:
    """Is the measured histogram skewed enough to re-derive range bounds?"""
    nonzero = [s for s in sizes if s > 0]
    if len(sizes) < 2 or len(nonzero) < 2:
        return False
    return max(nonzero) > skew_threshold * _median(nonzero)


def slice_map_ranges(
    per_map_bytes: Sequence[float], want: int
) -> List[Tuple[int, int]]:
    """Cut ``range(num_maps)`` into <= ``want`` contiguous byte-balanced slices.

    Deterministic greedy walk: a cut lands after byte prefix-sums cross
    the next equal-share boundary. Each slice holds >= 1 map output.
    """
    n_maps = len(per_map_bytes)
    total = float(sum(per_map_bytes))
    if n_maps == 0 or want <= 1 or total <= 0:
        return [(0, n_maps)]
    want = min(want, n_maps)
    share = total / want
    bounds: List[int] = []
    acc = 0.0
    for m in range(n_maps):
        acc += per_map_bytes[m]
        if (
            len(bounds) < want - 1
            and m < n_maps - 1
            and acc >= share * (len(bounds) + 1) - 1e-9
        ):
            bounds.append(m + 1)
    edges = [0] + bounds + [n_maps]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def plan_partitions(
    sizes: Sequence[float],
    *,
    skew_threshold: float,
    target_bytes: float,
    max_slices: int = 16,
    shuffle_id: Optional[int] = None,
    map_sizes: Optional[Callable[[int], Sequence[float]]] = None,
) -> Optional[AdaptivePlan]:
    """Derive the physical task layout for one reduce side.

    ``map_sizes(reduce_id)`` returns the per-map byte histogram of a hot
    partition (only consulted when splitting is possible); pass ``None``
    when the consuming pipeline cannot be sliced (aggregating or sorting
    reducers fold across the whole partition, so a slice-wise fold would
    not be bit-identical).

    Returns ``None`` when the measured sizes ask for no change — every
    physical task would cover exactly one original partition unsliced.
    """
    n = len(sizes)
    if n < 2:
        return None
    hot = (
        hot_partitions(
            sizes, skew_threshold=skew_threshold, target_bytes=target_bytes
        )
        if map_sizes is not None
        else set()
    )
    specs: List[AdaptiveTaskSpec] = []
    after: List[float] = []
    n_coalesced = 0
    n_split = 0
    i = 0
    while i < n:
        if i in hot:
            per_map = list(map_sizes(i))  # type: ignore[misc]
            want = min(max_slices, max(2, math.ceil(sizes[i] / target_bytes)))
            ranges = slice_map_ranges(per_map, want)
            if len(ranges) > 1:
                n_split += 1
                for idx, (lo, hi) in enumerate(ranges):
                    specs.append(
                        AdaptiveTaskSpec(
                            splits=(i,),
                            map_range=(lo, hi),
                            shuffle_id=shuffle_id,
                            slice_index=idx,
                            n_slices=len(ranges),
                        )
                    )
                    after.append(float(sum(per_map[lo:hi])))
            else:
                specs.append(AdaptiveTaskSpec(splits=(i,)))
                after.append(float(sizes[i]))
            i += 1
            continue
        j = i
        acc = float(sizes[i])
        while (
            j + 1 < n
            and (j + 1) not in hot
            and acc + sizes[j + 1] <= target_bytes
        ):
            j += 1
            acc += float(sizes[j])
        if j > i:
            n_coalesced += j - i + 1
        specs.append(AdaptiveTaskSpec(splits=tuple(range(i, j + 1))))
        after.append(acc)
        i = j + 1
    if n_coalesced == 0 and n_split == 0:
        return None
    return AdaptivePlan(
        specs=specs,
        before_sizes=[float(s) for s in sizes],
        after_sizes=after,
        n_coalesced=n_coalesced,
        n_split=n_split,
        shuffle_ids=(shuffle_id,) if shuffle_id is not None else (),
    )


def splittable_shuffle(stage: Stage) -> Optional[ShuffleDependency]:
    """The shuffle dep whose hot partitions this stage may read in slices.

    A partition can only be computed as independently-fetched map-output
    slices when every step between the shuffle read and the stage output
    is *record-local* — then ``f(slice_a) ++ f(slice_b) == f(slice_a ++
    slice_b)`` and the driver-side concatenation (in map order) is
    byte-identical to the unsplit partition. That means:

    * a RESULT stage (a map stage re-buckets its output, which is never
      record-local), whose pipeline is a linear chain of
      ``MapPartitionsRDD`` steps each carrying a per-record ``RecordOp``,
    * rooted at an identity, unsorted ``ShuffledRDD`` (aggregate/group
      merge across the partition; a sort is global per partition),
    * with nothing cached along the chain (a cached slice would poison
      the block store with partial partitions).
    """
    from repro.engine.rdd import MapPartitionsRDD
    from repro.engine.shuffled import ShuffledRDD

    if stage.kind != RESULT:
        return None
    node = stage.rdd
    while not isinstance(node, ShuffledRDD):
        if not isinstance(node, MapPartitionsRDD):
            return None
        if node._record_op is None or node._cached:
            return None
        if len(node.deps) != 1 or not isinstance(
            node.deps[0], OneToOneDependency
        ):
            return None
        node = node.deps[0].parent
    if node.mode != "identity" or node._sort or node._cached:
        return None
    dep = node.deps[0]
    if not isinstance(dep, ShuffleDependency):
        return None
    return dep


def bucket_records(
    records: List,
    partitioner,
    key_fn: Callable,
    write_scale: float,
    vectorized: bool = True,
) -> Dict[int, Tuple[List, float]]:
    """Partition a map output's records into reduce buckets (AQE rebucket).

    Mirrors the executor's list-path map-output bucketing: returns
    ``{reduce_id: (records, payload_bytes)}`` with records in input
    order and payload priced at ``estimate_size * write_scale``.
    """
    import numpy as np

    from repro.common.sizing import estimate_size, sizes_array

    out: Dict[int, Tuple[List, float]] = {}
    if not records:
        return out
    keys = [key_fn(r) for r in records]
    if vectorized:
        rids = partitioner.partition_many(keys)
        rid_arr = np.asarray(rids, dtype=np.int64)
        sizes = sizes_array(records)
        if sizes is None:
            sizes = np.array(
                [estimate_size(r) for r in records], dtype=np.float64
            )
        bucket_bytes = np.zeros(partitioner.num_partitions, dtype=np.float64)
        np.add.at(bucket_bytes, rid_arr, sizes)
        order = np.argsort(rid_arr, kind="stable")
        boundaries = np.flatnonzero(np.diff(rid_arr[order])) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            if len(group) == 0:
                continue
            rid = int(rid_arr[group[0]])
            out[rid] = (
                [records[int(i)] for i in group],
                float(bucket_bytes[rid]) * write_scale,
            )
        return out
    bucket_recs: Dict[int, List] = {}
    bucket_bytes_s: Dict[int, float] = {}
    for record, key in zip(records, keys):
        rid = partitioner.partition(key)
        bucket_recs.setdefault(rid, []).append(record)
        bucket_bytes_s[rid] = bucket_bytes_s.get(rid, 0.0) + estimate_size(
            record
        )
    return {
        rid: (recs, bucket_bytes_s[rid] * write_scale)
        for rid, recs in bucket_recs.items()
    }

"""Zero-copy shared-memory data plane for cross-process payloads.

The process pool used to ship every payload — run specs out, records and
results back — through pickle *bytes* travelling over the executor's IPC
pipe: one serialization copy on the sender, one pipe write, one pipe
read, one deserialization copy on the receiver. This module replaces the
pipe payload with a **shared-memory segment**: the sender packs the
pickle stream and every out-of-band buffer (pickle protocol 5 —
numpy-backed :class:`~repro.engine.batch.RecordBatch` columns in
particular) into one segment, registered once, and sends only a tiny
:class:`SharedPayload` handle (segment name + per-buffer byte spans +
dtype/shape metadata inside the pickle stream). The receiver attaches
the segment by name and rebuilds ndarrays as **views into the segment**
— the column bytes are never copied again.

Backends
--------

* ``shm`` — :class:`multiprocessing.shared_memory.SharedMemory`
  (``/dev/shm`` on Linux). The default wherever available.
* ``mmap`` — plain files in a scratch directory, memory-mapped on
  attach. The fallback for platforms (or sandboxes) without POSIX
  shared memory; page-cache backed, so reads are still zero-copy.

``REPRO_SHM_BACKEND`` forces a backend (``shm`` / ``mmap`` / ``off``;
``off`` disables segments entirely — payloads inline into the handle).

Lifecycle
---------

Segments are owned by their **creator**: every segment created by this
process is tracked in a module registry and unlinked by
:func:`cleanup_segments` (called by the pool driver after each fan-out,
and at interpreter exit). Receivers attach and close but never unlink.
A worker that dies mid-task therefore cannot leak driver-created
segments — the driver's ``finally`` sweeps them — and worker-created
result segments use driver-chosen names, so the driver can sweep those
too without hearing back from the worker (see
:func:`repro.chopper.parallel.run_specs`).
"""

from __future__ import annotations

import atexit
import mmap
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

PICKLE_PROTOCOL = 5

# Payloads whose out-of-band buffers total fewer bytes than this inline
# into the handle instead of paying segment setup (two syscalls + a
# page-granular mapping) for a few KB.
MIN_SEGMENT_BYTES = 16 * 1024

_ALIGN = 64  # buffer alignment inside a segment (cache line / SIMD)


def _backend() -> str:
    forced = os.environ.get("REPRO_SHM_BACKEND", "").strip().lower()
    if forced in ("shm", "mmap", "off"):
        return forced
    try:  # pragma: no cover - import always succeeds on CPython >= 3.8
        import multiprocessing.shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms
        return "mmap"
    return "shm"


def _untrack(name: str) -> None:
    """Opt a segment out of the resource tracker's leak accounting.

    Lifecycle here is explicit (creator unlinks, :mod:`atexit` sweeps),
    and the tracker double-unlinking a segment that crossed a process
    boundary only produces shutdown noise. Private API, so best-effort.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class Segment:
    """One shared-memory (or mmap-file) region with a name and a buffer."""

    def __init__(
        self, backend: str, name: str, buf, closer, owner: bool, shm_obj=None
    ) -> None:
        self.backend = backend
        self.name = name
        self.buf = buf  # writable memoryview over the whole region
        self._closer = closer
        self.owner = owner
        self._shm_obj = shm_obj  # the SharedMemory object, shm backend only

    @property
    def ref(self) -> Tuple[str, str]:
        return (self.backend, self.name)

    def close(self) -> None:
        """Drop this process's mapping (views must be released first)."""
        if self._closer is None:
            return
        closer, self._closer = self._closer, None
        self.buf = None
        try:
            closer()
        except BufferError:
            # A live ndarray still views the mapping; leave it to the
            # garbage collector — unlink (below) already happened or
            # will happen by name, which does not need the mapping.
            pass
        if self._shm_obj is not None:
            # SharedMemory.__del__ retries close() and would spam
            # "Exception ignored: BufferError" for mappings with live
            # views; the instance attribute shadows the method, so the
            # retry becomes a no-op and the GC reclaims the mapping
            # together with the last view.
            self._shm_obj.close = lambda: None
            self._shm_obj = None

    def unlink(self) -> None:
        self.close()
        unlink_ref((self.backend, self.name))
        _LIVE.pop(self.name, None)


# Segments created (and thus owned) by this process, by name.
_LIVE: Dict[str, Segment] = {}


def _scratch_dir() -> str:
    path = os.path.join(
        tempfile.gettempdir(), f"repro-shm-{os.getuid() if hasattr(os, 'getuid') else 0}"
    )
    os.makedirs(path, exist_ok=True)
    return path


_seq = 0


def next_name(prefix: str = "") -> str:
    """A process-unique segment name (creator's pid + a counter)."""
    global _seq
    _seq += 1
    return f"repro-{prefix}{os.getpid()}-{_seq}"


def create_segment(nbytes: int, name: Optional[str] = None) -> Segment:
    """Allocate a named segment of ``nbytes`` and register it as owned."""
    backend = _backend()
    name = name or next_name()
    if backend == "shm":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes), name=name)
        _untrack(shm.name)
        seg = Segment("shm", shm.name, shm.buf, shm.close, owner=True, shm_obj=shm)
    else:
        path = os.path.join(_scratch_dir(), name)
        with open(path, "wb") as fh:
            fh.truncate(max(1, nbytes))
        fh = open(path, "r+b")
        mapping = mmap.mmap(fh.fileno(), 0)
        fh.close()
        seg = Segment("mmap", name, memoryview(mapping), mapping.close, owner=True)
    _LIVE[seg.name] = seg
    return seg


def attach_segment(ref: Tuple[str, str]) -> Segment:
    """Map an existing segment created by another process (read/write)."""
    backend, name = ref
    if backend == "shm":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm.name)
        return Segment("shm", name, shm.buf, shm.close, owner=False, shm_obj=shm)
    path = os.path.join(_scratch_dir(), name)
    fh = open(path, "r+b")
    mapping = mmap.mmap(fh.fileno(), 0)
    fh.close()
    return Segment("mmap", name, memoryview(mapping), mapping.close, owner=False)


def unlink_ref(ref: Tuple[str, str]) -> bool:
    """Remove a segment by name, regardless of which process created it.

    Returns True when something was actually removed — False means the
    segment never existed or is already gone (idempotent sweeps).
    """
    backend, name = ref
    if backend == "shm":
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        # No _untrack here: attaching registered the name once, and
        # unlink() below unregisters it — balanced without our help.
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            return False
        return True
    path = os.path.join(_scratch_dir(), name)
    try:
        os.unlink(path)
    except FileNotFoundError:
        return False
    return True


def cleanup_segments() -> int:
    """Unlink every segment this process still owns; returns the count."""
    count = 0
    for name in list(_LIVE):
        seg = _LIVE.pop(name, None)
        if seg is None:
            continue
        seg.close()
        if unlink_ref(seg.ref):
            count += 1
    return count


atexit.register(cleanup_segments)


@dataclass
class SharedPayload:
    """A picklable handle to a payload parked in shared memory.

    ``meta_span`` is the byte span of the pickle stream inside the
    segment and ``buffer_spans`` the spans of its out-of-band buffers
    (in ``buffer_callback`` order). When ``segment`` is None the payload
    was too small to justify a segment and travels inline instead.
    """

    segment: Optional[Tuple[str, str]]
    meta_span: Tuple[int, int]
    buffer_spans: List[Tuple[int, int]]
    inline: Optional[Tuple[bytes, List[bytes]]] = None
    payload_bytes: int = 0


@dataclass
class DecodedPayload:
    """A decoded payload plus the mapping its buffers may alias.

    Call :meth:`close` after the object (and anything borrowing its
    buffers) is no longer needed; with ``copy=True`` decoding, close is
    a no-op and the object owns its memory outright.
    """

    obj: Any
    _segment: Optional[Segment] = field(default=None, repr=False)

    def close(self) -> None:
        self.obj = None
        if self._segment is not None:
            self._segment.close()
            self._segment = None


def encode_shared(obj: Any, name: Optional[str] = None) -> SharedPayload:
    """Park ``obj`` in a shared segment; returns the (tiny) handle.

    The pickle stream plus every protocol-5 out-of-band buffer (ndarray
    columns, byte blobs) is packed into one segment — registered once,
    however many buffers the payload carries.
    """
    buffers: List[pickle.PickleBuffer] = []
    meta = pickle.dumps(obj, protocol=PICKLE_PROTOCOL, buffer_callback=buffers.append)
    views = [b.raw() for b in buffers]
    total = len(meta) + sum(v.nbytes for v in views)
    if _backend() == "off" or total < MIN_SEGMENT_BYTES:
        inline = (meta, [bytes(v) for v in views])
        for b in buffers:
            b.release()
        return SharedPayload(
            segment=None, meta_span=(0, len(meta)), buffer_spans=[],
            inline=inline, payload_bytes=total,
        )
    spans: List[Tuple[int, int]] = []
    offset = _aligned(len(meta))
    for view in views:
        spans.append((offset, view.nbytes))
        offset = _aligned(offset + view.nbytes)
    seg = create_segment(offset, name=name)
    seg.buf[: len(meta)] = meta
    for (start, length), view in zip(spans, views):
        seg.buf[start : start + length] = view.cast("B")
    for b in buffers:
        b.release()
    payload = SharedPayload(
        segment=seg.ref, meta_span=(0, len(meta)), buffer_spans=spans,
        payload_bytes=total,
    )
    # Keep the creator's mapping open until unlink — cheap, and lets
    # same-process decodes alias it without re-attaching.
    return payload


def decode_shared(payload: SharedPayload, copy: bool = False) -> DecodedPayload:
    """Rebuild the object behind a handle.

    ``copy=False`` (the zero-copy path) returns buffers aliasing the
    segment: ndarrays point straight at shared memory and the caller
    must :meth:`DecodedPayload.close` when done. ``copy=True``
    materializes private copies so the segment can be unlinked
    immediately (the driver's result-merge path).
    """
    if payload.inline is not None:
        meta, raw = payload.inline
        obj = pickle.loads(meta, buffers=raw)
        return DecodedPayload(obj)
    assert payload.segment is not None
    name = payload.segment[1]
    seg = _LIVE.get(name)
    attached = seg is None
    if attached:
        seg = attach_segment(payload.segment)
    start, length = payload.meta_span
    meta = bytes(seg.buf[start : start + length])
    views = [seg.buf[s : s + n] for s, n in payload.buffer_spans]
    if copy:
        obj = pickle.loads(meta, buffers=[bytes(v) for v in views])
        del views
        if attached:
            seg.close()
        return DecodedPayload(obj)
    obj = pickle.loads(meta, buffers=views)
    return DecodedPayload(obj, _segment=seg if attached else None)


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN

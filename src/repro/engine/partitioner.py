"""Partitioners: how key-value records map to reduce partitions.

Mirrors Spark's two built-in partitioners (§II-A of the paper):

* :class:`HashPartitioner` — stable hash of the key modulo the partition
  count. Insensitive to data content, but hot keys pile into one
  partition.
* :class:`RangePartitioner` — split points estimated by sampling the key
  distribution; keys fall into approximately equal-*count* ranges. Robust
  to hot-key skew of distinct keys, but a range scheme tuned on one RDD
  can skew another (§III-B).

Equality is structural (type + parameters) because co-partitioning
decisions — "these two RDDs can be joined without a shuffle" — hinge on
partitioner equality, exactly as in Spark.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import seeded_rng


def stable_hash(key: Any) -> int:
    """Process-independent hash used by :class:`HashPartitioner`.

    Python's builtin ``hash`` is salted per process for str/bytes; CRC32
    over a canonical encoding gives identical partition assignment across
    runs, which the deterministic benchmarks rely on.
    """
    if isinstance(key, (int, np.integer)):
        value = int(key)
        # Variable-length encoding: arbitrary-precision ints must not
        # overflow a fixed width (hypothesis found 2**127 keys).
        width = max((value.bit_length() + 8) // 8, 1)
        return zlib.crc32(value.to_bytes(width, "little", signed=True))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, float):
        return zlib.crc32(repr(key).encode("utf-8"))
    if isinstance(key, tuple):
        acc = 0x9E3779B9
        for part in key:
            acc = zlib.crc32(acc.to_bytes(8, "little") + stable_hash(part).to_bytes(8, "little"))
        return acc
    return zlib.crc32(repr(key).encode("utf-8"))


class Partitioner:
    """Maps record keys to partition indices in ``[0, num_partitions)``."""

    kind: str = "custom"

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ConfigurationError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = int(num_partitions)

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__  # type: ignore[union-attr]

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:  # pragma: no cover - dict key usage only
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Spark's default partitioner: ``stable_hash(key) % n``."""

    kind = "hash"

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Range partitioner with sampled split points.

    ``bounds`` has up to ``num_partitions - 1`` ascending keys; a key
    lands in the first range whose upper bound is >= the key (binary
    search, like Spark's ``RangePartitioner`` for small partition
    counts).

    Duplicate split points are dropped on construction: a repeated bound
    describes a range that ``bisect_left`` can never select, so keeping
    it would silently strand an empty partition *between* used ones and
    make structural equality (the co-partitioning test) miss equivalent
    schemes. With fewer bounds than ``num_partitions - 1`` — a
    low-cardinality key sample, or an empty sample — only the first
    ``len(bounds) + 1`` partitions ever receive keys and the trailing
    ones stay empty. That is the documented fallback, matching real range
    partitioning on degenerate key distributions; ``num_partitions`` is
    intentionally preserved so the scheme's task count stays what the
    optimizer chose.
    """

    kind = "range"

    def __init__(self, num_partitions: int, bounds: Sequence[Any]) -> None:
        super().__init__(num_partitions)
        bounds = list(bounds)
        if any(bounds[i] > bounds[i + 1] for i in range(len(bounds) - 1)):
            raise ConfigurationError("range bounds must be ascending")
        deduped: List[Any] = []
        for bound in bounds:
            if not deduped or bound > deduped[-1]:
                deduped.append(bound)
        if len(deduped) > num_partitions - 1:
            raise ConfigurationError(
                f"too many bounds ({len(deduped)}) for {num_partitions} partitions"
            )
        self.bounds: List[Any] = deduped

    def partition(self, key: Any) -> int:
        try:
            return bisect.bisect_left(self.bounds, key)
        except TypeError:
            # A range scheme built on one RDD's keys can meet another
            # RDD with an incomparable key type (a shared CHOPPER group,
            # or Spark's own mis-use); degrade to hashing rather than
            # failing the stage.
            return stable_hash(key) % self.num_partitions

    @classmethod
    def from_sample(
        cls,
        keys: Iterable[Any],
        num_partitions: int,
        sample_size: int = 1000,
        seed: int = 0,
    ) -> "RangePartitioner":
        """Build split points by sampling ``keys``, as Spark does.

        Draws up to ``sample_size`` keys (uniform without replacement),
        sorts them, and picks equally spaced quantiles as bounds, skipping
        any quantile that would repeat or fall below the previous bound —
        the emitted bounds are always strictly increasing. With fewer
        distinct sampled keys than partitions (or an empty sample, which
        yields no bounds at all and routes every key to partition 0), the
        trailing partitions simply stay empty — the same degenerate
        behaviour real range partitioning exhibits on low-cardinality
        keys; see the class docstring.
        """
        all_keys = list(keys)
        if not all_keys:
            return cls(num_partitions, [])
        rng = seeded_rng(seed)
        if len(all_keys) > sample_size:
            idx = rng.choice(len(all_keys), size=sample_size, replace=False)
            sample = sorted(all_keys[i] for i in idx)
        else:
            sample = sorted(all_keys)
        bounds = []
        for i in range(1, num_partitions):
            pos = int(round(i * len(sample) / num_partitions))
            pos = min(max(pos, 0), len(sample) - 1)
            bound = sample[pos]
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        return cls(num_partitions, bounds)


def make_partitioner(
    kind: str,
    num_partitions: int,
    sample_keys: Optional[Iterable[Any]] = None,
    seed: int = 0,
) -> Partitioner:
    """Factory used when applying a CHOPPER config tuple.

    ``kind`` is ``"hash"`` or ``"range"``; range construction requires
    ``sample_keys`` to estimate split points from.
    """
    if kind == "hash":
        return HashPartitioner(num_partitions)
    if kind == "range":
        if sample_keys is None:
            raise ConfigurationError("range partitioner requires sample keys")
        return RangePartitioner.from_sample(sample_keys, num_partitions, seed=seed)
    raise ConfigurationError(f"unknown partitioner kind {kind!r}")

"""Partitioners: how key-value records map to reduce partitions.

Mirrors Spark's two built-in partitioners (§II-A of the paper):

* :class:`HashPartitioner` — stable hash of the key modulo the partition
  count. Insensitive to data content, but hot keys pile into one
  partition.
* :class:`RangePartitioner` — split points estimated by sampling the key
  distribution; keys fall into approximately equal-*count* ranges. Robust
  to hot-key skew of distinct keys, but a range scheme tuned on one RDD
  can skew another (§III-B).

Equality is structural (type + parameters) because co-partitioning
decisions — "these two RDDs can be joined without a shuffle" — hinge on
partitioner equality, exactly as in Spark.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import seeded_rng


def stable_hash(key: Any) -> int:
    """Process-independent hash used by :class:`HashPartitioner`.

    Python's builtin ``hash`` is salted per process for str/bytes; CRC32
    over a canonical encoding gives identical partition assignment across
    runs, which the deterministic benchmarks rely on.
    """
    if isinstance(key, (int, np.integer)):
        value = int(key)
        # Variable-length encoding: arbitrary-precision ints must not
        # overflow a fixed width (hypothesis found 2**127 keys).
        width = max((value.bit_length() + 8) // 8, 1)
        return zlib.crc32(value.to_bytes(width, "little", signed=True))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, float):
        return zlib.crc32(repr(key).encode("utf-8"))
    if isinstance(key, tuple):
        acc = 0x9E3779B9
        for part in key:
            acc = zlib.crc32(acc.to_bytes(8, "little") + stable_hash(part).to_bytes(8, "little"))
        return acc
    return zlib.crc32(repr(key).encode("utf-8"))


def _crc32_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
        table[i] = crc
    return table


_CRC32_TABLE = _crc32_table()
# Magnitude thresholds for the variable-width int encoding: a key of
# magnitude >= 2**(8w - 1) needs more than w bytes (see stable_hash).
_INT_WIDTH_THRESHOLDS = np.array([1 << (8 * w - 1) for w in range(1, 9)], dtype=np.uint64)


def _crc32_rows(buf: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Vectorized zlib.crc32 over ragged rows of a zero-padded byte matrix."""
    crc = np.full(buf.shape[0], 0xFFFFFFFF, dtype=np.uint32)
    for j in range(buf.shape[1]):
        idx = (crc ^ buf[:, j]) & np.uint32(0xFF)
        updated = _CRC32_TABLE[idx] ^ (crc >> np.uint32(8))
        crc = np.where(lens > j, updated, crc)
    return crc ^ np.uint32(0xFFFFFFFF)


def _pack_ragged(chunks: List[bytes]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack variable-length byte strings into a zero-padded matrix."""
    lens = np.fromiter(map(len, chunks), dtype=np.int64, count=len(chunks))
    width = int(lens.max()) if len(chunks) else 0
    buf = np.zeros((len(chunks), max(width, 1)), dtype=np.uint8)
    flat = np.frombuffer(b"".join(chunks), dtype=np.uint8)
    rows = np.repeat(np.arange(len(chunks)), lens)
    cols = np.arange(len(flat)) - np.repeat(np.cumsum(lens) - lens, lens)
    buf[rows, cols] = flat
    return buf, lens


def stable_hash_many(keys: Sequence[Any]) -> List[int]:
    """Batched :func:`stable_hash`, identical per key.

    Homogeneous int batches hash via a table-driven CRC32 over the
    vectorized variable-width encoding; str/bytes batches via the same
    kernel over a padded byte matrix. Anything else (floats, tuples,
    arbitrary-precision ints, mixed batches) falls back to the scalar
    function — the contract is equality, never approximation.
    """
    n = len(keys)
    if n == 0:
        return []
    if isinstance(keys, np.ndarray):
        hashed = _stable_hash_array(keys)
        if hashed is not None:
            return hashed
        keys = keys.tolist()  # exact scalar equivalence for odd dtypes
    first = type(keys[0])
    if any(type(k) is not first for k in keys):
        return [stable_hash(k) for k in keys]
    if first is str or first is bytes:
        chunks = [k.encode("utf-8") for k in keys] if first is str else list(keys)
        buf, lens = _pack_ragged(chunks)
        return _crc32_rows(buf, lens).tolist()
    if first is int or first is bool or issubclass(first, np.integer):
        try:
            values = np.array([int(k) for k in keys], dtype=np.int64)
        except OverflowError:
            return [stable_hash(k) for k in keys]
        # Width per key, replicating max((bit_length + 8) // 8, 1) on the
        # magnitude; -(v + 1) + 1 sidesteps the |int64 min| overflow.
        mag = np.where(
            values >= 0,
            values.astype(np.uint64),
            (-(values + 1)).astype(np.uint64) + np.uint64(1),
        )
        widths = 1 + np.searchsorted(_INT_WIDTH_THRESHOLDS, mag, side="right")
        # Little-endian two's-complement bytes; a 9th sign byte covers
        # width-9 keys (int64 min, whose magnitude has 64 bits).
        le = values.astype("<i8").view(np.uint8).reshape(n, 8)
        sign = np.where(values < 0, 0xFF, 0x00).astype(np.uint8).reshape(n, 1)
        buf = np.concatenate([le, sign], axis=1)
        return _crc32_rows(buf, widths).tolist()
    return [stable_hash(k) for k in keys]


def _stable_hash_array(keys: np.ndarray) -> Optional[List[int]]:
    """CRC32 of an ndarray key column without per-element Python objects.

    Unicode columns encode to a zero-padded UTF-8 byte matrix in one
    ``np.char.encode`` call; integer columns reuse the vectorized
    variable-width encoding. Reading an element of a fixed-width U array
    always strips the NUL padding, so the byte lengths below match
    ``len(key.encode("utf-8"))`` exactly — multi-byte UTF-8 sequences
    never contain a 0x00 byte, only U+0000 itself does, and a key whose
    *last* character is U+0000 cannot exist in an array element.
    """
    if keys.dtype.kind == "U":
        encoded = np.char.encode(keys, "utf-8")
        lens = np.char.str_len(encoded).astype(np.int64)
        width = encoded.dtype.itemsize
        if width == 0:  # all-empty-string column
            buf = np.zeros((len(keys), 1), dtype=np.uint8)
        else:
            buf = (
                np.frombuffer(encoded.tobytes(), dtype=np.uint8)
                .reshape(len(keys), width)
            )
        return _crc32_rows(buf, lens).tolist()
    if keys.dtype.kind == "i" and keys.dtype.itemsize <= 8:
        values = keys.astype("<i8")
        mag = np.where(
            values >= 0,
            values.astype(np.uint64),
            (-(values + 1)).astype(np.uint64) + np.uint64(1),
        )
        widths = 1 + np.searchsorted(_INT_WIDTH_THRESHOLDS, mag, side="right")
        le = values.view(np.uint8).reshape(len(keys), 8)
        sign = np.where(values < 0, 0xFF, 0x00).astype(np.uint8).reshape(len(keys), 1)
        buf = np.concatenate([le, sign], axis=1)
        return _crc32_rows(buf, widths).tolist()
    return None


class Partitioner:
    """Maps record keys to partition indices in ``[0, num_partitions)``."""

    kind: str = "custom"

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ConfigurationError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = int(num_partitions)

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def partition_many(self, keys: Sequence[Any]) -> List[int]:
        """Batched :meth:`partition`: one index per key, identical per key.

        Subclasses override this with vectorized kernels; the base
        implementation is the plain per-key loop, so custom partitioners
        stay correct without opting in. Array key columns (columnar
        shuffle blocks) are materialized to Python scalars first so a
        custom ``partition`` never sees numpy scalar types.
        """
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        return [self.partition(k) for k in keys]

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__  # type: ignore[union-attr]

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:  # pragma: no cover - dict key usage only
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Spark's default partitioner: ``stable_hash(key) % n``."""

    kind = "hash"

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions

    def partition_many(self, keys: Sequence[Any]) -> List[int]:
        n = self.num_partitions
        return [h % n for h in stable_hash_many(keys)]


class RangePartitioner(Partitioner):
    """Range partitioner with sampled split points.

    ``bounds`` has up to ``num_partitions - 1`` ascending keys; a key
    lands in the first range whose upper bound is >= the key (binary
    search, like Spark's ``RangePartitioner`` for small partition
    counts).

    Duplicate split points are dropped on construction: a repeated bound
    describes a range that ``bisect_left`` can never select, so keeping
    it would silently strand an empty partition *between* used ones and
    make structural equality (the co-partitioning test) miss equivalent
    schemes. With fewer bounds than ``num_partitions - 1`` — a
    low-cardinality key sample, or an empty sample — only the first
    ``len(bounds) + 1`` partitions ever receive keys and the trailing
    ones stay empty. That is the documented fallback, matching real range
    partitioning on degenerate key distributions; ``num_partitions`` is
    intentionally preserved so the scheme's task count stays what the
    optimizer chose.
    """

    kind = "range"

    def __init__(self, num_partitions: int, bounds: Sequence[Any]) -> None:
        super().__init__(num_partitions)
        bounds = list(bounds)
        if any(bounds[i] > bounds[i + 1] for i in range(len(bounds) - 1)):
            raise ConfigurationError("range bounds must be ascending")
        deduped: List[Any] = []
        for bound in bounds:
            if not deduped or bound > deduped[-1]:
                deduped.append(bound)
        if len(deduped) > num_partitions - 1:
            raise ConfigurationError(
                f"too many bounds ({len(deduped)}) for {num_partitions} partitions"
            )
        self.bounds: List[Any] = deduped

    def partition(self, key: Any) -> int:
        try:
            return bisect.bisect_left(self.bounds, key)
        except TypeError:
            # A range scheme built on one RDD's keys can meet another
            # RDD with an incomparable key type (a shared CHOPPER group,
            # or Spark's own mis-use); degrade to hashing rather than
            # failing the stage.
            return stable_hash(key) % self.num_partitions

    def partition_many(self, keys: Sequence[Any]) -> List[int]:
        if not self.bounds:
            return [0] * len(keys)
        if len(keys) == 0:
            return []
        vectorized = self._searchsorted_many(keys)
        if vectorized is not None:
            return vectorized
        if isinstance(keys, np.ndarray):
            # Exact scalar equivalence: the per-key path must see Python
            # scalars (stable_hash of a numpy float reprs differently).
            keys = keys.tolist()
        return [self.partition(k) for k in keys]

    def _searchsorted_many(self, keys: Sequence[Any]) -> Optional[List[int]]:
        """``np.searchsorted`` fast path, or None when it can't match bisect.

        Only homogeneous batches whose comparisons numpy reproduces
        exactly qualify: str-vs-str, bytes-vs-bytes, or numbers small
        enough that float64 conversion is exact. NaNs fall back (bisect
        and searchsorted order them differently), as do arbitrary-
        precision ints.
        """
        if isinstance(keys, np.ndarray):
            return self._searchsorted_array(keys)
        str_types = (str,)
        bytes_types = (bytes,)
        num_types = (bool, int, float)
        for probe, exact in ((str_types, True), (bytes_types, True)):
            if isinstance(keys[0], probe):
                if not all(type(k) in probe for k in keys):
                    return None
                if not all(type(b) in probe for b in self.bounds):
                    return None
                karr = np.array(keys)
                barr = np.array(self.bounds)
                # Fixed-width string buffers pad with NULs, and a *trailing*
                # NUL is indistinguishable from padding: numpy compares
                # "\x00" equal to "" where Python orders them. If any key
                # or bound lost length in the round trip, keep bisect.
                if int(np.char.str_len(karr).sum()) != sum(map(len, keys)):
                    return None
                if int(np.char.str_len(barr).sum()) != sum(
                    map(len, self.bounds)
                ):
                    return None
                return np.searchsorted(barr, karr, side="left").tolist()
        if isinstance(keys[0], num_types):
            if not all(type(k) in num_types for k in keys):
                return None
            if not all(type(b) in num_types for b in self.bounds):
                return None
            limit = float(1 << 53)  # beyond this, int -> float64 rounds
            try:
                kv = np.asarray(keys, dtype=np.float64)
                bv = np.asarray(self.bounds, dtype=np.float64)
            except (OverflowError, ValueError):
                return None
            if np.isnan(kv).any() or np.isnan(bv).any():
                return None
            ints = [k for k in keys if type(k) is int] + [
                b for b in self.bounds if type(b) is int
            ]
            if any(k > limit or k < -limit for k in ints):
                return None
            return np.searchsorted(bv, kv, side="left").tolist()
        return None

    def _searchsorted_array(self, keys: np.ndarray) -> Optional[List[int]]:
        """Array-column fast path (columnar shuffle blocks).

        Array elements never carry trailing NULs (reading a fixed-width
        U element strips the padding), so only the *bounds* need the
        round-trip length guard. Integer keys beyond 2**53 would round in
        the float64 comparison; those columns fall back to the exact
        per-key bisect.
        """
        num_types = (bool, int, float)
        if keys.dtype.kind == "U":
            if not all(type(b) is str for b in self.bounds):
                return None
            barr = np.array(self.bounds)
            if int(np.char.str_len(barr).sum()) != sum(map(len, self.bounds)):
                return None
            return np.searchsorted(barr, keys, side="left").tolist()
        if keys.dtype.kind in "if":
            if not all(type(b) in num_types for b in self.bounds):
                return None
            if keys.dtype.kind == "i":
                limit = 1 << 53
                if int(keys.max()) > limit or int(keys.min()) < -limit:
                    return None
            kv = keys.astype(np.float64)
            try:
                bv = np.asarray(self.bounds, dtype=np.float64)
            except (OverflowError, ValueError):
                return None
            if np.isnan(kv).any() or np.isnan(bv).any():
                return None
            ints = [b for b in self.bounds if type(b) is int]
            if any(b > (1 << 53) or b < -(1 << 53) for b in ints):
                return None
            return np.searchsorted(bv, kv, side="left").tolist()
        return None

    @classmethod
    def from_sample(
        cls,
        keys: Iterable[Any],
        num_partitions: int,
        sample_size: int = 1000,
        seed: int = 0,
    ) -> "RangePartitioner":
        """Build split points by sampling ``keys``, as Spark does.

        Draws up to ``sample_size`` keys (uniform without replacement),
        sorts them, and picks equally spaced quantiles as bounds, skipping
        any quantile that would repeat or fall below the previous bound —
        the emitted bounds are always strictly increasing. With fewer
        distinct sampled keys than partitions (or an empty sample, which
        yields no bounds at all and routes every key to partition 0), the
        trailing partitions simply stay empty — the same degenerate
        behaviour real range partitioning exhibits on low-cardinality
        keys; see the class docstring.
        """
        all_keys = list(keys)
        if not all_keys:
            return cls(num_partitions, [])
        rng = seeded_rng(seed)
        if len(all_keys) > sample_size:
            idx = rng.choice(len(all_keys), size=sample_size, replace=False)
            sample = sorted(all_keys[i] for i in idx)
        else:
            sample = sorted(all_keys)
        bounds = []
        for i in range(1, num_partitions):
            pos = int(round(i * len(sample) / num_partitions))
            pos = min(max(pos, 0), len(sample) - 1)
            bound = sample[pos]
            if not bounds or bound > bounds[-1]:
                bounds.append(bound)
        return cls(num_partitions, bounds)

    @classmethod
    def from_weighted_keys(
        cls,
        keys: Iterable[Any],
        weights: Iterable[float],
        num_partitions: int,
    ) -> "RangePartitioner":
        """Build byte-balanced split points from an exact key histogram.

        The AQE "switch" path: ``keys``/``weights`` are every shuffled
        key with its virtual record size, so unlike :meth:`from_sample`
        (uniform over *records*) the cuts equalize **bytes** per range.
        Walks the sorted (key, weight) pairs consuming whole equal-key
        runs — equal keys can never straddle a bound — and emits a bound
        each time the byte prefix-sum crosses the next equal share.
        Deterministic in the multiset of pairs, so re-deriving from
        rebucketted (or chaos-rebuilt) map outputs reproduces the same
        partitioner.
        """
        pairs = sorted(zip(keys, weights), key=lambda kw: kw[0])
        if not pairs:
            return cls(num_partitions, [])
        total = float(sum(w for _k, w in pairs))
        if total <= 0:
            return cls(num_partitions, [])
        share = total / num_partitions
        bounds: List[Any] = []
        acc = 0.0
        i = 0
        n = len(pairs)
        while i < n and len(bounds) < num_partitions - 1:
            key = pairs[i][0]
            while i < n and pairs[i][0] == key:
                acc += pairs[i][1]
                i += 1
            if i < n and acc >= share * (len(bounds) + 1) - 1e-9:
                bounds.append(key)
        return cls(num_partitions, bounds)


def make_partitioner(
    kind: str,
    num_partitions: int,
    sample_keys: Optional[Iterable[Any]] = None,
    seed: int = 0,
) -> Partitioner:
    """Factory used when applying a CHOPPER config tuple.

    ``kind`` is ``"hash"`` or ``"range"``; range construction requires
    ``sample_keys`` to estimate split points from.
    """
    if kind == "hash":
        return HashPartitioner(num_partitions)
    if kind == "range":
        if sample_keys is None:
            raise ConfigurationError("range partitioner requires sample keys")
        return RangePartitioner.from_sample(sample_keys, num_partitions, seed=seed)
    raise ConfigurationError(f"unknown partitioner kind {kind!r}")

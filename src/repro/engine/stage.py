"""Stages: pipelined chunks of the lineage DAG between shuffle boundaries.

Mirrors the paper's Fig. 1: a job is cut into ShuffleMapStages (each
writes map output for one shuffle dependency) and one ResultStage. A
stage's tasks each run the full narrow pipeline rooted at the stage's
terminal RDD for one partition.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, List, Optional, Set

from repro.engine.dependencies import NarrowDependency, ShuffleDependency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD

SHUFFLE_MAP = "shuffle_map"
RESULT = "result"


class Stage:
    """One schedulable stage of a job."""

    def __init__(
        self,
        stage_id: int,
        rdd: "RDD",
        parents: List["Stage"],
        kind: str,
        shuffle_dep: Optional[ShuffleDependency] = None,
    ) -> None:
        self.stage_id = stage_id
        self.rdd = rdd
        self.parents = parents
        self.kind = kind
        self.shuffle_dep = shuffle_dep  # the dep this stage WRITES (map stages)
        self.completed = False
        # Fetch-failure resubmissions of this stage (lineage recovery);
        # bounded by EngineConf.max_stage_attempts.
        self.attempts = 0

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions

    @property
    def signature(self) -> str:
        """Stable identity of the stage for config/model lookup.

        Combines the terminal RDD's structural signature with the stage
        kind, so a map stage and a result stage over the same RDD chain
        get distinct entries.
        """
        h = hashlib.blake2b(digest_size=8)
        h.update(self.rdd.signature.encode())
        h.update(self.kind.encode())
        return h.hexdigest()

    @property
    def name(self) -> str:
        return f"{self.kind}:{self.rdd.op_name}#{self.stage_id}"

    def input_rdds(self) -> List["RDD"]:
        """The stage's base RDDs: shuffle readers and sources in its pipeline."""
        bases: List["RDD"] = []
        seen: Set[int] = set()

        def visit(rdd: "RDD") -> None:
            if rdd.id in seen:
                return
            seen.add(rdd.id)
            if not rdd.deps or rdd.shuffle_deps():
                bases.append(rdd)
            # Keep walking narrow deps only — shuffle deps cross into
            # parent stages. An RDD can mix the two (aligned cogroup).
            for dep in rdd.narrow_deps():
                visit(dep.parent)

        visit(self.rdd)
        return bases

    def incoming_shuffle_deps(self) -> List[ShuffleDependency]:
        """Shuffle dependencies whose output this stage's tasks read."""
        deps: List[ShuffleDependency] = []
        seen: Set[int] = set()

        def visit(rdd: "RDD") -> None:
            if rdd.id in seen:
                return
            seen.add(rdd.id)
            for dep in rdd.deps:
                if isinstance(dep, ShuffleDependency):
                    deps.append(dep)
                elif isinstance(dep, NarrowDependency):
                    visit(dep.parent)

        visit(self.rdd)
        return deps

    def cached_rdds(self) -> List["RDD"]:
        """Cached RDDs inside this stage's pipeline (for locality prefs)."""
        cached: List["RDD"] = []
        seen: Set[int] = set()

        def visit(rdd: "RDD") -> None:
            if rdd.id in seen:
                return
            seen.add(rdd.id)
            if rdd.is_cached:
                cached.append(rdd)
            for dep in rdd.narrow_deps():
                visit(dep.parent)

        visit(self.rdd)
        return cached

    def __repr__(self) -> str:
        return f"Stage({self.name}, tasks={self.num_tasks})"

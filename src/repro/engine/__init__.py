"""Spark-semantics in-memory DAG analytics engine (simulated time).

The substrate the paper runs on: RDDs with lazy lineage, hash/range
partitioners, a DAGScheduler that cuts stages at shuffle boundaries, a
shuffle manager with map-output tracking, a block-store cache, a
locality-aware task scheduler over a heterogeneous simulated cluster, and
per-stage statistics — everything CHOPPER observes and controls.
"""

from repro.engine.accumulators import Accumulator
from repro.engine.context import AnalyticsContext, Broadcast, EngineConf
from repro.engine.costmodel import CostModel, CostModelConfig
from repro.engine.dependencies import (
    Aggregator,
    CoalesceDependency,
    Dependency,
    NarrowDependency,
    OneToOneDependency,
    RangeNarrowDependency,
    ShuffleDependency,
)
from repro.engine.listener import (
    JobStats,
    Listener,
    ListenerBus,
    StageStats,
    TaskMetrics,
)
from repro.engine.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
    stable_hash,
)
from repro.engine.rdd import (
    RDD,
    CoalescedRDD,
    MapPartitionsRDD,
    SourceRDD,
    UnionRDD,
)
from repro.engine.shuffled import CogroupRDD, ShuffledRDD
from repro.engine.stage import RESULT, SHUFFLE_MAP, Stage

__all__ = [
    "Accumulator",
    "AnalyticsContext",
    "Broadcast",
    "EngineConf",
    "CostModel",
    "CostModelConfig",
    "Aggregator",
    "Dependency",
    "NarrowDependency",
    "OneToOneDependency",
    "RangeNarrowDependency",
    "CoalesceDependency",
    "ShuffleDependency",
    "JobStats",
    "Listener",
    "ListenerBus",
    "StageStats",
    "TaskMetrics",
    "HashPartitioner",
    "RangePartitioner",
    "Partitioner",
    "make_partitioner",
    "stable_hash",
    "RDD",
    "SourceRDD",
    "MapPartitionsRDD",
    "UnionRDD",
    "CoalescedRDD",
    "ShuffledRDD",
    "CogroupRDD",
    "Stage",
    "SHUFFLE_MAP",
    "RESULT",
]

"""Shuffle-consuming RDDs: ShuffledRDD and CogroupRDD.

These sit at the *base* of a stage (a shuffle boundary) — unless their
parent is already partitioned by an equal partitioner, in which case the
dependency is narrow and the would-be shuffle disappears, fusing the
aggregation into the consumer's stage. That fusion is both vanilla Spark
behaviour and the lever CHOPPER's Algorithm 3 pulls when it aligns the
schemes of join/co-group parents (§III-C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.engine.batch import RecordBatch, as_record_list
from repro.engine.combine import combine_numeric_add, fold_batch
from repro.engine.dependencies import (
    Aggregator,
    Dependency,
    OneToOneDependency,
    ShuffleDependency,
)
from repro.engine.partitioner import Partitioner
from repro.engine.rdd import RDD
from repro.engine.task import TaskContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import AnalyticsContext

_MODES = ("aggregate", "group", "identity")


class ShuffledRDD(RDD):
    """Result of a single-parent shuffle (reduceByKey, partitionBy, sort).

    Modes:
        ``aggregate`` — merge values per key with an :class:`Aggregator`
        (optionally combined map-side, which is what makes shuffle volume
        grow with the map partition count, the paper's Fig. 4);
        ``group`` — collect values per key into lists (groupByKey);
        ``identity`` — pass records through (partitionBy / repartition /
        sortByKey), optionally sorting each partition by key.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        mode: str,
        aggregator: Optional[Aggregator] = None,
        map_side_combine: bool = False,
        sort: bool = False,
        op_name: str = "shuffled",
        key_fn: Optional[Callable] = None,
        user_fixed: bool = False,
    ) -> None:
        if mode not in _MODES:
            raise ConfigurationError(f"unknown shuffle mode {mode!r}")
        if mode == "aggregate" and aggregator is None:
            raise ConfigurationError("aggregate mode requires an aggregator")
        # The shuffle dependency always exists; when the parent is already
        # co-partitioned the *active* dep is narrow and the shuffle dep is
        # shadowed. Alignment is reversible (reset_alignment) so a CHOPPER
        # rewrite can retune upstream partitioners without leaving a stale
        # narrow dep behind.
        self._shadow = ShuffleDependency(
            parent,
            partitioner,
            map_side_combine=(mode == "aggregate" and map_side_combine),
            aggregator=aggregator,
            key_fn=key_fn,
            user_fixed=user_fixed,
            ordered=sort,
        )
        dep: Dependency = self._shadow
        if parent.partitioner is not None and parent.partitioner == partitioner:
            dep = OneToOneDependency(parent)
        super().__init__(parent.ctx, [dep], op_name)
        self._partitioner = partitioner
        self.mode = mode
        self.aggregator = aggregator
        self._sort = sort

    @property
    def num_partitions(self) -> int:
        dep = self.deps[0]
        if isinstance(dep, ShuffleDependency):
            return dep.partitioner.num_partitions
        return dep.parent.num_partitions

    @property
    def partitioner(self) -> Optional[Partitioner]:
        dep = self.deps[0]
        if isinstance(dep, ShuffleDependency):
            return dep.partitioner
        return self._partitioner

    @property
    def size_scale(self) -> float:
        # Aggregated output is physically true-sized (a handful of keys);
        # grouped/pass-through output still represents scaled raw records.
        if self.mode == "aggregate":
            return 1.0
        return self.deps[0].parent.size_scale

    def reset_alignment(self) -> None:
        """Restore the shadowed shuffle dependency (pre-rewrite state).

        The shadow keeps its shuffle id, so a shuffle completed in an
        earlier job is still recognized after a reset/re-align cycle.
        """
        if not isinstance(self.deps[0], ShuffleDependency):
            self.deps[0] = self._shadow
            self._signature = None

    def align_to_parent(self) -> bool:
        """Convert the shuffle dep to narrow if the parent is co-partitioned.

        Called by the CHOPPER rewrite pass after it mutates upstream
        partitioners. Returns True if the conversion happened.
        """
        dep = self.deps[0]
        if not isinstance(dep, ShuffleDependency):
            return True
        parent = dep.parent
        if parent.partitioner is not None and parent.partitioner == dep.partitioner:
            self._partitioner = dep.partitioner
            self.deps[0] = OneToOneDependency(parent)
            self._signature = None
            return True
        return False

    def compute(self, split: int, task: TaskContext) -> List:
        dep = self.deps[0]
        if isinstance(dep, ShuffleDependency):
            records, stats = self.ctx.shuffle_manager.fetch(
                dep.shuffle_id,
                split,
                task.node,
                # AQE slice tasks fetch only their map-output range; the
                # driver concatenates slices in map order, reproducing
                # the unsplit partition byte-for-byte.
                map_range=task.map_ranges.get(dep.shuffle_id),
            )
            task.note_shuffle_read(
                stats.local_bytes, stats.remote_bytes_by_src, stats.n_blocks
            )
            task.note_input_hint(self.id, stats.total_bytes)
            incoming_combined = dep.map_side_combine
        else:
            records = dep.parent.materialize(split, task)
            incoming_combined = False

        if self.mode == "aggregate":
            out = self._merge(records, incoming_combined)
        elif self.mode == "group":
            groups: Dict[Any, List] = {}
            for k, v in as_record_list(records):
                groups.setdefault(k, []).append(v)
            out = list(groups.items())
        else:
            # to_records/list both produce a fresh list: fetch may have
            # returned a shared block container that must not be mutated
            # (the sort below happens on the copy).
            if isinstance(records, RecordBatch):
                out = records.to_records()
            else:
                out = list(records)
        if self._sort:
            out.sort(key=lambda r: r[0])
        return out

    def _merge(self, records, incoming_combined: bool) -> List:
        assert self.aggregator is not None
        agg = self.aggregator
        if self.ctx.conf.vectorized_kernels and len(records) and agg.numeric_add:
            # Both branches below are per-key left folds with elementwise
            # ``+`` (numeric_add's promise covers merge_value AND
            # merge_combiners), so the vectorized kernel applies to the
            # reduce side too; None means fold the scalar way. Columnar
            # blocks fold directly on their value columns.
            if isinstance(records, RecordBatch):
                folded = fold_batch(records)
                if folded is not None:
                    return folded.to_records()
            else:
                combined = combine_numeric_add(None, records)
                if combined is not None:
                    return list(combined.items())
        records = as_record_list(records)
        merged: Dict[Any, Any] = {}
        if incoming_combined:
            for k, c in records:
                if k in merged:
                    merged[k] = agg.merge_combiners(merged[k], c)
                else:
                    merged[k] = c
        else:
            for k, v in records:
                if k in merged:
                    merged[k] = agg.merge_value(merged[k], v)
                else:
                    merged[k] = agg.create_combiner(v)
        return list(merged.items())


class CogroupRDD(RDD):
    """Group several keyed RDDs by key: records are ``(k, (list, ...))``.

    Each parent contributes either a narrow dependency (already
    partitioned compatibly) or a shuffle dependency. ``join`` is a
    flat-map over this.
    """

    def __init__(
        self,
        ctx: "AnalyticsContext",
        parents: List[RDD],
        partitioner: Partitioner,
        user_fixed: bool = False,
    ) -> None:
        if len(parents) < 2:
            raise ConfigurationError("cogroup needs at least two parents")
        self._shadows: List[ShuffleDependency] = [
            ShuffleDependency(parent, partitioner, user_fixed=user_fixed)
            for parent in parents
        ]
        deps: List[Dependency] = []
        for parent, shadow in zip(parents, self._shadows):
            if parent.partitioner is not None and parent.partitioner == partitioner:
                deps.append(OneToOneDependency(parent))
            else:
                deps.append(shadow)
        super().__init__(ctx, deps, "cogroup")
        self._partitioner = partitioner

    @property
    def num_partitions(self) -> int:
        return self.effective_partitioner.num_partitions

    @property
    def partitioner(self) -> Optional[Partitioner]:
        return self.effective_partitioner

    @property
    def effective_partitioner(self) -> Partitioner:
        """The partitioner governing this cogroup's output partitions.

        Tracks the first shuffle dependency dynamically so a CHOPPER
        rewrite that mutates (or lazily resolves) the dep's partitioner is
        reflected here without extra bookkeeping; a fully-aligned cogroup
        (all deps narrow) falls back to the stored target.
        """
        for dep in self.deps:
            if isinstance(dep, ShuffleDependency):
                return dep.partitioner
        return self._partitioner

    @property
    def size_scale(self) -> float:
        return max(dep.parent.size_scale for dep in self.deps)

    def set_partitioner(self, partitioner: Partitioner) -> None:
        """Re-target the cogroup (CHOPPER rewrite hook).

        Updates every shuffle dependency to the new partitioner; narrow
        dependencies are left alone (their parents are being re-aligned by
        the same rewrite pass).
        """
        self._partitioner = partitioner
        for dep in self.deps:
            if isinstance(dep, ShuffleDependency):
                dep.partitioner = partitioner

    def reset_alignment(self) -> None:
        """Restore every shadowed shuffle dependency (pre-rewrite state)."""
        changed = False
        for i, dep in enumerate(self.deps):
            if not isinstance(dep, ShuffleDependency):
                self.deps[i] = self._shadows[i]
                changed = True
        if changed:
            self._signature = None

    def align_deps(self) -> int:
        """Convert shuffle deps whose parents became co-partitioned.

        Returns the number of dependencies converted to narrow.
        """
        converted = 0
        for i, dep in enumerate(self.deps):
            if not isinstance(dep, ShuffleDependency):
                continue
            parent = dep.parent
            if parent.partitioner is not None and parent.partitioner == dep.partitioner:
                self._partitioner = dep.partitioner
                self.deps[i] = OneToOneDependency(parent)
                self._signature = None
                converted += 1
        return converted

    def compute(self, split: int, task: TaskContext) -> List:
        n_sides = len(self.deps)
        buckets: Dict[Any, List[List]] = {}
        for side, dep in enumerate(self.deps):
            if isinstance(dep, ShuffleDependency):
                records, stats = self.ctx.shuffle_manager.fetch(
                    dep.shuffle_id, split, task.node
                )
                task.note_shuffle_read(
                    stats.local_bytes, stats.remote_bytes_by_src, stats.n_blocks
                )
                task.note_input_hint(self.id, stats.total_bytes)
            else:
                records = dep.parent.materialize(split, task)
            for k, v in as_record_list(records):
                if k not in buckets:
                    buckets[k] = [[] for _ in range(n_sides)]
                buckets[k][side].append(v)
        return [(k, tuple(sides)) for k, sides in buckets.items()]

"""The DAGScheduler: jobs → stages → tasks, with the CHOPPER hooks.

Faithful to the structure in the paper's Fig. 1: an action submits a job;
the lineage is cut at shuffle dependencies into ShuffleMapStages plus one
ResultStage; a stage launches when all its parents have completed; map
outputs persist, so a shuffle already computed by an earlier job is
skipped (Spark's stage-skipping).

The two CHOPPER integration points (§III-A — "the scheduler checks the
Spark configuration file before a stage is executed"):

1. ``ctx.advisor.rewrite(final_rdd, ctx)`` runs at job submission, before
   stages are built — the advisor mutates shuffle-dependency partitioners
   / source partition counts per the workload config file and re-aligns
   co-partitioned joins;
2. pending schemes left by the rewrite (range partitioners that need real
   key samples) are resolved just before the map stage that writes them
   launches, charging a sampling delay.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import FetchFailure, SchedulingError, StageAbortedError
from repro.engine.dependencies import NarrowDependency, ShuffleDependency
from repro.engine.listener import JobStats, StageStats
from repro.engine.shuffled import CogroupRDD, ShuffledRDD
from repro.engine.stage import RESULT, SHUFFLE_MAP, Stage
from repro.engine.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.adaptive import AdaptivePlan
    from repro.engine.context import AnalyticsContext
    from repro.engine.rdd import RDD


class StageRun:
    """Execution state of one stage within one job."""

    def __init__(
        self,
        stage: Stage,
        stats: StageStats,
        result_fn: Optional[Callable],
        on_complete: Callable[["StageRun"], None],
    ) -> None:
        self.stage = stage
        self.stats = stats
        self.result_fn = result_fn
        self.tasks: List[Task] = []
        self.results: Dict[int, Any] = {}
        self.completed_partitions: Set[int] = set()
        # AQE split partitions mid-assembly: original split -> {slice
        # index -> raw slice records}, concatenated in slice order (==
        # map-output order) once every slice has landed.
        self._pending_slices: Dict[int, Dict[int, Any]] = {}
        self._remaining = 0
        self._on_complete = on_complete

    def set_tasks(self, tasks: List[Task]) -> None:
        self.tasks = tasks
        self._remaining = len(tasks)

    def task_finished(self, task: Task, metrics, result: Any) -> None:
        if task.partition in self.completed_partitions:
            # A parked copy of a task whose speculative sibling already
            # won must not double-complete the partition.
            return
        self.completed_partitions.add(task.partition)
        self.stats.tasks.append(metrics)
        self.stats.input_bytes += (
            metrics.input_bytes + metrics.cache_read_bytes + metrics.shuffle_read
        )
        self.stats.shuffle_read_bytes += metrics.shuffle_read
        self.stats.shuffle_write_bytes += metrics.shuffle_write
        if self.stage.kind == RESULT:
            self._record_result(task, result)
        self._remaining -= 1
        if self._remaining == 0:
            self._on_complete(self)

    def _record_result(self, task: Task, result: Any) -> None:
        """File a physical task's result under its original partition(s).

        On AQE-re-planned stages ``task.partition`` is a *physical* index
        while ``self.results`` is keyed by original split, so the final
        ``job.results`` assembly is identical with AQE on or off.
        """
        spec = task.spec
        if spec is None:
            self.results[task.partition] = result
        elif spec.is_slice:
            split = spec.splits[0]
            slices = self._pending_slices.setdefault(split, {})
            slices[spec.slice_index] = result
            if len(slices) == spec.n_slices:
                # Slices carry raw records (the executor skips result_fn
                # for them); concatenating in slice order reproduces the
                # unsplit partition byte-for-byte, then result_fn runs
                # once — exactly like the plain task would have.
                records: List[Any] = []
                for idx in range(spec.n_slices):
                    records.extend(slices[idx])
                del self._pending_slices[split]
                self.results[split] = (
                    self.result_fn(split, records)
                    if self.result_fn
                    else records
                )
        elif spec.is_plain:
            self.results[spec.splits[0]] = result
        else:
            # Coalesced: one result per covered split, in split order.
            for split, value in zip(spec.splits, result):
                self.results[split] = value


class _JobState:
    def __init__(self, job_id: int, final_stage: Stage, submitted_at: float) -> None:
        self.stats = JobStats(job_id=job_id, submitted_at=submitted_at)
        self.final_stage = final_stage
        self.results: Optional[List[Any]] = None
        self.waiting: List[Stage] = []
        # Running stages by id (the AQE switch guard needs the objects:
        # a shuffle is only re-bucketed while no running stage reads it).
        self.running: Dict[int, Stage] = {}

    @property
    def done(self) -> bool:
        return self.results is not None


class DAGScheduler:
    """Builds and drives the stage graph of each job."""

    def __init__(self, ctx: "AnalyticsContext") -> None:
        self.ctx = ctx
        self._completed_shuffles: Set[int] = set()
        self._job: Optional[_JobState] = None
        # Lineage recovery (node loss): the map stage behind each shuffle
        # id, reduce tasks parked on a fetch failure awaiting the rebuild,
        # and shuffle ids with a resubmission already scheduled.
        self._shuffle_stages: Dict[int, Stage] = {}
        self._parked: Dict[int, List[Tuple[StageRun, Task]]] = {}
        self._resubmitting: Set[int] = set()
        # AQE: the adaptive plan derived at each stage's first full
        # launch (None = measured sizes asked for no change). Cached by
        # stage id so any later full launch of the same stage object
        # reuses the derived plan rather than re-deciding.
        self._adaptive_plans: Dict[int, Optional["AdaptivePlan"]] = {}
        # Diagnostics, mirrored into the metrics registry (tests assert
        # attribute and counter never drift).
        self.fetch_failures = 0
        self.stage_resubmissions = 0
        registry = ctx.obs.metrics
        self._m_fetch_failures = registry.counter("scheduler.fetch_failures")
        self._m_resubmissions = registry.counter("scheduler.stage_resubmissions")

    # ------------------------------------------------------------------
    # Job entry point
    # ------------------------------------------------------------------

    def run_job(
        self, final_rdd: "RDD", result_fn: Optional[Callable] = None
    ) -> List[Any]:
        """Execute an action: returns the per-partition results in order."""
        if self._job is not None:
            raise SchedulingError("nested run_job is not supported")
        if self.ctx.advisor is not None:
            wall0 = time.perf_counter()
            self.ctx.advisor.rewrite(final_rdd, self.ctx)
            # The rewrite is driver-side and free in simulated time; its
            # real cost is recorded as wall-clock milliseconds.
            self.ctx.obs.span(
                f"rewrite:{type(self.ctx.advisor).__name__}", "chopper",
                self.ctx.sim.now, self.ctx.sim.now,
                wall_ms=round((time.perf_counter() - wall0) * 1e3, 3),
            )
        final_stage = self._build_stages(final_rdd)
        job = _JobState(self.ctx.next_job_id(), final_stage, self.ctx.sim.now)
        self._job = job
        self._result_fn = result_fn
        self.ctx.obs.log_event(
            "INFO", "dag_scheduler", "job_started",
            job=job.stats.job_id, final_stage=final_stage.name,
        )
        try:
            self.ctx.task_scheduler.arm_chaos()
            self._submit_stage(final_stage)
            self.ctx.sim.run()
            if not job.done:
                raise SchedulingError(
                    f"job {job.stats.job_id} stalled: event queue drained with "
                    f"stages still waiting"
                )
        finally:
            self.ctx.task_scheduler.disarm_chaos()
            self._job = None
        job.stats.completed_at = self.ctx.sim.now
        self.ctx.job_stats.append(job.stats)
        self.ctx.obs.span(
            f"job-{job.stats.job_id}", "job",
            job.stats.submitted_at, job.stats.completed_at,
            job_id=job.stats.job_id, stages=len(job.stats.stages),
        )
        self.ctx.obs.log_event(
            "INFO", "dag_scheduler", "job_finished",
            job=job.stats.job_id, stages=len(job.stats.stages),
            duration=job.stats.completed_at - job.stats.submitted_at,
        )
        self.ctx.listener_bus.job_end(job.stats)
        assert job.results is not None
        return job.results

    # ------------------------------------------------------------------
    # Stage graph construction
    # ------------------------------------------------------------------

    def provisional_stages(self, final_rdd: "RDD") -> List[Stage]:
        """Build the stage graph without executing — the advisor's view.

        Returns every stage of the would-be job in dependency order
        (parents before children), final stage last. Stages already
        satisfied by completed shuffles are included (marked completed).
        """
        final_stage = self._build_stages(final_rdd)
        ordered: List[Stage] = []
        seen: Set[int] = set()

        def visit(stage: Stage) -> None:
            if stage.stage_id in seen:
                return
            seen.add(stage.stage_id)
            for parent in stage.parents:
                visit(parent)
            ordered.append(stage)

        visit(final_stage)
        return ordered

    def _build_stages(self, final_rdd: "RDD") -> Stage:
        stage_by_shuffle: Dict[int, Stage] = {}

        def parent_stages(rdd: "RDD") -> List[Stage]:
            parents: List[Stage] = []
            seen: Set[int] = set()

            def visit(node: "RDD") -> None:
                if node.id in seen:
                    return
                seen.add(node.id)
                for dep in node.deps:
                    if isinstance(dep, ShuffleDependency):
                        stage = stage_for(dep)
                        if stage not in parents:
                            parents.append(stage)
                    elif isinstance(dep, NarrowDependency):
                        visit(dep.parent)

            visit(rdd)
            return parents

        def stage_for(dep: ShuffleDependency) -> Stage:
            existing = stage_by_shuffle.get(dep.shuffle_id)
            if existing is not None:
                return existing
            stage = Stage(
                self.ctx.next_stage_id(),
                dep.parent,
                parent_stages(dep.parent),
                SHUFFLE_MAP,
                shuffle_dep=dep,
            )
            if dep.shuffle_id in self._completed_shuffles:
                stage.completed = True
            stage_by_shuffle[dep.shuffle_id] = stage
            self._shuffle_stages[dep.shuffle_id] = stage
            return stage

        return Stage(
            self.ctx.next_stage_id(), final_rdd, parent_stages(final_rdd), RESULT
        )

    # ------------------------------------------------------------------
    # Stage submission
    # ------------------------------------------------------------------

    def _submit_stage(self, stage: Stage) -> None:
        job = self._job
        assert job is not None
        if stage.completed or stage.stage_id in job.running or stage in job.waiting:
            return
        missing = [p for p in stage.parents if not p.completed]
        if missing:
            job.waiting.append(stage)
            for parent in missing:
                self._submit_stage(parent)
            return
        self._run_stage(stage)

    def _run_stage(
        self,
        stage: Stage,
        partitions: Optional[List[int]] = None,
        attempt: int = 0,
    ) -> None:
        """Launch a stage — all partitions, or (on resubmission) a subset."""
        job = self._job
        assert job is not None
        job.running[stage.stage_id] = stage

        delay = 0.0
        dep = stage.shuffle_dep
        if dep is not None and dep.pending_scheme is not None:
            partitioner, sampling_delay = dep.pending_scheme.resolve(self.ctx, stage)
            dep.partitioner = partitioner
            dep.pending_scheme = None
            delay += sampling_delay

        if dep is not None:
            self.ctx.shuffle_manager.register(
                dep.shuffle_id, stage.num_tasks, dep.num_reduce_partitions
            )

        # AQE: on a stage's first full launch with materialized shuffle
        # inputs, re-plan the physical task layout from the measured
        # per-partition sizes. Partial relaunches (lineage recovery of
        # lost map partitions) always use plain per-split tasks — the
        # rebuilt outputs must land under their original map ids — and
        # parked reduce tasks keep their specs, so a recovered run never
        # re-decides anything.
        plan = None
        if self.ctx.conf.adaptive_execution and partitions is None:
            if stage.stage_id in self._adaptive_plans:
                plan = self._adaptive_plans[stage.stage_id]
            else:
                plan = self._plan_adaptive(stage)
                self._adaptive_plans[stage.stage_id] = plan

        stats = StageStats(
            stage_run_id=self.ctx.next_stage_run_id(),
            job_id=job.stats.job_id,
            signature=stage.signature,
            name=stage.name,
            kind=stage.kind,
            num_partitions=stage.num_tasks,
            partitioner_kind=self._input_partitioner_kind(stage),
            submitted_at=self.ctx.sim.now + delay,
            parent_signatures=[p.signature for p in stage.parents],
            cogroup_sides=self._cogroup_sides(stage),
            user_fixed=any(
                d.user_fixed for d in stage.incoming_shuffle_deps()
            ),
            source_signatures=self._source_signatures(stage),
            attempt=attempt,
            pruned_partitions=self._pruned_partitions(stage),
        )
        result_fn = self._result_fn if stage.kind == RESULT else None
        run = StageRun(stage, stats, result_fn, self._on_stage_complete)
        if plan is not None:
            stats.adapted_num_partitions = len(plan.specs)
            run.set_tasks(
                [
                    Task(
                        stage,
                        i,
                        preferred_nodes=self._spec_preferences(stage, spec),
                        spec=spec,
                    )
                    for i, spec in enumerate(plan.specs)
                ]
            )
        else:
            indices = (
                partitions if partitions is not None else range(stage.num_tasks)
            )
            run.set_tasks(
                [
                    Task(stage, i, preferred_nodes=self._task_preferences(stage, i))
                    for i in indices
                ]
            )
        self.ctx.obs.log_event(
            "INFO", "dag_scheduler", "stage_submitted",
            job=job.stats.job_id, stage=stats.name, stage_run=stats.stage_run_id,
            kind=stats.kind, tasks=len(run.tasks), attempt=attempt,
        )
        self.ctx.listener_bus.stage_submitted(stats)
        if delay > 0:
            self.ctx.sim.schedule(delay, self.ctx.task_scheduler.submit_stage, run)
        else:
            self.ctx.task_scheduler.submit_stage(run)

    def _on_stage_complete(self, run: StageRun) -> None:
        job = self._job
        assert job is not None
        stage = run.stage
        stage.completed = True
        job.running.pop(stage.stage_id, None)
        run.stats.completed_at = self.ctx.sim.now
        if stage.kind == SHUFFLE_MAP:
            assert stage.shuffle_dep is not None
            # Snapshot how the map output landed across reduce partitions
            # (the skew detector's data-side signal).
            run.stats.output_partition_bytes = (
                self.ctx.shuffle_manager.partition_sizes(
                    stage.shuffle_dep.shuffle_id
                )
            )
        self.ctx.stage_stats.append(run.stats)
        job.stats.stages.append(run.stats)
        self.ctx.obs.span(
            run.stats.name, "stage",
            run.stats.submitted_at, run.stats.completed_at,
            stage_run_id=run.stats.stage_run_id,
            kind=run.stats.kind,
            P=run.stats.num_partitions,
            partitioner=run.stats.partitioner_kind,
            tasks=len(run.stats.tasks),
            attempt=run.stats.attempt,
            shuffle_read_bytes=run.stats.shuffle_read_bytes,
            shuffle_write_bytes=run.stats.shuffle_write_bytes,
        )
        self.ctx.obs.log_event(
            "INFO", "dag_scheduler", "stage_completed",
            job=job.stats.job_id, stage=run.stats.name,
            stage_run=run.stats.stage_run_id, kind=run.stats.kind,
            tasks=len(run.stats.tasks),
            duration=run.stats.completed_at - run.stats.submitted_at,
            shuffle_write_bytes=run.stats.shuffle_write_bytes,
        )
        self.ctx.listener_bus.stage_completed(run.stats)

        if stage.kind == SHUFFLE_MAP:
            assert stage.shuffle_dep is not None
            shuffle_id = stage.shuffle_dep.shuffle_id
            self._completed_shuffles.add(shuffle_id)
            self._requeue_parked(shuffle_id)
            self._wake_waiting()
        else:
            job.results = [run.results[i] for i in range(stage.num_tasks)]
            # The job is done; cancel chaos events still in the heap so a
            # kill timed after the last task cannot drag the clock (and
            # the job's wall time) out to the chaos schedule. Unfired
            # failures re-arm at the next job.
            self.ctx.task_scheduler.disarm_chaos()

    # ------------------------------------------------------------------
    # Lineage recovery (fetch failures after node loss)
    # ------------------------------------------------------------------

    def handle_fetch_failure(
        self, stage_run: StageRun, task: Task, failure: FetchFailure
    ) -> None:
        """A reduce task found its map inputs gone: park it, rebuild them.

        Called by the task scheduler. The task waits (parked, off the
        queue) while the parent map stage re-runs for exactly the lost
        map partitions; concurrent failures of the same shuffle batch
        into one resubmission after ``stage_resubmit_delay``.
        """
        self.fetch_failures += 1
        self._m_fetch_failures.inc()
        now = self.ctx.sim.now
        self.ctx.obs.span(
            "fetch-failure", "chaos", now, now,
            shuffle_id=failure.shuffle_id,
            stage=stage_run.stats.name,
            partition=task.partition,
            lost_node=failure.node,
            lost_maps=len(failure.map_ids),
        )
        self.ctx.obs.log_event(
            "WARNING", "dag_scheduler", "fetch_failure",
            stage=stage_run.stats.name, partition=task.partition,
            shuffle=failure.shuffle_id, lost_node=failure.node,
            lost_maps=len(failure.map_ids),
        )
        task.attempt += 1
        self._parked.setdefault(failure.shuffle_id, []).append((stage_run, task))
        if failure.shuffle_id not in self._resubmitting:
            self._resubmitting.add(failure.shuffle_id)
            self.ctx.sim.schedule(
                self.ctx.conf.stage_resubmit_delay,
                self._resubmit_map_stage,
                failure.shuffle_id,
            )

    def _resubmit_map_stage(self, shuffle_id: int) -> None:
        stage = self._shuffle_stages[shuffle_id]
        missing = self.ctx.shuffle_manager.missing_map_ids(shuffle_id)
        if not missing:
            # Rebuilt in the meantime (e.g. by a speculative map attempt
            # landing after the loss): just release the parked tasks.
            self._requeue_parked(shuffle_id)
            return
        stage.attempts += 1
        if stage.attempts >= self.ctx.conf.max_stage_attempts:
            raise StageAbortedError(
                f"stage {stage.name} resubmitted {stage.attempts} times "
                f"(max_stage_attempts={self.ctx.conf.max_stage_attempts}); "
                f"aborting job"
            )
        stage.completed = False
        self._completed_shuffles.discard(shuffle_id)
        self.stage_resubmissions += 1
        self._m_resubmissions.inc()
        now = self.ctx.sim.now
        self.ctx.obs.span(
            "stage-resubmit", "chaos", now, now,
            shuffle_id=shuffle_id,
            stage=stage.name,
            missing_maps=len(missing),
            attempt=stage.attempts,
        )
        self.ctx.obs.log_event(
            "WARNING", "dag_scheduler", "stage_resubmitted",
            stage=stage.name, shuffle=shuffle_id,
            missing_maps=len(missing), attempt=stage.attempts,
        )
        self._run_stage(stage, partitions=missing, attempt=stage.attempts)

    def _requeue_parked(self, shuffle_id: int) -> None:
        """Release reduce tasks parked on ``shuffle_id`` back to the queue."""
        self._resubmitting.discard(shuffle_id)
        parked = self._parked.pop(shuffle_id, None)
        if not parked:
            return
        by_run: Dict[int, Tuple[StageRun, List[Task]]] = {}
        for run, task in parked:
            if task.partition in run.completed_partitions:
                continue
            by_run.setdefault(id(run), (run, []))[1].append(task)
        for run, tasks in by_run.values():
            self.ctx.task_scheduler.submit_tasks(run, tasks)

    def _wake_waiting(self) -> None:
        job = self._job
        assert job is not None
        ready = [
            s for s in job.waiting if all(p.completed for p in s.parents)
        ]
        for stage in ready:
            job.waiting.remove(stage)
            self._run_stage(stage)

    # ------------------------------------------------------------------
    # Adaptive query execution (runtime reduce-side re-planning)
    # ------------------------------------------------------------------

    def _plan_adaptive(self, stage: Stage) -> Optional["AdaptivePlan"]:
        """Derive this stage's adaptive plan from measured shuffle sizes.

        Pure in the map outputs and the conf knobs: a chaos-recovered or
        re-executed run derives the identical plan. Returns None when the
        stage has no materialized shuffle inputs or the sizes ask for no
        change.
        """
        from repro.engine import adaptive

        deps = stage.incoming_shuffle_deps()
        if not deps:
            return None
        manager = self.ctx.shuffle_manager
        conf = self.ctx.conf
        for dep in deps:
            if not manager.is_registered(dep.shuffle_id):
                return None
            if manager.missing_map_ids(dep.shuffle_id):
                # Degraded shuffle (a kill landed between map completion
                # and this launch): fall back to plain tasks and let the
                # normal fetch-failure recovery handle it.
                return None
            if dep.num_reduce_partitions != stage.num_tasks:
                # Union-style stages where reduce partitions don't map
                # 1:1 onto task indices; nothing to re-plan safely.
                return None

        # (c) switch first: re-deriving range bounds changes the size
        # histogram the coalesce/split decisions below are based on.
        for dep in deps:
            self._try_switch(stage, dep)

        sizes = [0.0] * stage.num_tasks
        for dep in deps:
            for i, nbytes in enumerate(manager.partition_sizes(dep.shuffle_id)):
                sizes[i] += nbytes
        split_dep = adaptive.splittable_shuffle(stage)
        plan = adaptive.plan_partitions(
            sizes,
            skew_threshold=conf.aqe_skew_threshold,
            target_bytes=conf.aqe_target_partition_bytes,
            max_slices=conf.aqe_max_subpartitions,
            shuffle_id=split_dep.shuffle_id if split_dep is not None else None,
            map_sizes=(
                (lambda rid: manager.block_sizes(split_dep.shuffle_id, rid))
                if split_dep is not None
                else None
            ),
        )
        if plan is not None:
            from repro.obs.diagnostics import gini

            now = self.ctx.sim.now
            self.ctx.obs.span(
                "aqe-replan", "aqe", now, now,
                stage=stage.name,
                stage_id=stage.stage_id,
                original_partitions=stage.num_tasks,
                adapted_partitions=len(plan.specs),
                coalesced=plan.n_coalesced,
                split=plan.n_split,
                before=[round(b, 1) for b in plan.before_sizes],
                after=[round(a, 1) for a in plan.after_sizes],
                gini_before=round(gini(plan.before_sizes), 4),
                gini_after=round(gini(plan.after_sizes), 4),
            )
            metrics = self.ctx.obs.metrics
            metrics.counter("aqe.stages_replanned").inc()
            if plan.n_coalesced:
                metrics.counter("aqe.partitions_coalesced").inc(plan.n_coalesced)
            if plan.n_split:
                metrics.counter("aqe.partitions_split").inc(plan.n_split)
            saved = stage.num_tasks - len(plan.specs)
            if saved > 0:
                metrics.counter("aqe.tasks_saved").inc(saved)
            self.ctx.obs.log_event(
                "INFO", "aqe", "stage_replanned",
                stage=stage.name,
                original_partitions=stage.num_tasks,
                adapted_partitions=len(plan.specs),
                coalesced=plan.n_coalesced, split=plan.n_split,
            )
        return plan

    def _try_switch(self, stage: Stage, dep: ShuffleDependency) -> bool:
        """Re-derive an ordered shuffle's range bounds from measured keys.

        The runtime upgrade of ``sortByKey``'s sampled split points: once
        the map outputs exist, the exact key histogram (with per-record
        virtual sizes as weights) gives byte-balanced bounds, and the
        already-written blocks are re-bucketed under them via the
        vectorized partition kernels.

        Restricted to ordered, non-user-fixed shuffles: the consuming
        reduce stable-sorts by key, and equal keys always share one old
        bucket, so re-bucketing preserves their relative order and the
        reduce output is identical record-for-record — which is exactly
        why an *unordered* hash shuffle is never switched (its consumers
        observe raw bucket order). Skipped under speculation (an in-
        flight duplicate map attempt could later overwrite a re-bucketed
        output with old-partitioner blocks) and while any *running*
        stage reads the shuffle (its earlier tasks fetched the old
        buckets). Idempotent: re-deriving from re-bucketed blocks yields
        the same bounds and equality short-circuits the rewrite.
        """
        from repro.common.sizing import estimate_size
        from repro.engine import adaptive
        from repro.engine.partitioner import RangePartitioner

        conf = self.ctx.conf
        manager = self.ctx.shuffle_manager
        if not dep.ordered or dep.user_fixed or conf.speculation:
            return False
        job = self._job
        assert job is not None
        for other in list(job.running.values()):
            if other.stage_id == stage.stage_id:
                continue
            if any(
                d.shuffle_id == dep.shuffle_id
                for d in other.incoming_shuffle_deps()
            ):
                return False
        before = manager.partition_sizes(dep.shuffle_id)
        if not adaptive.should_switch(
            before, skew_threshold=conf.aqe_skew_threshold
        ):
            return False
        contents = manager.map_contents(dep.shuffle_id)
        keys: List[Any] = []
        weights: List[float] = []
        for map_id in sorted(contents):
            for record in contents[map_id][1]:
                keys.append(dep.key_fn(record))
                weights.append(estimate_size(record))
        new = RangePartitioner.from_weighted_keys(
            keys, weights, dep.partitioner.num_partitions
        )
        if new == dep.partitioner:
            return False
        old_kind = dep.partitioner.kind
        write_scale = dep.parent.size_scale
        for map_id in sorted(contents):
            node, records = contents[map_id]
            partitioned = adaptive.bucket_records(
                records,
                new,
                dep.key_fn,
                write_scale,
                vectorized=conf.vectorized_kernels,
            )
            manager.put_map_output(dep.shuffle_id, map_id, node, partitioned)
        # Future producers (chaos-resubmitted map tasks) bucket straight
        # into the new space; consumers align against the real scheme.
        dep.partitioner = new
        from repro.obs.diagnostics import gini

        after = manager.partition_sizes(dep.shuffle_id)
        now = self.ctx.sim.now
        self.ctx.obs.span(
            "aqe-switch", "aqe", now, now,
            stage=stage.name,
            shuffle_id=dep.shuffle_id,
            from_kind=old_kind,
            to_kind=new.kind,
            before=[round(b, 1) for b in before],
            after=[round(a, 1) for a in after],
            gini_before=round(gini(before), 4),
            gini_after=round(gini(after), 4),
        )
        self.ctx.obs.metrics.counter("aqe.shuffles_switched").inc()
        self.ctx.obs.log_event(
            "INFO", "aqe", "shuffle_switched",
            stage=stage.name, shuffle=dep.shuffle_id,
            from_kind=old_kind, to_kind=new.kind,
        )
        return True

    # ------------------------------------------------------------------
    # Locality preferences
    # ------------------------------------------------------------------

    def _spec_preferences(self, stage: Stage, spec) -> List[str]:
        """Locality preferences for an AQE physical task."""
        if len(spec.splits) == 1:
            return self._task_preferences(stage, spec.splits[0])
        prefs: List[str] = []
        for split in spec.splits:
            for node in self._task_preferences(stage, split):
                if node not in prefs:
                    prefs.append(node)
        return prefs[:3]

    def _task_preferences(self, stage: Stage, split: int) -> List[str]:
        prefs: List[str] = []
        # 1. Cached blocks of pipeline RDDs with the same partition space.
        for rdd in stage.cached_rdds():
            if rdd.num_partitions != stage.num_tasks:
                continue
            loc = self.ctx.block_store.location(rdd.id, split)
            if loc is not None and loc not in prefs:
                prefs.append(loc)
        # 2. Co-partition-aware placement (CHOPPER mode): rank nodes by
        # how many incoming shuffle bytes for this partition they host.
        if self.ctx.conf.copartition_scheduling:
            by_node: Dict[str, float] = {}
            for dep in stage.incoming_shuffle_deps():
                if not self.ctx.shuffle_manager.is_registered(dep.shuffle_id):
                    continue
                for node, nbytes in self.ctx.shuffle_manager.map_output_nodes(
                    dep.shuffle_id, split
                ).items():
                    by_node[node] = by_node.get(node, 0.0) + nbytes
            for node in sorted(by_node, key=lambda n: (-by_node[n], n))[:2]:
                if node not in prefs:
                    prefs.append(node)
        return prefs

    @staticmethod
    def _source_signatures(stage: Stage) -> List[str]:
        from repro.engine.rdd import SourceRDD

        return [
            rdd.signature
            for rdd in stage.input_rdds()
            if isinstance(rdd, SourceRDD)
        ]

    @staticmethod
    def _pruned_partitions(stage: Stage) -> int:
        """Source partitions this stage's pipeline skips via pruned scans."""
        from repro.engine.rdd import PartitionSubsetRDD

        seen: set = set()
        total = [0]

        def walk(rdd) -> None:
            if rdd.id in seen:
                return
            seen.add(rdd.id)
            if isinstance(rdd, PartitionSubsetRDD):
                total[0] += rdd.pruned_count
            for dep in rdd.narrow_deps():
                walk(dep.parent)

        walk(stage.rdd)
        return total[0]

    @staticmethod
    def _cogroup_sides(stage: Stage) -> int:
        """Number of sides if the stage's base is a cogroup, else 0."""
        for rdd in stage.input_rdds():
            if isinstance(rdd, CogroupRDD):
                return len(rdd.deps)
        return 0

    @staticmethod
    def _input_partitioner_kind(stage: Stage) -> Optional[str]:
        """Partitioner kind governing this stage's input distribution."""
        for rdd in stage.input_rdds():
            if isinstance(rdd, (ShuffledRDD, CogroupRDD)):
                partitioner = rdd.partitioner
                if partitioner is not None:
                    return partitioner.kind
        return None

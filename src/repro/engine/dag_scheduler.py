"""The DAGScheduler: jobs → stages → tasks, with the CHOPPER hooks.

Faithful to the structure in the paper's Fig. 1: an action submits a job;
the lineage is cut at shuffle dependencies into ShuffleMapStages plus one
ResultStage; a stage launches when all its parents have completed; map
outputs persist, so a shuffle already computed by an earlier job is
skipped (Spark's stage-skipping).

The two CHOPPER integration points (§III-A — "the scheduler checks the
Spark configuration file before a stage is executed"):

1. ``ctx.advisor.rewrite(final_rdd, ctx)`` runs at job submission, before
   stages are built — the advisor mutates shuffle-dependency partitioners
   / source partition counts per the workload config file and re-aligns
   co-partitioned joins;
2. pending schemes left by the rewrite (range partitioners that need real
   key samples) are resolved just before the map stage that writes them
   launches, charging a sampling delay.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

from repro.common.errors import SchedulingError
from repro.engine.dependencies import NarrowDependency, ShuffleDependency
from repro.engine.listener import JobStats, StageStats
from repro.engine.shuffled import CogroupRDD, ShuffledRDD
from repro.engine.stage import RESULT, SHUFFLE_MAP, Stage
from repro.engine.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import AnalyticsContext
    from repro.engine.rdd import RDD


class StageRun:
    """Execution state of one stage within one job."""

    def __init__(
        self,
        stage: Stage,
        stats: StageStats,
        result_fn: Optional[Callable],
        on_complete: Callable[["StageRun"], None],
    ) -> None:
        self.stage = stage
        self.stats = stats
        self.result_fn = result_fn
        self.tasks: List[Task] = []
        self.results: Dict[int, Any] = {}
        self._remaining = 0
        self._on_complete = on_complete

    def set_tasks(self, tasks: List[Task]) -> None:
        self.tasks = tasks
        self._remaining = len(tasks)

    def task_finished(self, task: Task, metrics, result: Any) -> None:
        self.stats.tasks.append(metrics)
        self.stats.input_bytes += (
            metrics.input_bytes + metrics.cache_read_bytes + metrics.shuffle_read
        )
        self.stats.shuffle_read_bytes += metrics.shuffle_read
        self.stats.shuffle_write_bytes += metrics.shuffle_write
        if self.stage.kind == RESULT:
            self.results[task.partition] = result
        self._remaining -= 1
        if self._remaining == 0:
            self._on_complete(self)


class _JobState:
    def __init__(self, job_id: int, final_stage: Stage, submitted_at: float) -> None:
        self.stats = JobStats(job_id=job_id, submitted_at=submitted_at)
        self.final_stage = final_stage
        self.results: Optional[List[Any]] = None
        self.waiting: List[Stage] = []
        self.running: Set[int] = set()

    @property
    def done(self) -> bool:
        return self.results is not None


class DAGScheduler:
    """Builds and drives the stage graph of each job."""

    def __init__(self, ctx: "AnalyticsContext") -> None:
        self.ctx = ctx
        self._completed_shuffles: Set[int] = set()
        self._job: Optional[_JobState] = None

    # ------------------------------------------------------------------
    # Job entry point
    # ------------------------------------------------------------------

    def run_job(
        self, final_rdd: "RDD", result_fn: Optional[Callable] = None
    ) -> List[Any]:
        """Execute an action: returns the per-partition results in order."""
        if self._job is not None:
            raise SchedulingError("nested run_job is not supported")
        if self.ctx.advisor is not None:
            wall0 = time.perf_counter()
            self.ctx.advisor.rewrite(final_rdd, self.ctx)
            # The rewrite is driver-side and free in simulated time; its
            # real cost is recorded as wall-clock milliseconds.
            self.ctx.obs.span(
                f"rewrite:{type(self.ctx.advisor).__name__}", "chopper",
                self.ctx.sim.now, self.ctx.sim.now,
                wall_ms=round((time.perf_counter() - wall0) * 1e3, 3),
            )
        final_stage = self._build_stages(final_rdd)
        job = _JobState(self.ctx.next_job_id(), final_stage, self.ctx.sim.now)
        self._job = job
        self._result_fn = result_fn
        try:
            self._submit_stage(final_stage)
            self.ctx.sim.run()
            if not job.done:
                raise SchedulingError(
                    f"job {job.stats.job_id} stalled: event queue drained with "
                    f"stages still waiting"
                )
        finally:
            self._job = None
        job.stats.completed_at = self.ctx.sim.now
        self.ctx.job_stats.append(job.stats)
        self.ctx.obs.span(
            f"job-{job.stats.job_id}", "job",
            job.stats.submitted_at, job.stats.completed_at,
            job_id=job.stats.job_id, stages=len(job.stats.stages),
        )
        self.ctx.listener_bus.job_end(job.stats)
        assert job.results is not None
        return job.results

    # ------------------------------------------------------------------
    # Stage graph construction
    # ------------------------------------------------------------------

    def provisional_stages(self, final_rdd: "RDD") -> List[Stage]:
        """Build the stage graph without executing — the advisor's view.

        Returns every stage of the would-be job in dependency order
        (parents before children), final stage last. Stages already
        satisfied by completed shuffles are included (marked completed).
        """
        final_stage = self._build_stages(final_rdd)
        ordered: List[Stage] = []
        seen: Set[int] = set()

        def visit(stage: Stage) -> None:
            if stage.stage_id in seen:
                return
            seen.add(stage.stage_id)
            for parent in stage.parents:
                visit(parent)
            ordered.append(stage)

        visit(final_stage)
        return ordered

    def _build_stages(self, final_rdd: "RDD") -> Stage:
        stage_by_shuffle: Dict[int, Stage] = {}

        def parent_stages(rdd: "RDD") -> List[Stage]:
            parents: List[Stage] = []
            seen: Set[int] = set()

            def visit(node: "RDD") -> None:
                if node.id in seen:
                    return
                seen.add(node.id)
                for dep in node.deps:
                    if isinstance(dep, ShuffleDependency):
                        stage = stage_for(dep)
                        if stage not in parents:
                            parents.append(stage)
                    elif isinstance(dep, NarrowDependency):
                        visit(dep.parent)

            visit(rdd)
            return parents

        def stage_for(dep: ShuffleDependency) -> Stage:
            existing = stage_by_shuffle.get(dep.shuffle_id)
            if existing is not None:
                return existing
            stage = Stage(
                self.ctx.next_stage_id(),
                dep.parent,
                parent_stages(dep.parent),
                SHUFFLE_MAP,
                shuffle_dep=dep,
            )
            if dep.shuffle_id in self._completed_shuffles:
                stage.completed = True
            stage_by_shuffle[dep.shuffle_id] = stage
            return stage

        return Stage(
            self.ctx.next_stage_id(), final_rdd, parent_stages(final_rdd), RESULT
        )

    # ------------------------------------------------------------------
    # Stage submission
    # ------------------------------------------------------------------

    def _submit_stage(self, stage: Stage) -> None:
        job = self._job
        assert job is not None
        if stage.completed or stage.stage_id in job.running or stage in job.waiting:
            return
        missing = [p for p in stage.parents if not p.completed]
        if missing:
            job.waiting.append(stage)
            for parent in missing:
                self._submit_stage(parent)
            return
        self._run_stage(stage)

    def _run_stage(self, stage: Stage) -> None:
        job = self._job
        assert job is not None
        job.running.add(stage.stage_id)

        delay = 0.0
        dep = stage.shuffle_dep
        if dep is not None and dep.pending_scheme is not None:
            partitioner, sampling_delay = dep.pending_scheme.resolve(self.ctx, stage)
            dep.partitioner = partitioner
            dep.pending_scheme = None
            delay += sampling_delay

        if dep is not None:
            self.ctx.shuffle_manager.register(
                dep.shuffle_id, stage.num_tasks, dep.num_reduce_partitions
            )

        stats = StageStats(
            stage_run_id=self.ctx.next_stage_run_id(),
            job_id=job.stats.job_id,
            signature=stage.signature,
            name=stage.name,
            kind=stage.kind,
            num_partitions=stage.num_tasks,
            partitioner_kind=self._input_partitioner_kind(stage),
            submitted_at=self.ctx.sim.now + delay,
            parent_signatures=[p.signature for p in stage.parents],
            cogroup_sides=self._cogroup_sides(stage),
            user_fixed=any(
                d.user_fixed for d in stage.incoming_shuffle_deps()
            ),
            source_signatures=self._source_signatures(stage),
        )
        result_fn = self._result_fn if stage.kind == RESULT else None
        run = StageRun(stage, stats, result_fn, self._on_stage_complete)
        run.set_tasks(
            [
                Task(stage, i, preferred_nodes=self._task_preferences(stage, i))
                for i in range(stage.num_tasks)
            ]
        )
        self.ctx.listener_bus.stage_submitted(stats)
        if delay > 0:
            self.ctx.sim.schedule(delay, self.ctx.task_scheduler.submit_stage, run)
        else:
            self.ctx.task_scheduler.submit_stage(run)

    def _on_stage_complete(self, run: StageRun) -> None:
        job = self._job
        assert job is not None
        stage = run.stage
        stage.completed = True
        job.running.discard(stage.stage_id)
        run.stats.completed_at = self.ctx.sim.now
        self.ctx.stage_stats.append(run.stats)
        job.stats.stages.append(run.stats)
        self.ctx.obs.span(
            run.stats.name, "stage",
            run.stats.submitted_at, run.stats.completed_at,
            stage_run_id=run.stats.stage_run_id,
            kind=run.stats.kind,
            P=run.stats.num_partitions,
            partitioner=run.stats.partitioner_kind,
            tasks=len(run.stats.tasks),
            shuffle_read_bytes=run.stats.shuffle_read_bytes,
            shuffle_write_bytes=run.stats.shuffle_write_bytes,
        )
        self.ctx.listener_bus.stage_completed(run.stats)

        if stage.kind == SHUFFLE_MAP:
            assert stage.shuffle_dep is not None
            self._completed_shuffles.add(stage.shuffle_dep.shuffle_id)
            self._wake_waiting()
        else:
            job.results = [run.results[i] for i in range(stage.num_tasks)]

    def _wake_waiting(self) -> None:
        job = self._job
        assert job is not None
        ready = [
            s for s in job.waiting if all(p.completed for p in s.parents)
        ]
        for stage in ready:
            job.waiting.remove(stage)
            self._run_stage(stage)

    # ------------------------------------------------------------------
    # Locality preferences
    # ------------------------------------------------------------------

    def _task_preferences(self, stage: Stage, split: int) -> List[str]:
        prefs: List[str] = []
        # 1. Cached blocks of pipeline RDDs with the same partition space.
        for rdd in stage.cached_rdds():
            if rdd.num_partitions != stage.num_tasks:
                continue
            loc = self.ctx.block_store.location(rdd.id, split)
            if loc is not None and loc not in prefs:
                prefs.append(loc)
        # 2. Co-partition-aware placement (CHOPPER mode): rank nodes by
        # how many incoming shuffle bytes for this partition they host.
        if self.ctx.conf.copartition_scheduling:
            by_node: Dict[str, float] = {}
            for dep in stage.incoming_shuffle_deps():
                if not self.ctx.shuffle_manager.is_registered(dep.shuffle_id):
                    continue
                for node, nbytes in self.ctx.shuffle_manager.map_output_nodes(
                    dep.shuffle_id, split
                ).items():
                    by_node[node] = by_node.get(node, 0.0) + nbytes
            for node in sorted(by_node, key=lambda n: (-by_node[n], n))[:2]:
                if node not in prefs:
                    prefs.append(node)
        return prefs

    @staticmethod
    def _source_signatures(stage: Stage) -> List[str]:
        from repro.engine.rdd import SourceRDD

        return [
            rdd.signature
            for rdd in stage.input_rdds()
            if isinstance(rdd, SourceRDD)
        ]

    @staticmethod
    def _cogroup_sides(stage: Stage) -> int:
        """Number of sides if the stage's base is a cogroup, else 0."""
        for rdd in stage.input_rdds():
            if isinstance(rdd, CogroupRDD):
                return len(rdd.deps)
        return 0

    @staticmethod
    def _input_partitioner_kind(stage: Stage) -> Optional[str]:
        """Partitioner kind governing this stage's input distribution."""
        for rdd in stage.input_rdds():
            if isinstance(rdd, (ShuffledRDD, CogroupRDD)):
                partitioner = rdd.partitioner
                if partitioner is not None:
                    return partitioner.kind
        return None

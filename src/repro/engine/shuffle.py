"""Shuffle manager: map-output registry and reduce-side fetch accounting.

Map tasks partition their output by the shuffle dependency's partitioner
and register per-reduce blocks here (records + virtual bytes + the node
that produced them). Reduce tasks fetch all blocks for their partition and
get back the records plus a :class:`FetchStats` describing how many bytes
were local vs remote per source node — which the cost model converts into
fetch time and the metrics recorder into network traffic.

Byte accounting uses *virtual* bytes (physical estimate x the writing
RDD's ``size_scale``) plus a per-non-empty-block header, so shuffle volume
reproduces the paper's Fig. 4 behaviour: for map-side-combined
aggregations the payload grows linearly with the map partition count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from repro.common.errors import FetchFailure, ShuffleError
from repro.engine import effects
from repro.engine.batch import RecordBatch
from repro.engine.storage import SpillableBlock, SpillManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import MetricsRegistry

# A block payload: a list of (k, v) tuples or a columnar RecordBatch.
Records = Union[List, RecordBatch]


class ShuffleBlock(SpillableBlock):
    """One (map partition, reduce partition) output block.

    With a memory budget configured, the payload may physically live in
    the spill file; ``.records`` reads it back transparently and every
    virtual byte total is unaffected (see :mod:`repro.engine.storage`).
    """


def _gather(contributing: List[Records]) -> Records:
    """Merge the non-empty blocks of one reduce partition, in map order.

    One block returns the registered container itself (zero copy); a mix
    of batches and lists — possible when one map task's bucket resisted
    columnarization — degrades to a concatenated list, preserving the
    exact record order of the all-list path.
    """
    if not contributing:
        return []
    if len(contributing) == 1:
        return contributing[0]
    if all(isinstance(c, RecordBatch) for c in contributing):
        return RecordBatch.concat(contributing)
    out: List = []
    for c in contributing:
        out.extend(c.to_records() if isinstance(c, RecordBatch) else c)
    return out


@dataclass
class FetchStats:
    """Accounting for one reduce task's shuffle read."""

    local_bytes: float = 0.0
    remote_bytes_by_src: Dict[str, float] = field(default_factory=dict)
    n_blocks: int = 0

    @property
    def remote_bytes(self) -> float:
        return sum(self.remote_bytes_by_src.values())

    @property
    def total_bytes(self) -> float:
        return self.local_bytes + self.remote_bytes


@dataclass
class _ShuffleState:
    num_maps: int
    num_reduces: int
    # blocks[map_id][reduce_id] -> ShuffleBlock (only non-empty stored)
    blocks: Dict[int, Dict[int, ShuffleBlock]] = field(default_factory=dict)
    bytes_written: float = 0.0
    # Node that produced each registered map output (one per map task).
    map_nodes: Dict[int, str] = field(default_factory=dict)
    # Map outputs discarded by a node loss: map_id -> the dead node.
    # Non-empty means fetches must fail until a resubmitted map stage
    # re-registers the lost partitions.
    lost: Dict[int, str] = field(default_factory=dict)
    # Bumped on every block mutation (put / invalidate). Deferred fetches
    # record the value they read and re-validate it at apply time.
    version: int = 0
    # Lazy locality index: reduce_id -> {node: bytes}. None = stale,
    # rebuilt in one pass on the next map_output_nodes call.
    reduce_index: Optional[Dict[int, Dict[str, float]]] = None


class ShuffleManager:
    """Registry of all shuffles of one context."""

    def __init__(
        self,
        block_header: float = 64.0,
        metrics: Optional["MetricsRegistry"] = None,
        spill: Optional[SpillManager] = None,
        obs: Optional[Any] = None,
    ) -> None:
        self._shuffles: Dict[int, _ShuffleState] = {}
        self.block_header = block_header
        self._metrics = metrics
        self._spill = spill
        # Observability hub for structured logging; register() and
        # invalidate_node() are driver-serial call sites, so their log
        # records are deterministic.
        self._obs = obs
        # Running count of lost map outputs across all shuffles, so the
        # task scheduler's "is any shuffle degraded?" gate is O(1).
        self._lost_blocks = 0
        if metrics is not None:
            # Unlabeled totals, pre-registered so a snapshot always shows
            # them; per-node/per-source series appear alongside as moved.
            self._local_total = metrics.counter("shuffle.local_bytes")
            self._remote_total = metrics.counter("shuffle.remote_bytes")
            self._write_total = metrics.counter("shuffle.write_bytes")

    def register(self, shuffle_id: int, num_maps: int, num_reduces: int) -> None:
        """Declare a shuffle's dimensions before its map stage runs.

        Re-registration with identical dimensions is a no-op, so a
        resubmitted map stage (lineage recovery) cannot orphan the
        surviving map outputs. Changing the dimensions of a live shuffle
        is an error — it would silently invalidate every stored block.
        """
        state = self._shuffles.get(shuffle_id)
        if state is not None:
            if (state.num_maps, state.num_reduces) == (num_maps, num_reduces):
                return
            raise ShuffleError(
                f"shuffle {shuffle_id} re-registered with different dimensions:"
                f" {state.num_maps}x{state.num_reduces}"
                f" -> {num_maps}x{num_reduces}"
            )
        self._shuffles[shuffle_id] = _ShuffleState(num_maps, num_reduces)
        if self._obs is not None:
            self._obs.log_event(
                "DEBUG", "shuffle", "shuffle_registered",
                shuffle=shuffle_id, maps=num_maps, reduces=num_reduces,
            )

    def is_registered(self, shuffle_id: int) -> bool:
        return shuffle_id in self._shuffles

    def put_map_output(
        self,
        shuffle_id: int,
        map_id: int,
        node: str,
        partitioned: Dict[int, Tuple[Records, float]],
    ) -> Optional[float]:
        """Store one map task's output blocks.

        ``partitioned`` maps reduce partition id -> (records, payload
        bytes). Returns the total bytes written (payload + headers), which
        the caller charges as shuffle write — or None from a deferred
        attempt, whose write (and byte count) lands at apply time.
        """
        sink = effects.active()
        if sink is not None:
            sink.ops.append(("shuffle_put", shuffle_id, map_id, node, partitioned))
            return None
        state = self._state(shuffle_id)
        if not 0 <= map_id < state.num_maps:
            raise ShuffleError(
                f"map id {map_id} out of range for shuffle {shuffle_id} "
                f"({state.num_maps} maps)"
            )
        previous = state.blocks.get(map_id)
        if previous is not None:
            # A re-executed (retried or speculative) map task replaces its
            # output; don't double-count the bytes.
            state.bytes_written -= sum(b.nbytes for b in previous.values())
            if self._spill is not None:
                for b in previous.values():
                    self._spill.forget(b)
        blocks: Dict[int, ShuffleBlock] = {}
        written = 0.0
        for reduce_id, (records, payload) in partitioned.items():
            if not 0 <= reduce_id < state.num_reduces:
                raise ShuffleError(
                    f"reduce id {reduce_id} out of range for shuffle "
                    f"{shuffle_id} ({state.num_reduces} reduces)"
                )
            if not records:
                continue
            nbytes = payload + self.block_header
            block = ShuffleBlock(records=records, nbytes=nbytes, node=node)
            blocks[reduce_id] = block
            written += nbytes
            if self._spill is not None:
                self._spill.admit(
                    block, label=f"shuffle:{shuffle_id}:{map_id}:{reduce_id}"
                )
        state.blocks[map_id] = blocks
        state.bytes_written += written
        state.map_nodes[map_id] = node
        # A rebuilt output heals the shuffle for this map partition.
        if state.lost.pop(map_id, None) is not None:
            self._lost_blocks -= 1
        state.version += 1
        state.reduce_index = None
        if self._metrics is not None and written:
            # Re-executed (retried / speculative) maps physically write
            # again, so the counter honestly includes the duplicate I/O
            # even though the registry replaces the blocks.
            self._write_total.inc(written)
            self._metrics.counter("shuffle.write_bytes", node=node).inc(written)
        return written

    def fetch(
        self,
        shuffle_id: int,
        reduce_id: int,
        dst_node: str,
        map_range: Optional[Tuple[int, int]] = None,
    ) -> Tuple[Records, FetchStats]:
        """Collect all records for ``reduce_id``, with byte accounting.

        ``map_range`` restricts the fetch to the half-open ``[lo, hi)``
        slice of map outputs (AQE split sub-tasks); the completeness and
        lost-block checks still cover the whole shuffle, so a slice never
        serves a partial view either.

        When exactly one non-empty map block feeds the reduce partition
        (common at small map counts), its records container is returned
        **as-is, without copying** — callers must treat fetched records
        as read-only and copy before mutating (``ShuffledRDD`` already
        does for its sorting mode). Multiple blocks concatenate: list
        blocks by extend, columnar :class:`RecordBatch` blocks by
        column-wise ``np.concatenate``.

        Raises :class:`FetchFailure` when any of the shuffle's map
        outputs were discarded by a node loss — never silently serves a
        partial view of the data.
        """
        state = self._state(shuffle_id)
        sink = effects.active()
        if sink is not None:
            # Record the version this compound read is based on; the
            # apply phase rejects the attempt if the shuffle mutated
            # in between (the attempt then re-executes inline).
            sink.ops.append(("shuffle_read", shuffle_id, state.version))
        if state.lost:
            map_ids = sorted(state.lost)
            raise FetchFailure(shuffle_id, map_ids, state.lost[map_ids[0]])
        if len(state.blocks) < state.num_maps:
            raise ShuffleError(
                f"shuffle {shuffle_id}: fetch before all map outputs ready "
                f"({len(state.blocks)}/{state.num_maps})"
            )
        contributing: List[Records] = []
        stats = FetchStats()
        map_ids = (
            range(state.num_maps)
            if map_range is None
            else range(max(0, map_range[0]), min(state.num_maps, map_range[1]))
        )
        for map_id in map_ids:
            block = state.blocks[map_id].get(reduce_id)
            if block is None:
                continue
            contributing.append(block.records)
            stats.n_blocks += 1
            if block.node == dst_node:
                stats.local_bytes += block.nbytes
            else:
                stats.remote_bytes_by_src[block.node] = (
                    stats.remote_bytes_by_src.get(block.node, 0.0) + block.nbytes
                )
        records = _gather(contributing)
        if self._metrics is not None:
            if sink is not None:
                # Buffer the increments in the serial order — including
                # the lazy creation of labeled counters, which must not
                # happen before the task's apply turn (counter creation
                # order is visible in metric snapshots).
                if stats.local_bytes:
                    sink.ops.append(("counter", self._local_total, stats.local_bytes))
                    sink.ops.append((
                        "metric", "shuffle.local_bytes",
                        (("node", dst_node),), stats.local_bytes,
                    ))
                for src, nbytes in stats.remote_bytes_by_src.items():
                    sink.ops.append(("counter", self._remote_total, nbytes))
                    sink.ops.append((
                        "metric", "shuffle.remote_bytes", (("src", src),), nbytes,
                    ))
            else:
                if stats.local_bytes:
                    self._local_total.inc(stats.local_bytes)
                    self._metrics.counter(
                        "shuffle.local_bytes", node=dst_node
                    ).inc(stats.local_bytes)
                for src, nbytes in stats.remote_bytes_by_src.items():
                    self._remote_total.inc(nbytes)
                    self._metrics.counter("shuffle.remote_bytes", src=src).inc(nbytes)
        return records, stats

    def map_output_nodes(self, shuffle_id: int, reduce_id: int) -> Dict[str, float]:
        """Bytes available per node for one reduce partition (for locality)."""
        state = self._state(shuffle_id)
        index = state.reduce_index
        if index is None:
            # Rebuild the whole per-reduce index in one pass over the
            # blocks, amortized over every reduce task of the stage (the
            # previous code rescanned all maps per call: O(maps x
            # reduces) per *stage submission* became quadratic in
            # reduces). For any one reduce id the nodes are visited in
            # the same map order as the per-call scan, so the float
            # totals are bit-identical.
            index = {}
            for blocks in state.blocks.values():
                for rid, block in blocks.items():
                    by_node = index.get(rid)
                    if by_node is None:
                        index[rid] = by_node = {}
                    by_node[block.node] = by_node.get(block.node, 0.0) + block.nbytes
            state.reduce_index = index
        return dict(index.get(reduce_id, ()))

    def invalidate_node(self, node: str) -> Dict[int, List[int]]:
        """Discard every map output produced on ``node`` (executor loss).

        Returns ``{shuffle_id: [lost map ids]}``. The discarded bytes
        leave the registry totals (the physical write already happened
        and stays in the metrics counters); subsequent fetches raise
        :class:`FetchFailure` until a resubmitted map stage rebuilds the
        lost partitions.
        """
        lost: Dict[int, List[int]] = {}
        for shuffle_id, state in self._shuffles.items():
            gone = sorted(
                map_id
                for map_id, host in state.map_nodes.items()
                if host == node
            )
            for map_id in gone:
                blocks = state.blocks.pop(map_id, {})
                state.bytes_written -= sum(b.nbytes for b in blocks.values())
                if self._spill is not None:
                    # A dead node's spilled blocks are dropped exactly
                    # like resident ones: extents released, later reads
                    # recompute via lineage.
                    for b in blocks.values():
                        self._spill.forget(b)
                del state.map_nodes[map_id]
                state.lost[map_id] = node
                self._lost_blocks += 1
            if gone:
                state.version += 1
                state.reduce_index = None
                lost[shuffle_id] = gone
        if lost and self._obs is not None:
            for shuffle_id in sorted(lost):
                self._obs.log_event(
                    "WARNING", "shuffle", "map_outputs_lost",
                    shuffle=shuffle_id, node=node, maps=len(lost[shuffle_id]),
                )
        return lost

    def has_lost_blocks(self) -> bool:
        """O(1): is any shuffle currently missing map outputs?"""
        return self._lost_blocks > 0

    def version(self, shuffle_id: int) -> int:
        """Mutation counter of one shuffle (deferred-fetch validation)."""
        return self._state(shuffle_id).version

    def missing_map_ids(self, shuffle_id: int) -> List[int]:
        """Map partitions lost to node failure and not yet rebuilt."""
        return sorted(self._state(shuffle_id).lost)

    def bytes_written(self, shuffle_id: int) -> float:
        return self._state(shuffle_id).bytes_written

    def num_reduces(self, shuffle_id: int) -> int:
        return self._state(shuffle_id).num_reduces

    def partition_sizes(self, shuffle_id: int) -> List[float]:
        """Bytes registered per reduce partition (index = reduce id).

        The data-side view of partition skew: how the map outputs actually
        distributed over the reduce partitions, including empty ones.
        """
        state = self._state(shuffle_id)
        sizes = [0.0] * state.num_reduces
        for blocks in state.blocks.values():
            for reduce_id, block in blocks.items():
                sizes[reduce_id] += block.nbytes
        return sizes

    def block_sizes(self, shuffle_id: int, reduce_id: int) -> List[float]:
        """Bytes per map output feeding one reduce partition (index = map id).

        The histogram AQE slices a hot partition on: contiguous map
        ranges are packed to near-equal byte totals.
        """
        state = self._state(shuffle_id)
        sizes = [0.0] * state.num_maps
        for map_id, blocks in state.blocks.items():
            block = blocks.get(reduce_id)
            if block is not None:
                sizes[map_id] = block.nbytes
        return sizes

    def map_contents(self, shuffle_id: int) -> Dict[int, Tuple[str, List]]:
        """Every map output's records, flattened in ascending bucket order.

        Returns ``{map_id: (node, records)}`` for AQE rebucketting: the
        caller re-partitions each map's records under a new partitioner
        and writes them back via :meth:`put_map_output` (which handles
        replacement accounting, spill bookkeeping, and the version bump
        that invalidates concurrent deferred reads). Columnar blocks are
        flattened to record lists; ``put_map_output`` re-prices them.

        Refuses while any map output is lost — rebucketting a degraded
        shuffle would bake the loss into the new buckets.
        """
        state = self._state(shuffle_id)
        if state.lost:
            map_ids = sorted(state.lost)
            raise FetchFailure(shuffle_id, map_ids, state.lost[map_ids[0]])
        out: Dict[int, Tuple[str, List]] = {}
        for map_id in sorted(state.blocks):
            records: List = []
            blocks = state.blocks[map_id]
            for reduce_id in sorted(blocks):
                payload = blocks[reduce_id].records
                records.extend(
                    payload.to_records()
                    if isinstance(payload, RecordBatch)
                    else payload
                )
            out[map_id] = (state.map_nodes[map_id], records)
        return out

    def spilled_blocks(self) -> int:
        """How many registered shuffle blocks currently live on disk."""
        return sum(
            1
            for state in self._shuffles.values()
            for blocks in state.blocks.values()
            for block in blocks.values()
            if block.is_spilled
        )

    def clear(self) -> None:
        if self._spill is not None:
            for state in self._shuffles.values():
                for blocks in state.blocks.values():
                    for block in blocks.values():
                        self._spill.forget(block)
        self._shuffles.clear()
        self._lost_blocks = 0

    def _state(self, shuffle_id: int) -> _ShuffleState:
        try:
            return self._shuffles[shuffle_id]
        except KeyError:
            raise ShuffleError(f"shuffle {shuffle_id} was never registered") from None

"""Block storage: in-memory caches with a budgeted spill-to-disk layer.

Two tenants share this module:

* :class:`BlockStore` — the cluster-wide cache of materialized RDD
  partitions (``rdd.cache()``), tagged with the node that produced them
  and bounded per node in *virtual* bytes (``capacity_for``), evicting
  LRU past the bound exactly like Spark's storage memory. Eviction is
  simulation-visible: a later read misses and the lineage recomputes.
* :class:`SpillManager` — the *physical* side: a configurable memory
  budget (``EngineConf.memory_budget``, virtual bytes) over every block
  payload the engine holds — cached RDD partitions and shuffle blocks
  alike. Payloads past the budget are serialized to an on-disk block
  directory (append-only ``blocks.dat`` plus a byte-offset index) and
  read back transparently on access. Spilling is **invisible to the
  simulation**: virtual byte accounting, LRU order, fetch stats, the
  simulated clock and every record are bit-identical with or without a
  budget — only where the payload bytes physically live changes. That
  is the step from "in-memory toy" to "survives inputs bigger than
  RAM" (cf. hybrid-hash operators that presume graceful spill).

Spill events are observable: a ``spill`` trace lane span per spilled
block, ``shuffle.spilled_bytes`` / ``spill.events`` metrics counters,
and the run ledger's ``shuffle.spilled_bytes`` total.

Virtual byte totals per node feed the memory-utilization metric
(paper Fig. 12).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, StorageError
from repro.engine import effects


@dataclass(frozen=True)
class SpillRef:
    """Where a spilled payload lives: a byte span in the block file."""

    offset: int
    length: int


class SpillableBlock:
    """A block whose payload may physically live on disk.

    ``records`` reads transparently: resident payloads return directly,
    spilled ones deserialize from the spill manager's block file on each
    access (spilled blocks are not re-admitted to memory — shuffle
    blocks are read once per reduce partition, so promotion would only
    churn the budget). All *virtual* accounting (``nbytes``, node
    tagging, LRU order) is untouched by spilling.
    """

    __slots__ = ("nbytes", "node", "_records", "spill", "spill_source")

    def __init__(self, records: Any, nbytes: float, node: str) -> None:
        self._records = records
        self.nbytes = nbytes
        self.node = node
        self.spill: Optional[SpillRef] = None
        self.spill_source: Optional["SpillManager"] = None

    @property
    def records(self) -> Any:
        records = self._records
        if records is None and self.spill is not None:
            assert self.spill_source is not None
            return self.spill_source.fetch(self.spill)
        return records

    @records.setter
    def records(self, value: Any) -> None:
        self._records = value

    @property
    def is_spilled(self) -> bool:
        return self.spill is not None and self._records is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "disk" if self.is_spilled else "mem"
        return (
            f"{type(self).__name__}(nbytes={self.nbytes!r}, "
            f"node={self.node!r}, {where})"
        )


class CachedBlock(SpillableBlock):
    """One cached RDD partition."""


class SpillManager:
    """Physical-memory budget with LRU spill to an on-disk block file.

    ``budget_bytes`` is in the engine's virtual byte units — the same
    units every shuffle/cache accounting uses — so "a memory budget of
    1/10th the input" means exactly that in the simulated world, while
    the spill I/O is physically real. Admission order doubles as the
    LRU order; reads of resident cached blocks refresh recency via
    :meth:`touch` (the block store already routes its LRU touches here),
    and admission past the budget spills from the cold end.

    All mutation happens on the driver thread (deferred task effects
    replay block puts serially), so spill decisions are deterministic
    across every physical-parallelism level. Reads (:meth:`fetch`) are
    lock-free ``os.pread`` calls — safe from worker threads.
    """

    def __init__(
        self,
        budget_bytes: float,
        directory: Optional[str] = None,
        obs: Any = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ConfigurationError(
                f"memory budget must be > 0 bytes, got {budget_bytes}"
            )
        self.budget = float(budget_bytes)
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self.directory = tempfile.mkdtemp(prefix="ctx-", dir=directory)
        else:
            self.directory = tempfile.mkdtemp(prefix="repro-spill-")
        self._data_path = os.path.join(self.directory, "blocks.dat")
        self._index_path = os.path.join(self.directory, "index.jsonl")
        self._write_fh: Any = None
        self._index_fh: Any = None
        self._read_fd: Optional[int] = None
        self._offset = 0
        self._closed = False
        # Resident blocks in admission/recency order: id(block) -> block.
        self._resident: "OrderedDict[int, SpillableBlock]" = OrderedDict()
        self._labels: Dict[int, str] = {}
        self._resident_bytes = 0.0
        self._obs = obs
        self._clock = clock or (lambda: 0.0)
        # Physical/virtual spill accounting (virtual side is
        # deterministic; disk-read counters are diagnostics).
        self.spill_events = 0
        self.spilled_bytes = 0.0  # cumulative virtual bytes spilled
        self.spilled_disk_bytes = 0  # cumulative physical bytes written
        self.live_spilled_bytes = 0.0  # virtual bytes currently on disk
        self.spill_reads = 0
        self.spill_read_disk_bytes = 0
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, self.directory, ignore_errors=True
        )

    # ------------------------------------------------------------------
    # Budget / admission
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> float:
        return self._resident_bytes

    def admit(self, block: SpillableBlock, label: str = "") -> None:
        """Track a new resident payload; spill LRU past the budget."""
        key = id(block)
        self._resident[key] = block
        self._labels[key] = label
        self._resident_bytes += block.nbytes
        while self._resident_bytes > self.budget and self._resident:
            victim_key, victim = next(iter(self._resident.items()))
            self._spill_block(victim_key, victim)

    def touch(self, block: SpillableBlock) -> None:
        """Refresh a resident block's LRU recency (no-op once spilled)."""
        key = id(block)
        if key in self._resident:
            self._resident.move_to_end(key)

    def forget(self, block: SpillableBlock) -> None:
        """A block left its store (eviction / node loss / replacement).

        Resident payloads leave the budget; spilled ones release their
        index entry (the byte extent is reclaimed when the manager
        closes — the block file is append-only, like shuffle files).
        Idempotent, and accounting is clamped at zero either way.
        """
        key = id(block)
        entry = self._resident.pop(key, None)
        self._labels.pop(key, None)
        if entry is not None:
            self._resident_bytes = max(0.0, self._resident_bytes - block.nbytes)
        if block.spill is not None:
            self.live_spilled_bytes = max(
                0.0, self.live_spilled_bytes - block.nbytes
            )
            block.spill = None
            block.spill_source = None

    # ------------------------------------------------------------------
    # Disk I/O
    # ------------------------------------------------------------------

    def _spill_block(self, key: int, block: SpillableBlock) -> None:
        del self._resident[key]
        label = self._labels.pop(key, "")
        blob = effects.dumps_payload(block._records)
        if self._write_fh is None:
            self._write_fh = open(self._data_path, "ab")
            self._index_fh = open(self._index_path, "a", encoding="utf-8")
        offset = self._offset
        self._write_fh.write(blob)
        self._write_fh.flush()
        self._offset += len(blob)
        self._index_fh.write(
            json.dumps(
                {"offset": offset, "length": len(blob), "label": label,
                 "nbytes": block.nbytes, "node": block.node},
                sort_keys=True,
            )
            + "\n"
        )
        self._index_fh.flush()
        # Publish the disk location before dropping the resident payload
        # so a concurrent reader always sees one of the two (identical)
        # sources.
        block.spill_source = self
        block.spill = SpillRef(offset=offset, length=len(blob))
        block._records = None
        self._resident_bytes = max(0.0, self._resident_bytes - block.nbytes)
        self.spill_events += 1
        self.spilled_bytes += block.nbytes
        self.spilled_disk_bytes += len(blob)
        self.live_spilled_bytes += block.nbytes
        if self._obs is not None:
            now = self._clock()
            # Driver-side span (node travels in args): spills land in the
            # trace's dedicated "spill" lane, not on a worker core lane.
            self._obs.span(
                "spill", "spill", now, now,
                src=block.node, bytes=block.nbytes, disk_bytes=len(blob),
                label=label,
            )
            self._obs.metrics.counter("shuffle.spilled_bytes").inc(block.nbytes)
            self._obs.metrics.counter("spill.events").inc(1.0)
            # Spills only happen at effect-replay time (driver-serial), so
            # this record's position and timestamp are deterministic.
            self._obs.log_event(
                "INFO", "spill", "block_spilled",
                src=block.node, bytes=block.nbytes,
                disk_bytes=len(blob), label=label,
            )

    def fetch(self, ref: SpillRef) -> Any:
        """Deserialize one spilled payload (thread-safe positional read)."""
        if self._closed:
            raise StorageError("spill manager is closed")
        if self._read_fd is None:
            if self._write_fh is not None:
                self._write_fh.flush()
            self._read_fd = os.open(self._data_path, os.O_RDONLY)
        blob = os.pread(self._read_fd, ref.length, ref.offset)
        if len(blob) != ref.length:
            raise StorageError(
                f"truncated spill read at {ref.offset}:"
                f" wanted {ref.length} bytes, got {len(blob)}"
            )
        self.spill_reads += 1
        self.spill_read_disk_bytes += len(blob)
        return effects.loads_payload(blob)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release file handles and delete the block directory."""
        if self._closed:
            return
        self._closed = True
        for fh in (self._write_fh, self._index_fh):
            if fh is not None:
                fh.close()
        if self._read_fd is not None:
            os.close(self._read_fd)
            self._read_fd = None
        self._write_fh = self._index_fh = None
        self._resident.clear()
        self._labels.clear()
        self._resident_bytes = 0.0
        self._finalizer.detach()
        shutil.rmtree(self.directory, ignore_errors=True)


class BlockStore:
    """Cluster-wide cache keyed by ``(rdd_id, partition_index)``.

    ``capacity_for(node) -> bytes`` bounds each node's cache; ``None``
    (the default) means unbounded. Eviction is LRU per node and never
    evicts to fit a block larger than the node's whole capacity — such a
    block is simply not cached (Spark drops it to recompute too).

    With a :class:`SpillManager` attached, cached payloads additionally
    count against the physical memory budget and may spill to disk —
    a spilled block is still a cache *hit* (its records read back
    transparently); only capacity eviction causes recomputes.
    """

    def __init__(
        self,
        capacity_for: Optional[Callable[[str], float]] = None,
        spill: Optional[SpillManager] = None,
    ) -> None:
        # Per-node LRU: node -> OrderedDict[(rdd_id, split) -> CachedBlock]
        self._by_node: Dict[str, OrderedDict] = {}
        self._index: Dict[Tuple[int, int], CachedBlock] = {}
        self._node_bytes: Dict[str, float] = {}
        self._capacity_for = capacity_for
        self._spill = spill
        self.evictions = 0

    def put(
        self, rdd_id: int, split: int, records: List, nbytes: float, node: str
    ) -> bool:
        """Insert a block, evicting LRU blocks on the node if needed.

        Returns False when the block exceeds the node's whole capacity
        and was not cached.
        """
        key = (rdd_id, split)
        capacity = (
            self._capacity_for(node) if self._capacity_for is not None else None
        )
        # Capacity check BEFORE touching any existing copy: a block too
        # big to ever fit must leave the previously cached version
        # intact, not drop it and then refuse the replacement.
        if capacity is not None and nbytes > capacity:
            return False
        sink = effects.active()
        if sink is not None:
            # Deferred attempt: buffer the insert; the scheduler replays
            # it at the task's serial position. The capacity rejection
            # above depends only on (node, nbytes), so deciding it here
            # matches serial exactly.
            block = CachedBlock(records=records, nbytes=nbytes, node=node)
            sink.cache_writes[key] = block
            sink.ops.append(("cache_put", key, records, nbytes, node))
            return True
        old = self._index.get(key)
        if old is not None:
            self._remove(key, old)
        if capacity is not None:
            lru = self._by_node.get(node)
            while (
                lru and self._node_bytes.get(node, 0.0) + nbytes > capacity
            ):
                evict_key, evict_block = next(iter(lru.items()))
                self._remove(evict_key, evict_block)
                self.evictions += 1
        block = CachedBlock(records=records, nbytes=nbytes, node=node)
        self._by_node.setdefault(node, OrderedDict())[key] = block
        self._index[key] = block
        self._node_bytes[node] = self._node_bytes.get(node, 0.0) + nbytes
        if self._spill is not None:
            self._spill.admit(block, label=f"cache:{rdd_id}:{split}")
        return True

    def get(self, rdd_id: int, split: int) -> Optional[CachedBlock]:
        key = (rdd_id, split)
        sink = effects.active()
        if sink is not None:
            own = sink.cache_writes.get(key)
            if own is not None:
                sink.ops.append(("cache_get_own", key))
                return own
            block = self._index.get(key)
            # Record the exact block seen (or the miss); the apply phase
            # re-validates the identity and replays the LRU touch.
            sink.ops.append(("cache_get", key, block))
            return block
        block = self._index.get(key)
        if block is not None:
            # Touch for LRU recency (cache LRU and spill LRU alike).
            lru = self._by_node[block.node]
            lru.move_to_end(key)
            if self._spill is not None:
                self._spill.touch(block)
        return block

    def peek(self, rdd_id: int, split: int) -> Optional[CachedBlock]:
        """Read without the LRU touch (effect validation)."""
        return self._index.get((rdd_id, split))

    def touch(self, rdd_id: int, split: int) -> None:
        """Replay the LRU-recency side effect of a deferred get."""
        key = (rdd_id, split)
        block = self._index.get(key)
        if block is not None:
            self._by_node[block.node].move_to_end(key)
            if self._spill is not None:
                self._spill.touch(block)

    def location(self, rdd_id: int, split: int) -> Optional[str]:
        block = self._index.get((rdd_id, split))
        return block.node if block else None

    def contains(self, rdd_id: int, split: int) -> bool:
        return (rdd_id, split) in self._index

    def evict_rdd(self, rdd_id: int) -> int:
        """Drop all partitions of one RDD; returns the number evicted."""
        keys = [k for k in self._index if k[0] == rdd_id]
        for key in keys:
            self._remove(key, self._index[key])
        return len(keys)

    def evict_node(self, node: str) -> int:
        """Drop every block cached on ``node`` (executor loss).

        Returns the number of blocks dropped. Later reads of the dropped
        partitions miss and recompute through the lineage. Spilled
        blocks of the dead node are dropped exactly like resident ones —
        their disk extents are released and later reads recompute via
        lineage, never through a dead node's spill file.
        """
        keys = list(self._by_node.get(node, ()))
        for key in keys:
            block = self._index.get(key)
            if block is not None:
                self._remove(key, block)
        # A node that held only spilled blocks must not linger as an
        # empty dict with a stale byte total.
        leftover = self._by_node.pop(node, None)
        if leftover:
            for key, block in list(leftover.items()):
                self._index.pop(key, None)
                if self._spill is not None:
                    self._spill.forget(block)
                keys.append(key)
        self._node_bytes.pop(node, None)
        return len(keys)

    def bytes_on_node(self, node: str) -> float:
        return self._node_bytes.get(node, 0.0)

    def total_bytes(self) -> float:
        return sum(self._node_bytes.values())

    def spilled_blocks(self) -> int:
        """How many cached blocks currently live on disk."""
        return sum(1 for b in self._index.values() if b.is_spilled)

    def clear(self) -> None:
        if self._spill is not None:
            for block in self._index.values():
                self._spill.forget(block)
        self._by_node.clear()
        self._index.clear()
        self._node_bytes.clear()

    def _remove(self, key: Tuple[int, int], block: CachedBlock) -> None:
        self._index.pop(key, None)
        node_blocks = self._by_node.get(block.node)
        if node_blocks is not None:
            node_blocks.pop(key, None)
            if not node_blocks:
                # Drop empty per-node state so totals stay exactly 0.0
                # after full eviction instead of accumulating float
                # drift — including when the node's last blocks were
                # all on disk.
                del self._by_node[block.node]
                self._node_bytes.pop(block.node, None)
            else:
                remaining = self._node_bytes.get(block.node, 0.0) - block.nbytes
                self._node_bytes[block.node] = max(0.0, remaining)
        if self._spill is not None:
            self._spill.forget(block)


class ZoneMapStore:
    """Per-partition column statistics of versioned source tables.

    Keyed by ``(table, version, num_partitions)`` — the same triple the
    result cache validates against — mapping each scanned split to its
    ``{column: ColumnStats}`` zone map. Sits beside the block store as
    run metadata: written via the deferred-effects path (or directly on
    the driver), read by the ``PrunePartitions`` rule and by the result
    cache's flush at context close. Puts are idempotent because the
    statistics are a pure function of the split's records.
    """

    def __init__(self) -> None:
        self._maps: Dict[Tuple[str, str, int], Dict[int, Dict]] = {}

    def put(
        self, key: Tuple[str, str, int], split: int, stats: Dict
    ) -> None:
        self._maps.setdefault(key, {})[split] = stats

    def has(self, key: Tuple[str, str, int], split: int) -> bool:
        return split in self._maps.get(key, {})

    def get(self, key: Tuple[str, str, int]) -> Dict[int, Dict]:
        """All recorded splits of one table version (may be partial)."""
        return self._maps.get(key, {})

    def tables(self) -> List[Tuple[str, str, int]]:
        return sorted(self._maps)

    def clear(self) -> None:
        self._maps.clear()

    def summary(self) -> List[Dict]:
        """Ledger-friendly digest: coverage and columns per table."""
        out = []
        for (table, version, num_partitions) in self.tables():
            splits = self._maps[(table, version, num_partitions)]
            columns = sorted({c for s in splits.values() for c in s})
            out.append(
                {
                    "table": table,
                    "version": version,
                    "num_partitions": num_partitions,
                    "splits_covered": len(splits),
                    "columns": columns,
                }
            )
        return out

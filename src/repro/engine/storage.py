"""Block store: in-memory cache of materialized RDD partitions.

Persisted RDDs (``rdd.cache()``) drop their computed partitions here,
tagged with the node that produced them. Later tasks that need the same
partition hit the cache instead of recomputing the lineage — and the task
scheduler uses :meth:`BlockStore.location` as a locality preference so the
hit is usually node-local, like Spark's BlockManager.

Like Spark's storage memory, each node's cache capacity is bounded
(``capacity_for``): inserting past the bound evicts the node's
least-recently-used blocks. A later read of an evicted partition misses
and the lineage recomputes it — RDD fault tolerance in miniature, and the
storage-pressure interaction that makes partition sizing matter for
cached iterative workloads.

Virtual byte totals per node feed the memory-utilization metric
(paper Fig. 12).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import effects


@dataclass
class CachedBlock:
    records: List
    nbytes: float
    node: str


class BlockStore:
    """Cluster-wide cache keyed by ``(rdd_id, partition_index)``.

    ``capacity_for(node) -> bytes`` bounds each node's cache; ``None``
    (the default) means unbounded. Eviction is LRU per node and never
    evicts to fit a block larger than the node's whole capacity — such a
    block is simply not cached (Spark drops it to recompute too).
    """

    def __init__(
        self, capacity_for: Optional[Callable[[str], float]] = None
    ) -> None:
        # Per-node LRU: node -> OrderedDict[(rdd_id, split) -> CachedBlock]
        self._by_node: Dict[str, OrderedDict] = {}
        self._index: Dict[Tuple[int, int], CachedBlock] = {}
        self._node_bytes: Dict[str, float] = {}
        self._capacity_for = capacity_for
        self.evictions = 0

    def put(
        self, rdd_id: int, split: int, records: List, nbytes: float, node: str
    ) -> bool:
        """Insert a block, evicting LRU blocks on the node if needed.

        Returns False when the block exceeds the node's whole capacity
        and was not cached.
        """
        key = (rdd_id, split)
        capacity = (
            self._capacity_for(node) if self._capacity_for is not None else None
        )
        # Capacity check BEFORE touching any existing copy: a block too
        # big to ever fit must leave the previously cached version
        # intact, not drop it and then refuse the replacement.
        if capacity is not None and nbytes > capacity:
            return False
        sink = effects.active()
        if sink is not None:
            # Deferred attempt: buffer the insert; the scheduler replays
            # it at the task's serial position. The capacity rejection
            # above depends only on (node, nbytes), so deciding it here
            # matches serial exactly.
            block = CachedBlock(records=records, nbytes=nbytes, node=node)
            sink.cache_writes[key] = block
            sink.ops.append(("cache_put", key, records, nbytes, node))
            return True
        old = self._index.get(key)
        if old is not None:
            self._remove(key, old)
        if capacity is not None:
            lru = self._by_node.get(node)
            while (
                lru and self._node_bytes.get(node, 0.0) + nbytes > capacity
            ):
                evict_key, evict_block = next(iter(lru.items()))
                self._remove(evict_key, evict_block)
                self.evictions += 1
        block = CachedBlock(records=records, nbytes=nbytes, node=node)
        self._by_node.setdefault(node, OrderedDict())[key] = block
        self._index[key] = block
        self._node_bytes[node] = self._node_bytes.get(node, 0.0) + nbytes
        return True

    def get(self, rdd_id: int, split: int) -> Optional[CachedBlock]:
        key = (rdd_id, split)
        sink = effects.active()
        if sink is not None:
            own = sink.cache_writes.get(key)
            if own is not None:
                sink.ops.append(("cache_get_own", key))
                return own
            block = self._index.get(key)
            # Record the exact block seen (or the miss); the apply phase
            # re-validates the identity and replays the LRU touch.
            sink.ops.append(("cache_get", key, block))
            return block
        block = self._index.get(key)
        if block is not None:
            # Touch for LRU recency.
            lru = self._by_node[block.node]
            lru.move_to_end(key)
        return block

    def peek(self, rdd_id: int, split: int) -> Optional[CachedBlock]:
        """Read without the LRU touch (effect validation)."""
        return self._index.get((rdd_id, split))

    def touch(self, rdd_id: int, split: int) -> None:
        """Replay the LRU-recency side effect of a deferred get."""
        key = (rdd_id, split)
        block = self._index.get(key)
        if block is not None:
            self._by_node[block.node].move_to_end(key)

    def location(self, rdd_id: int, split: int) -> Optional[str]:
        block = self._index.get((rdd_id, split))
        return block.node if block else None

    def contains(self, rdd_id: int, split: int) -> bool:
        return (rdd_id, split) in self._index

    def evict_rdd(self, rdd_id: int) -> int:
        """Drop all partitions of one RDD; returns the number evicted."""
        keys = [k for k in self._index if k[0] == rdd_id]
        for key in keys:
            self._remove(key, self._index[key])
        return len(keys)

    def evict_node(self, node: str) -> int:
        """Drop every block cached on ``node`` (executor loss).

        Returns the number of blocks dropped. Later reads of the dropped
        partitions miss and recompute through the lineage.
        """
        keys = list(self._by_node.get(node, ()))
        for key in keys:
            self._remove(key, self._index[key])
        return len(keys)

    def bytes_on_node(self, node: str) -> float:
        return self._node_bytes.get(node, 0.0)

    def total_bytes(self) -> float:
        return sum(self._node_bytes.values())

    def clear(self) -> None:
        self._by_node.clear()
        self._index.clear()
        self._node_bytes.clear()

    def _remove(self, key: Tuple[int, int], block: CachedBlock) -> None:
        del self._index[key]
        node_blocks = self._by_node[block.node]
        del node_blocks[key]
        if not node_blocks:
            # Drop empty per-node state so totals stay exactly 0.0 after
            # full eviction instead of accumulating float drift.
            del self._by_node[block.node]
            self._node_bytes.pop(block.node, None)
        else:
            remaining = self._node_bytes.get(block.node, 0.0) - block.nbytes
            self._node_bytes[block.node] = max(0.0, remaining)

"""Task scheduling: dispatching stage tasks onto simulated executors.

A pull-style dispatcher over the cluster's worker cores:

* every worker node runs one executor with ``cores`` slots;
* queued tasks are first matched against their locality preferences
  (cached blocks, shuffle-output concentration), then spread FIFO onto
  whichever executor has the most free cores;
* when a task's simulated duration elapses, the slot frees and the next
  queued task launches — so fast nodes naturally take more tasks, which
  is how heterogeneity shapes stage makespan in the paper's testbed.

Optional failure injection (``EngineConf.task_failure_rate``) aborts a
task partway through its simulated run and requeues it, Spark-style, up
to ``max_task_attempts`` — the knob behind the paper's future-work
question about behaviour under failures.

Node-loss chaos (``EngineConf.node_failure_times`` /
``node_failure_rate``) goes further: at a configured or seeded
simulated time an entire executor dies — its running attempts are
requeued (Spark's "Resubmitted", not counted against the task's
failure budget), its cores leave the pool (returning after
``node_recovery_delay`` if set), its cached blocks are evicted and its
shuffle map outputs invalidated, so later fetches raise
:class:`~repro.common.errors.FetchFailure` and the DAG scheduler runs
the lineage-recovery path.

With ``EngineConf.copartition_scheduling`` enabled (CHOPPER mode), task
preferences additionally rank nodes by how many input bytes (map outputs
of all incoming shuffles) already sit there, so co-partitioned join sides
are read locally whenever possible (§III: the co-partitioning-aware
component).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.common.errors import ConfigurationError, FetchFailure, SchedulingError
from repro.common.rng import derive_seed, seeded_rng
from repro.engine import effects
from repro.engine.executor import TaskRunner
from repro.engine.listener import TaskMetrics
from repro.engine.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import NodeSpec
    from repro.engine.context import AnalyticsContext
    from repro.engine.dag_scheduler import StageRun


# eq=False throughout: these are identity objects. Value equality made
# every `in` / `.remove` on the running-task list an O(fields) deep
# compare per element — and could remove the *wrong* equal-valued
# instance.


@dataclass(eq=False)
class _ExecutorState:
    spec: "NodeSpec"
    free_cores: int
    running: int = 0
    alive: bool = True


@dataclass(eq=False)
class _Attempt:
    """One running attempt of a task (speculation may run two)."""

    executor: "_ExecutorState"
    start: float
    event: object = None
    speculative: bool = False
    working_bytes: float = 0.0
    # Kept for span emission: the priced components and jittered total.
    breakdown: object = None
    duration: float = 0.0
    # Network-contention sharers, snapshotted at grant time: serial
    # reads executor.running right after its own reservation, before any
    # later grant, so a batched apply must not recompute it.
    sharers: int = 1


@dataclass(eq=False)
class _QueuedTask:
    stage_run: "StageRun"
    task: Task
    attempts: list = None
    done: bool = False
    speculated: bool = False
    enqueued_at: float = 0.0

    def __post_init__(self) -> None:
        if self.attempts is None:
            self.attempts = []


class TaskScheduler:
    """Global FIFO task queue with locality-preferring dispatch."""

    def __init__(self, ctx: "AnalyticsContext") -> None:
        self.ctx = ctx
        self.runner = TaskRunner(ctx)
        self._executors: Dict[str, _ExecutorState] = {
            worker.name: _ExecutorState(spec=worker, free_cores=worker.cores)
            for worker in ctx.cluster.workers
        }
        self._queue: Deque[_QueuedTask] = deque()
        # Tasks with at least one running attempt (speculation scans this).
        self._running_tasks: list = []
        # Diagnostics: speculative attempts launched / that won their race,
        # and failed attempts that were requeued. Mirrored into the metrics
        # registry below; tests assert the two never drift.
        self.speculative_launches = 0
        self.speculative_wins = 0
        self.task_retries = 0
        self.nodes_lost = 0
        # Chaos bookkeeping: pending kill/recovery events (armed per job,
        # cancelled between jobs so a late failure time never drags the
        # clock past a finished job), nodes already killed once, and the
        # absolute recovery deadline of each currently dead node.
        self._chaos_events: list = []
        self._killed_nodes: set = set()
        self._node_recover_at: Dict[str, float] = {}
        self._planned_failures = self._plan_node_failures()
        registry = ctx.obs.metrics
        self._m_tasks_launched = registry.counter("scheduler.tasks_launched")
        self._m_tasks_completed = registry.counter("scheduler.tasks_completed")
        self._m_tasks_failed = registry.counter("scheduler.tasks_failed")
        self._m_task_retries = registry.counter("scheduler.task_retries")
        self._m_spec_launches = registry.counter("scheduler.speculative_launches")
        self._m_spec_wins = registry.counter("scheduler.speculative_wins")
        self._m_queue_wait = registry.histogram("scheduler.queue_wait_seconds")
        self._m_queue_depth = registry.gauge("scheduler.queue_depth")
        self._m_nodes_lost = registry.counter("scheduler.nodes_lost")
        self._m_nodes_recovered = registry.counter("scheduler.nodes_recovered")
        self._m_node_lost_tasks = registry.counter("scheduler.node_lost_tasks")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit_stage(self, stage_run: "StageRun") -> None:
        """Queue a stage's tasks, staggered by the driver dispatch rate.

        The driver serializes and launches tasks one at a time; task ``i``
        becomes runnable ``i * driver_dispatch_interval`` after stage
        start. With thousands of tasks this serial ramp is a real cost —
        the paper's 2000-partition pathology.
        """
        self.submit_tasks(stage_run, stage_run.tasks)

    def submit_tasks(self, stage_run: "StageRun", tasks) -> None:
        """Queue a subset of a stage's tasks (stage start or recovery).

        The DAG scheduler uses this directly to requeue reduce tasks
        parked on a fetch failure once their parent's lost map outputs
        have been rebuilt.
        """
        interval = self.ctx.conf.cost.driver_dispatch_interval
        if interval <= 0:
            for task in tasks:
                queued = _QueuedTask(stage_run=stage_run, task=task)
                queued.enqueued_at = self.ctx.sim.now
                self._queue.append(queued)
            self._dispatch()
            return
        for i, task in enumerate(tasks):
            self.ctx.sim.schedule(
                i * interval, self._enqueue, _QueuedTask(stage_run=stage_run, task=task)
            )

    def _enqueue(self, queued: "_QueuedTask") -> None:
        queued.enqueued_at = self.ctx.sim.now
        self._queue.append(queued)
        self._dispatch()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        if not self._queue:
            return
        # Fast path: with no free core anywhere, pass 1 would defer every
        # task unchanged and pass 2 would break immediately — skip the
        # O(queue) scan (a real cost: _dispatch runs after every task
        # completion, and busy phases keep thousands of tasks queued).
        if not any(
            e.alive and e.free_cores > 0 for e in self._executors.values()
        ):
            self._m_queue_depth.set(len(self._queue))
            return
        # Batched (threaded) dispatch: grant decisions happen serially in
        # this scan; granted bodies run on the worker pool; effects apply
        # in grant order afterwards (see _run_batch). Entries: ("run",
        # queued, attempt) | ("fail", queued, attempt) | ("hold", queued,
        # deadline) — recorded in serial event order so every
        # sim.schedule lands with the same (time, seq) as serial.
        batch: Optional[list] = [] if self._batching_allowed() else None
        # Pass 1: honor locality preferences where a core is free.
        deferred: Deque[_QueuedTask] = deque()
        while self._queue:
            queued = self._queue.popleft()
            executor = self._match_preference(queued.task)
            if executor is not None:
                if batch is None:
                    self._launch(queued, executor)
                else:
                    attempt, fail = self._grant(queued, executor, False)
                    batch.append(("fail" if fail else "run", queued, attempt))
            else:
                deferred.append(queued)
        self._queue = deferred
        # Pass 2: FIFO spread onto the executor with the most free cores.
        # Delay scheduling (Spark's locality wait): a task with locality
        # preferences holds out for a preferred core for up to
        # ``locality_wait`` seconds before accepting any slot.
        wait = self.ctx.conf.locality_wait
        now = self.ctx.sim.now
        held: Deque[_QueuedTask] = deque()
        while self._queue:
            executor = self._most_free_executor()
            if executor is None:
                break
            queued = self._queue.popleft()
            if (
                wait > 0
                and queued.task.preferred_nodes
                and now - queued.enqueued_at < wait
            ):
                if not queued.attempts and not self._wait_timer_set(queued):
                    deadline = queued.enqueued_at + wait
                    if batch is None:
                        queued._wait_timer = self.ctx.sim.schedule_at(
                            deadline, self._dispatch
                        )
                    else:
                        batch.append(("hold", queued, deadline))
                held.append(queued)
                continue
            if batch is None:
                self._launch(queued, executor)
            else:
                attempt, fail = self._grant(queued, executor, False)
                batch.append(("fail" if fail else "run", queued, attempt))
        self._queue.extend(held)
        if batch:
            self._run_batch(batch)
        self._m_queue_depth.set(len(self._queue))

    def _batching_allowed(self) -> bool:
        """Thread granted task bodies this dispatch round?

        Only when no shuffle is degraded: with no lost blocks a task body
        cannot raise FetchFailure, so no mid-scan core release can change
        which tasks the rest of the scan would grant — the grant
        decisions computed up front are exactly serial's. Chaos /
        node-loss rounds therefore always take the inline serial path.
        """
        return (
            self.ctx.conf.physical_parallelism > 1
            and not self.ctx.shuffle_manager.has_lost_blocks()
        )

    def _run_batch(self, batch: list) -> None:
        """Execute a dispatch round's grants, then apply in grant order."""
        runnable = [i for i, entry in enumerate(batch) if entry[0] == "run"]
        futures: Dict[int, object] = {}
        if len(runnable) > 1:
            pool = effects.worker_pool(self.ctx.conf.physical_parallelism)
            for i in runnable:
                _, queued, attempt = batch[i]
                futures[i] = pool.submit(
                    self.runner.execute_deferred,
                    queued.stage_run.stage,
                    queued.task,
                    attempt.executor.spec,
                    queued.stage_run.result_fn,
                )
        for i, entry in enumerate(batch):
            kind, queued = entry[0], entry[1]
            if kind == "hold":
                queued._wait_timer = self.ctx.sim.schedule_at(
                    entry[2], self._dispatch
                )
            elif kind == "fail":
                self._schedule_failure(queued, entry[2])
            else:
                future = futures.get(i)
                eff = future.result() if future is not None else None
                self._finish_launch(queued, entry[2], eff)

    @staticmethod
    def _wait_timer_set(queued: "_QueuedTask") -> bool:
        return getattr(queued, "_wait_timer", None) is not None

    def _match_preference(self, task: Task) -> Optional[_ExecutorState]:
        for pref in task.preferred_nodes:
            executor = self._executors.get(pref)
            if executor is not None and executor.alive and executor.free_cores > 0:
                return executor
        return None

    def _most_free_executor(
        self, exclude: Optional[str] = None
    ) -> Optional[_ExecutorState]:
        best: Optional[_ExecutorState] = None
        for name in sorted(self._executors):
            if name == exclude:
                continue
            executor = self._executors[name]
            if not executor.alive or executor.free_cores <= 0:
                continue
            if best is None or executor.free_cores > best.free_cores:
                best = executor
        return best

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def _launch(
        self,
        queued: _QueuedTask,
        executor: _ExecutorState,
        speculative: bool = False,
    ) -> None:
        attempt, fail = self._grant(queued, executor, speculative)
        if fail:
            self._schedule_failure(queued, attempt)
            return
        self._finish_launch(queued, attempt, None)

    def _grant(
        self,
        queued: _QueuedTask,
        executor: _ExecutorState,
        speculative: bool,
    ) -> "tuple[_Attempt, bool]":
        """Reserve a core and do the launch bookkeeping (serial order)."""
        executor.free_cores -= 1
        executor.running += 1
        start = self.ctx.sim.now
        attempt = _Attempt(executor=executor, start=start, speculative=speculative)
        attempt.sharers = min(executor.running, executor.spec.cores)
        queued.attempts.append(attempt)
        if queued not in self._running_tasks:
            self._running_tasks.append(queued)
        self._m_tasks_launched.inc()
        if not speculative:
            self._m_queue_wait.observe(max(0.0, start - queued.enqueued_at))
        return attempt, self._should_fail(queued.stage_run, queued.task, speculative)

    def _schedule_failure(self, queued: _QueuedTask, attempt: _Attempt) -> None:
        # The attempt dies partway through: burn some simulated time
        # on the core, produce no side effects, then retry (unless a
        # sibling attempt is still running).
        fail_after = self._failure_delay(queued.stage_run, queued.task)
        attempt.event = self.ctx.sim.schedule(
            fail_after, self._on_attempt_failed, queued, attempt
        )

    def _finish_launch(
        self,
        queued: _QueuedTask,
        attempt: _Attempt,
        eff: Optional["effects.TaskEffects"],
    ) -> None:
        sim = self.ctx.sim
        start = attempt.start
        task = queued.task
        stage_run = queued.stage_run
        executor = attempt.executor
        try:
            if eff is None:
                breakdown, tctx, result = self.runner.execute(
                    stage_run.stage, task, executor.spec, stage_run.result_fn
                )
            else:
                breakdown, tctx, result = self.runner.finish_deferred(
                    eff, stage_run.stage, task, executor.spec, stage_run.result_fn
                )
        except FetchFailure as failure:
            # The task's shuffle inputs died with a node. Free the core,
            # then hand the task to the DAG scheduler: it resubmits the
            # parent map stage for the lost partitions and requeues this
            # task once they are rebuilt.
            self._release(attempt)
            queued.attempts.remove(attempt)
            self._emit_task_span(queued, attempt, "fetch-failed")
            if queued.attempts:
                # A sibling attempt launched before the loss already has
                # its data; let it win.
                return
            self._running_tasks.remove(queued)
            self.ctx.dag_scheduler.handle_fetch_failure(stage_run, task, failure)
            return
        if self.ctx.conf.cost.network_contention:
            # The NIC is shared: remote fetch slows with the node's
            # concurrency at launch (a coarse fair-share model).
            breakdown.shuffle_fetch *= max(1, attempt.sharers)
        duration = breakdown.total * self._jitter(stage_run, task, attempt.speculative)
        attempt.working_bytes = tctx.max_partition_bytes
        attempt.breakdown = breakdown
        attempt.duration = duration
        metrics = TaskMetrics(
            stage_run_id=stage_run.stats.stage_run_id,
            task_index=task.partition,
            node=executor.spec.name,
            start=start,
            end=start + duration,
            input_bytes=tctx.input_bytes,
            cache_read_bytes=tctx.cache_read_bytes,
            compute_bytes=tctx.compute_bytes,
            records_out=tctx.records_out,
            shuffle_read_local=tctx.shuffle_read_local,
            shuffle_read_remote=tctx.shuffle_read_remote,
            shuffle_write=tctx.shuffle_write,
            attempt=queued.task.attempt,
            speculative=attempt.speculative,
        )
        self._record_io_events(tctx, executor.spec, start)
        attempt.event = sim.schedule(
            duration, self._on_attempt_done, queued, attempt, metrics, result
        )

    def _release(self, attempt: _Attempt) -> None:
        attempt.executor.free_cores += 1
        attempt.executor.running -= 1

    def _on_attempt_done(
        self,
        queued: _QueuedTask,
        attempt: _Attempt,
        metrics: TaskMetrics,
        result: object,
    ) -> None:
        self._release(attempt)
        queued.attempts.remove(attempt)
        if queued.done:  # pragma: no cover - losers are cancelled, not run
            self._dispatch()
            return
        queued.done = True
        self._m_tasks_completed.inc()
        if attempt.speculative:
            self.speculative_wins += 1
            self._m_spec_wins.inc()
        self._record_busy_span(attempt)
        self._emit_task_span(queued, attempt, "ok", metrics)
        # Kill the losing sibling attempt(s): cancel their completion and
        # free their cores now; their partial busy time is recorded.
        for loser in list(queued.attempts):
            if loser.event is not None:
                loser.event.cancel()
            self._release(loser)
            self._record_busy_span(loser)
            self._emit_task_span(queued, loser, "cancelled")
        queued.attempts.clear()
        self._running_tasks.remove(queued)
        self.ctx.obs.log_event(
            "DEBUG", "task_scheduler", "task_finished",
            stage=queued.stage_run.stats.name,
            stage_run=queued.stage_run.stats.stage_run_id,
            partition=queued.task.partition, attempt=queued.task.attempt,
            node=attempt.executor.spec.name,
            speculative=attempt.speculative or None,
            duration=attempt.duration,
        )
        queued.stage_run.task_finished(queued.task, metrics, result)
        self.ctx.listener_bus.task_end(metrics)
        self._maybe_speculate(queued.stage_run)
        self._dispatch()

    def _on_attempt_failed(self, queued: _QueuedTask, attempt: _Attempt) -> None:
        self._release(attempt)
        queued.attempts.remove(attempt)
        task = queued.task
        self.ctx.metrics.record_interval(
            "cpu", attempt.executor.spec.name, attempt.start, self.ctx.sim.now, 1.0
        )
        self._m_tasks_failed.inc()
        self._emit_task_span(queued, attempt, "failed")
        if queued.attempts:
            # A sibling (speculative) attempt is still running; let it win.
            self._dispatch()
            return
        self._running_tasks.remove(queued)
        task.attempt += 1
        if task.attempt >= self.ctx.conf.max_task_attempts:
            raise SchedulingError(
                f"task {task.label} failed {task.attempt} times; aborting stage "
                f"{queued.stage_run.stage.name}"
            )
        self.task_retries += 1
        self._m_task_retries.inc()
        self.ctx.obs.log_event(
            "WARNING", "task_scheduler", "task_retry",
            stage=queued.stage_run.stats.name, partition=task.partition,
            attempt=task.attempt, node=attempt.executor.spec.name,
        )
        queued.speculated = False
        self._queue.append(queued)
        self._dispatch()

    # ------------------------------------------------------------------
    # Speculative execution
    # ------------------------------------------------------------------

    def _maybe_speculate(self, stage_run: "StageRun") -> None:
        """Launch duplicate attempts for stragglers (Spark speculation).

        Both attempts execute the real computation, so a speculative map
        task re-registers identical shuffle blocks (the registry replaces
        them); the simulated cost of the duplicate work is charged.
        """
        conf = self.ctx.conf
        if not conf.speculation:
            return
        completed = stage_run.stats.tasks
        total = len(stage_run.tasks)
        if total == 0 or len(completed) < conf.speculation_quantile * total:
            return
        durations = sorted(t.duration for t in completed)
        median = durations[len(durations) // 2]
        threshold = conf.speculation_multiplier * max(median, 1e-9)
        now = self.ctx.sim.now
        for queued in list(self._running_tasks):
            if queued.stage_run is not stage_run or queued.done:
                continue
            if queued.speculated or not queued.attempts:
                continue
            if now - queued.attempts[0].start <= threshold:
                continue
            executor = self._most_free_executor(
                exclude=queued.attempts[0].executor.spec.name
            )
            if executor is None:
                continue
            queued.speculated = True
            self.speculative_launches += 1
            self._m_spec_launches.inc()
            self.ctx.obs.log_event(
                "INFO", "task_scheduler", "speculative_launch",
                stage=stage_run.stats.name,
                partition=queued.task.partition,
                node=executor.spec.name,
            )
            self._launch(queued, executor, speculative=True)

    def _jitter(
        self, stage_run: "StageRun", task: Task, speculative: bool = False
    ) -> float:
        """Deterministic lognormal duration noise (stragglers)."""
        sigma = self.ctx.conf.cost.jitter_sigma
        if sigma <= 0:
            return 1.0
        rng = seeded_rng(
            derive_seed(
                self.ctx.conf.seed,
                "jitter",
                stage_run.stats.stage_run_id,
                task.partition,
                task.attempt,
                "spec" if speculative else "main",
            )
        )
        return float(rng.lognormal(mean=0.0, sigma=sigma))

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def _should_fail(
        self, stage_run: "StageRun", task: Task, speculative: bool = False
    ) -> bool:
        rate = self.ctx.conf.task_failure_rate
        if rate <= 0.0:
            return False
        rng = seeded_rng(
            derive_seed(
                self.ctx.conf.seed,
                "task-failure",
                stage_run.stats.stage_run_id,
                task.partition,
                task.attempt,
                "spec" if speculative else "main",
            )
        )
        return bool(rng.random() < rate)

    def _failure_delay(self, stage_run: "StageRun", task: Task) -> float:
        rng = seeded_rng(
            derive_seed(
                self.ctx.conf.seed,
                "task-failure-delay",
                stage_run.stats.stage_run_id,
                task.partition,
                task.attempt,
            )
        )
        # Die somewhere in the first few seconds of the attempt.
        return float(0.1 + rng.random() * 2.0)

    # ------------------------------------------------------------------
    # Node-loss chaos
    # ------------------------------------------------------------------

    def _plan_node_failures(self) -> Dict[str, float]:
        """Resolve chaos config into {node: absolute failure time}.

        Deterministic times come straight from ``node_failure_times``;
        ``node_failure_rate`` additionally rolls a seeded die per worker
        for a failure somewhere inside ``node_failure_window``.
        """
        conf = self.ctx.conf
        times: Dict[str, float] = {}
        for name, when in (conf.node_failure_times or {}).items():
            if name not in self._executors:
                raise ConfigurationError(
                    f"node_failure_times names unknown worker {name!r}"
                )
            times[name] = float(when)
        if conf.node_failure_rate > 0:
            for name in sorted(self._executors):
                if name in times:
                    continue
                rng = seeded_rng(derive_seed(conf.seed, "node-failure", name))
                if rng.random() < conf.node_failure_rate:
                    times[name] = float(rng.random() * conf.node_failure_window)
        if (
            times
            and len(times) >= len(self._executors)
            and conf.node_recovery_delay <= 0
        ):
            raise ConfigurationError(
                "node failure plan kills every worker permanently; "
                "set node_recovery_delay or spare at least one node"
            )
        return times

    def arm_chaos(self) -> None:
        """Schedule this job's pending node failures (and recoveries).

        Called by the DAG scheduler at job start. Failure times are
        absolute simulated times, so a node whose time already passed in
        an earlier job dies immediately; nodes already killed once stay
        killed (or recover on their own schedule).
        """
        if not self._planned_failures and not self._node_recover_at:
            return
        sim = self.ctx.sim
        now = sim.now
        for name, when in sorted(self._planned_failures.items()):
            if name in self._killed_nodes:
                continue
            self._chaos_events.append(
                sim.schedule_at(max(now, when), self._fail_node, name)
            )
        for name, when in sorted(self._node_recover_at.items()):
            if not self._executors[name].alive:
                self._chaos_events.append(
                    sim.schedule_at(max(now, when), self._recover_node, name)
                )

    def disarm_chaos(self) -> None:
        """Cancel pending chaos events at job end.

        ``sim.run()`` drains the whole event heap, so a failure timed
        after the job's last task would otherwise drag the clock (and
        the job's wall time) out to the chaos schedule.
        """
        for event in self._chaos_events:
            event.cancel()
        self._chaos_events.clear()

    def _fail_node(self, name: str) -> None:
        """Kill one executor: fail its attempts, drop its state, its cores."""
        executor = self._executors[name]
        if not executor.alive:
            return
        executor.alive = False
        self._killed_nodes.add(name)
        self.nodes_lost += 1
        self._m_nodes_lost.inc()
        now = self.ctx.sim.now
        # Every attempt running on the dead node dies with it. The task
        # is requeued without charging its failure budget — Spark's
        # "Resubmitted" reason, distinct from a task *failure*.
        for queued in list(self._running_tasks):
            victims = [a for a in queued.attempts if a.executor is executor]
            for attempt in victims:
                if attempt.event is not None:
                    attempt.event.cancel()
                queued.attempts.remove(attempt)
                self._release(attempt)
                self._record_busy_span(attempt)
                self._emit_task_span(queued, attempt, "node-lost")
                self._m_node_lost_tasks.inc()
            if victims and not queued.attempts:
                self._running_tasks.remove(queued)
                queued.task.attempt += 1
                queued.speculated = False
                queued.enqueued_at = now
                self._queue.append(queued)
        executor.free_cores = 0
        executor.running = 0
        lost = self.ctx.shuffle_manager.invalidate_node(name)
        evicted = self.ctx.block_store.evict_node(name)
        self.ctx.obs.span(
            "node-lost", "chaos", now, now,
            node=None, victim=name,
            shuffles_hit=len(lost), cached_blocks_lost=evicted,
        )
        self.ctx.obs.log_event(
            "ERROR", "task_scheduler", "node_lost",
            node=name, shuffles_hit=len(lost), cached_blocks_lost=evicted,
        )
        if self.ctx.conf.node_recovery_delay > 0:
            recover_at = now + self.ctx.conf.node_recovery_delay
            self._node_recover_at[name] = recover_at
            self._chaos_events.append(
                self.ctx.sim.schedule_at(recover_at, self._recover_node, name)
            )
        self._dispatch()

    def _recover_node(self, name: str) -> None:
        """Bring a dead node's cores back as a fresh, empty executor."""
        executor = self._executors[name]
        if executor.alive:
            return
        executor.alive = True
        executor.free_cores = executor.spec.cores
        executor.running = 0
        self._node_recover_at.pop(name, None)
        self._m_nodes_recovered.inc()
        now = self.ctx.sim.now
        self.ctx.obs.span("node-recovered", "chaos", now, now, node=None, victim=name)
        self.ctx.obs.log_event("INFO", "task_scheduler", "node_recovered", node=name)
        self._dispatch()

    def node_alive(self, name: str) -> bool:
        return self._executors[name].alive

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    # Completion order of the priced components within a task's span.
    _PHASES = (
        ("overhead", "overhead"),
        ("shuffle-fetch", "shuffle_fetch"),
        ("input-io", "input_io"),
        ("compute", "compute"),
        ("shuffle-write", "shuffle_write"),
    )

    def _emit_task_span(
        self,
        queued: _QueuedTask,
        attempt: _Attempt,
        outcome: str,
        metrics: Optional[TaskMetrics] = None,
    ) -> None:
        """Emit one task-attempt span (plus phase sub-spans for winners)."""
        obs = self.ctx.obs
        if not obs.emitting:
            return
        task = queued.task
        stats = queued.stage_run.stats
        node = attempt.executor.spec.name
        end = self.ctx.sim.now
        key = (stats.stage_run_id, task.partition, task.attempt, attempt.speculative)
        args = {
            "stage_run_id": stats.stage_run_id,
            "stage": stats.name,
            "partition": task.partition,
            "attempt": task.attempt,
            "speculative": attempt.speculative,
            "outcome": outcome,
        }
        if metrics is not None:
            args.update(
                input_bytes=metrics.input_bytes,
                shuffle_read_local=metrics.shuffle_read_local,
                shuffle_read_remote=metrics.shuffle_read_remote,
                shuffle_write=metrics.shuffle_write,
            )
        obs.span(
            f"{stats.name}[{task.partition}]", "task",
            attempt.start, end, node=node, key=key, **args,
        )
        breakdown = attempt.breakdown
        if outcome != "ok" or breakdown is None or breakdown.total <= 0:
            return
        # Phase sub-spans share the task's lane (same key) and nest under
        # it; jitter scales every component proportionally.
        factor = attempt.duration / breakdown.total
        t = attempt.start
        for name, attr in self._PHASES:
            seconds = getattr(breakdown, attr) * factor
            if seconds <= 0:
                continue
            obs.span(name, "task.phase", t, t + seconds, node=node, key=key)
            t += seconds

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _record_busy_span(self, attempt: _Attempt) -> None:
        """Record an attempt's actual busy span (winner full, loser partial)."""
        metrics = self.ctx.metrics
        name = attempt.executor.spec.name
        end = self.ctx.sim.now
        metrics.record_interval("cpu", name, attempt.start, end, 1.0)
        metrics.record_interval(
            "mem_working", name, attempt.start, end, attempt.working_bytes
        )

    def _record_io_events(self, tctx, node: "NodeSpec", start: float) -> None:
        metrics = self.ctx.metrics
        name = node.name
        remote_in = tctx.shuffle_read_remote + sum(
            tctx.cache_remote_by_src.values()
        )
        if remote_in > 0:
            metrics.record_event("net_bytes", name, start, remote_in)
        for src, nbytes in tctx.shuffle_read_remote_by_src.items():
            metrics.record_event("net_bytes", src, start, nbytes)
        for src, nbytes in tctx.cache_remote_by_src.items():
            metrics.record_event("net_bytes", src, start, nbytes)
        disk_bytes = (
            tctx.input_bytes + tctx.shuffle_write + tctx.shuffle_read_local
        )
        if disk_bytes > 0:
            metrics.record_event(
                "disk_transactions",
                name,
                start,
                self.runner.cost_model.disk_transactions(disk_bytes),
            )

    # ------------------------------------------------------------------
    # Introspection (tests, utilization accounting)
    # ------------------------------------------------------------------

    @property
    def queued_tasks(self) -> int:
        return len(self._queue)

    def free_cores(self, node: str) -> int:
        return self._executors[node].free_cores

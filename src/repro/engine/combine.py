"""Vectorized per-key folds for ``numeric_add`` aggregations.

Used by the map-side combine (``TaskRunner._run_map_task``) and the
reduce-side merge (``ShuffledRDD._merge``) when an
:class:`~repro.engine.dependencies.Aggregator` promises ``numeric_add``
semantics: create is identity and every merge is elementwise ``+`` over
scalars, fixed-shape numeric arrays, or flat tuples of those.

Bit-identity with the scalar dict loop is the contract, not an
aspiration: grouping assigns ids in first-occurrence order (dict
insertion order), and ``np.add.at`` is unbuffered — it applies additions
in element order, the exact left fold the scalar loop performs. Anything
the kernel cannot fold exactly (mixed types, ragged shapes, int64
overflow risk, ``-0.0`` whose sign a zero-initialized fold would erase)
returns ``None`` and the caller runs the scalar loop.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.batch import RecordBatch


def combine_numeric_add(
    key_fn: Optional[Callable], records: List
) -> Optional[Dict[Any, Any]]:
    """Per-key sums of ``records``' values, or ``None`` if not foldable.

    ``key_fn=None`` means the default ``record[0]`` key, extracted with a
    subscript instead of a per-record Python call (roughly twice as
    fast). The result dict matches the scalar loop exactly: key objects
    are the first-seen originals, in first-occurrence order, mapped to
    the left-fold sum of their values.
    """
    vals = [r[1] for r in records]
    vtypes = set(map(type, vals))
    if len(vtypes) != 1:
        return None
    if vtypes == {tuple}:
        if len(set(map(len, vals))) != 1:
            return None
        columns = [[v[j] for v in vals] for j in range(len(vals[0]))]
    else:
        columns = [vals]
    if key_fn is None:
        keys = [r[0] for r in records]
    else:
        keys = [key_fn(r) for r in records]
    gids, first_idx = group_ids(keys)
    folded = []
    for column in columns:
        f = _fold_column(column, gids, len(first_idx))
        if f is None:
            return None
        folded.append(f)
    if vtypes == {tuple}:
        return {
            keys[int(i)]: tuple(f[g] for f in folded)
            for g, i in enumerate(first_idx)
        }
    totals = folded[0]
    return {keys[int(i)]: totals[g] for g, i in enumerate(first_idx)}


def fold_batch(batch: RecordBatch) -> Optional[RecordBatch]:
    """Per-key sums of a :class:`RecordBatch`, or ``None`` if not foldable.

    The columnar twin of :func:`combine_numeric_add`: output keys are the
    first occurrence of each distinct key, in first-occurrence order, and
    each value is the left-fold sum of that key's values in record order.
    Key columns stored as arrays group via ``np.unique`` (relabeled to
    first-occurrence order); list columns group via the dict loop. The
    same exactness guards apply — anything the kernel cannot fold exactly
    returns ``None`` and the caller materializes the batch for the scalar
    loop.
    """
    if len(batch) == 0:
        return None
    grouped = _group_column(batch.keys)
    if grouped is None:
        return None
    gids, first_idx = grouped
    values = _fold_values(batch.values, gids, len(first_idx))
    if values is None:
        return None
    if isinstance(batch.keys, np.ndarray):
        keys: Any = batch.keys[first_idx]
    else:
        keys = [batch.keys[int(i)] for i in first_idx]
    return RecordBatch(keys, values)


def _group_column(col) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Group ids + first index per group for one key column.

    Array columns use ``np.unique`` (stable when return_index is asked
    for, so ``index`` is each group's first occurrence) and relabel the
    sorted group ids back to first-occurrence order — matching the dict
    loop's insertion order exactly. Float columns with NaNs fall back
    (``np.unique`` treats NaNs as distinct-but-grouped differently from
    dict key hashing).
    """
    if not isinstance(col, np.ndarray):
        return group_ids(col)
    if col.dtype.kind == "f" and bool(np.isnan(col).any()):
        return group_ids(col.tolist())
    _, index, inverse = np.unique(col, return_index=True, return_inverse=True)
    order = np.argsort(index, kind="stable")
    rank = np.empty(len(index), dtype=np.intp)
    rank[order] = np.arange(len(index), dtype=np.intp)
    gids = rank[inverse.reshape(-1)]
    first_idx = index[order]
    return gids, first_idx


def _fold_values(col, gids: np.ndarray, n_groups: int) -> Optional[Any]:
    """Column-wise per-group left folds; array in, array out when exact."""
    if isinstance(col, np.ndarray):
        if col.dtype.kind == "i":
            if max(int(col.max()), -int(col.min())) * col.size >= 2**62:
                return None
            acc = np.zeros(n_groups, dtype=np.int64)
            np.add.at(acc, gids, col)
            return acc
        if col.dtype.kind == "f":
            zeros = col == 0.0
            if zeros.any() and np.signbit(col[zeros]).any():
                return None  # 0.0 + (-0.0) would flip the sign vs serial
            acc = np.zeros(n_groups, dtype=np.float64)
            np.add.at(acc, gids, col)
            return acc
        col = col.tolist()
    vtypes = set(map(type, col))
    if len(vtypes) != 1:
        return None
    if vtypes == {tuple}:
        if len(set(map(len, col))) != 1:
            return None
        folded = []
        for j in range(len(col[0])):
            f = _fold_column([v[j] for v in col], gids, n_groups)
            if f is None:
                return None
            folded.append(f)
        return [tuple(f[g] for f in folded) for g in range(n_groups)]
    return _fold_column(list(col), gids, n_groups)


def group_ids(keys: List) -> Tuple[np.ndarray, np.ndarray]:
    """Group ids (first-occurrence order) and first index per group.

    A plain dict loop: hashing n keys is O(n) and measures 2-3x faster
    than sort-based ``np.unique`` grouping for string keys (string
    comparisons dominate the sort), roughly even for ints — and it is
    exact for every hashable key type, with no fixed-width-string or
    int64-overflow caveats. Group ids follow first-appearance order,
    mirroring dict insertion order.
    """
    index: Dict[Any, int] = {}
    gids = np.empty(len(keys), dtype=np.intp)
    firsts: List[int] = []
    for i, k in enumerate(keys):
        g = index.get(k)
        if g is None:
            index[k] = g = len(firsts)
            firsts.append(i)
        gids[i] = g
    return gids, np.asarray(firsts, dtype=np.intp)


def _fold_column(
    column: List, gids: np.ndarray, n_groups: int
) -> Optional[List]:
    """Per-group left-fold sums of one value column, or ``None``."""
    ctypes = set(map(type, column))
    if len(ctypes) != 1:
        return None
    ctype = ctypes.pop()
    if ctype is int:
        try:
            arr = np.array(column, dtype=np.int64)
        except OverflowError:
            return None
        # Bound every partial sum: |any prefix| <= max|v| * n. (Python-int
        # math: np.abs would wrap on INT64_MIN.)
        if max(int(arr.max()), -int(arr.min())) * arr.size >= 2**62:
            return None
        acc = np.zeros(n_groups, dtype=np.int64)
        np.add.at(acc, gids, arr)
        return acc.tolist()  # back to Python ints, exact
    if ctype is float or issubclass(ctype, np.ndarray):
        if ctype is float:
            arr = np.array(column, dtype=np.float64)
        else:
            try:
                arr = np.array(column)
            except ValueError:  # ragged shapes
                return None
            if arr.dtype == object or arr.ndim < 2:
                return None  # ragged (older numpy) or 0-d element arrays
        if np.issubdtype(arr.dtype, np.floating):
            zeros = arr == 0.0
            if zeros.any() and np.signbit(arr[zeros]).any():
                return None  # 0.0 + (-0.0) would flip the sign vs serial
        elif np.issubdtype(arr.dtype, np.integer):
            if max(int(arr.max()), -int(arr.min())) * len(column) >= 2**62:
                return None
        else:
            return None  # bool/object/complex arrays: scalar loop only
        acc = np.zeros((n_groups,) + arr.shape[1:], dtype=arr.dtype)
        np.add.at(acc, gids, arr)
        return acc.tolist() if ctype is float else list(acc)
    return None

"""Execution instrumentation: task/stage/job metrics and a listener bus.

This is the engine's equivalent of Spark's ``SparkListener`` interface —
the surface CHOPPER's statistics collector plugs into. Every executed
stage produces a :class:`StageStats` carrying exactly what the paper's
workload DB stores: input size, partition scheme, execution time, and
shuffle read/write volumes (§III: "the observed information including the
input and intermediate data size, the number of stages, the number of
tasks per stage, and the resource utilization information").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TaskMetrics:
    """Measurements of one executed task."""

    stage_run_id: int
    task_index: int
    node: str
    start: float
    end: float
    input_bytes: float = 0.0
    cache_read_bytes: float = 0.0
    compute_bytes: float = 0.0
    records_out: int = 0
    shuffle_read_local: float = 0.0
    shuffle_read_remote: float = 0.0
    shuffle_write: float = 0.0
    # Which retry of the logical task this was (0 = first run), and
    # whether it ran as a speculative backup copy.
    attempt: int = 0
    speculative: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def shuffle_read(self) -> float:
        return self.shuffle_read_local + self.shuffle_read_remote


@dataclass
class StageStats:
    """Measurements of one executed stage (one row of the workload DB)."""

    stage_run_id: int
    job_id: int
    signature: str
    name: str
    kind: str  # "shuffle_map" | "result"
    num_partitions: int
    partitioner_kind: Optional[str]
    submitted_at: float
    completed_at: float = 0.0
    input_bytes: float = 0.0
    shuffle_read_bytes: float = 0.0
    shuffle_write_bytes: float = 0.0
    tasks: List[TaskMetrics] = field(default_factory=list)
    # DAG metadata for CHOPPER's workload DB (Algorithm 3 needs the stage
    # dependency structure, join grouping, and user-fixed flags).
    parent_signatures: List[str] = field(default_factory=list)
    cogroup_sides: int = 0
    user_fixed: bool = False
    # Signatures of source RDDs in this stage's pipeline: stages sharing a
    # source share its partition granularity (Algorithm 3 source groups).
    source_signatures: List[str] = field(default_factory=list)
    # > 0: a partial re-run of the stage after a fetch failure (lineage
    # recovery), covering only the lost map partitions — not a clean
    # observation of the stage at its partition count.
    attempt: int = 0
    # Per-reduce-partition output bytes of a shuffle-map stage, filled at
    # completion from the shuffle manager; empty for result stages. The
    # data-side skew signal (task durations only show the compute side).
    output_partition_bytes: List[float] = field(default_factory=list)
    # AQE: physical task count after runtime re-planning (coalesce/split);
    # None when the stage ran its static layout. num_partitions always
    # stays the logical (original) partition count.
    adapted_num_partitions: Optional[int] = None
    # Partition pruning: source partitions skipped by this stage's scans
    # (zone maps / range layout / result cache). Pruned partitions never
    # appear in any task's lineage, so they are not in num_partitions.
    pruned_partitions: int = 0

    @property
    def duration(self) -> float:
        return self.completed_at - self.submitted_at

    @property
    def shuffle_bytes(self) -> float:
        """The paper's per-stage shuffle metric: max(read, write)."""
        return max(self.shuffle_read_bytes, self.shuffle_write_bytes)

    @property
    def remote_shuffle_read(self) -> float:
        """Bytes of shuffle input that crossed the network."""
        return sum(t.shuffle_read_remote for t in self.tasks)

    def skew(self) -> float:
        """Max/mean task duration — 1.0 means perfectly balanced."""
        if not self.tasks:
            return 1.0
        durations = [t.duration for t in self.tasks]
        mean = sum(durations) / len(durations)
        if mean <= 0:
            return 1.0
        return max(durations) / mean


@dataclass
class JobStats:
    """Measurements of one job (action) run."""

    job_id: int
    submitted_at: float
    completed_at: float = 0.0
    stages: List[StageStats] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.completed_at - self.submitted_at


class Listener:
    """Subscriber interface; override the callbacks you care about."""

    def on_stage_submitted(self, stage_stats: StageStats) -> None:
        pass

    def on_task_end(self, task_metrics: TaskMetrics) -> None:
        pass

    def on_stage_completed(self, stage_stats: StageStats) -> None:
        pass

    def on_job_end(self, job_stats: JobStats) -> None:
        pass

    def on_span(self, event) -> None:
        """A :class:`repro.obs.TraceEvent` span finished (tracing only)."""
        pass


class ListenerBus:
    """Synchronous fan-out of execution events to registered listeners."""

    def __init__(self) -> None:
        self._listeners: List[Listener] = []

    def add(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def stage_submitted(self, stats: StageStats) -> None:
        for listener in self._listeners:
            listener.on_stage_submitted(stats)

    def task_end(self, metrics: TaskMetrics) -> None:
        for listener in self._listeners:
            listener.on_task_end(metrics)

    def stage_completed(self, stats: StageStats) -> None:
        for listener in self._listeners:
            listener.on_stage_completed(stats)

    def job_end(self, stats: JobStats) -> None:
        for listener in self._listeners:
            listener.on_job_end(stats)

    def span(self, event) -> None:
        for listener in self._listeners:
            listener.on_span(event)

"""RDD dependencies: narrow vs shuffle.

Narrow dependencies (map, filter, union, coalesce) let a child partition
be computed from a bounded set of parent partitions on one machine, so
chains of them fuse into a single stage. Shuffle (wide) dependencies
(reduceByKey, join, sortByKey) need an all-to-all exchange and therefore
cut stage boundaries — exactly the rule the paper's Fig. 1 describes for
Spark's DAGScheduler.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.engine.partitioner import Partitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rdd import RDD

_shuffle_ids = itertools.count()


def reset_shuffle_ids() -> None:
    """Restart shuffle-id numbering from 0.

    Called by every new :class:`~repro.engine.context.AnalyticsContext`,
    so a run's shuffle ids depend only on its own DAG — not on how many
    contexts the process built earlier. That keeps telemetry that embeds
    shuffle ids (log records, ledger chaos/AQE events) byte-identical
    between a serial sweep and pool workers, which fork mid-sweep with
    the counter at an arbitrary position. Ids are only ever used as keys
    in per-context tables, so cross-context uniqueness is not needed.
    """
    global _shuffle_ids
    _shuffle_ids = itertools.count()


def default_key_fn(record):
    """Default shuffle key: ``record[0]``.

    A named function (not a per-instance lambda) so the executor's
    vectorized kernels can recognize the default by identity and extract
    keys with a subscript instead of a per-record Python call.
    """
    return record[0]


class Dependency:
    """Base dependency on a parent RDD."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """A child partition depends on a bounded list of parent partitions."""

    def parent_partitions(self, split: int) -> List[int]:
        """Parent partition indices needed to compute child ``split``."""
        raise NotImplementedError


class OneToOneDependency(NarrowDependency):
    """Child partition *i* depends exactly on parent partition *i*."""

    def parent_partitions(self, split: int) -> List[int]:
        return [split]


class RangeNarrowDependency(NarrowDependency):
    """Child partition *i* maps to parent partition ``i + offset`` (union)."""

    def __init__(self, parent: "RDD", offset: int, length: int) -> None:
        super().__init__(parent)
        self.offset = offset
        self.length = length

    def parent_partitions(self, split: int) -> List[int]:
        local = split - self.offset
        if 0 <= local < self.length:
            return [local]
        return []


class SubsetDependency(NarrowDependency):
    """Child partition *i* maps to a chosen parent partition ``kept[i]``.

    The narrow dependency behind partition pruning: a pruned scan keeps
    only the parent partitions a filter can possibly match, so the
    skipped ones never appear in any task's lineage and never schedule.
    """

    def __init__(self, parent: "RDD", kept) -> None:
        super().__init__(parent)
        self.kept = tuple(kept)

    def parent_partitions(self, split: int) -> List[int]:
        return [self.kept[split]]


class CoalesceDependency(NarrowDependency):
    """Child partition *i* merges a contiguous slice of parent partitions.

    Used by ``coalesce(n)`` without shuffle: parent partitions are divided
    into ``n`` contiguous groups.
    """

    def __init__(self, parent: "RDD", num_child_partitions: int) -> None:
        super().__init__(parent)
        self.num_child_partitions = num_child_partitions

    def parent_partitions(self, split: int) -> List[int]:
        n_parent = self.parent.num_partitions
        n_child = self.num_child_partitions
        start = (split * n_parent) // n_child
        end = ((split + 1) * n_parent) // n_child
        return list(range(start, end))


class Aggregator:
    """Combine functions for an aggregating shuffle (Spark's Aggregator).

    ``create_combiner(v)`` starts a combiner from the first value of a
    key; ``merge_value(c, v)`` folds another value in (map side);
    ``merge_combiners(c1, c2)`` merges partial combiners (reduce side).

    ``numeric_add`` declares that the aggregation is exactly
    ``reduceByKey(lambda a, b: a + b)`` — create is identity, both merges
    are elementwise ``+`` — over values that are scalar numbers,
    fixed-shape numeric arrays, or flat tuples of those. That is a
    promise, not an inference: callers opt in, and the executor may then
    fold a map partition's values per key with a vectorized kernel. The
    kernel replays the same left fold in record-arrival order (falling
    back to the scalar loop on anything it cannot fold exactly), so
    results stay bit-identical to the scalar loop.
    """

    def __init__(
        self,
        create_combiner: Callable,
        merge_value: Callable,
        merge_combiners: Callable,
        numeric_add: bool = False,
    ) -> None:
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.merge_combiners = merge_combiners
        self.numeric_add = numeric_add

    @classmethod
    def from_reduce_fn(cls, fn: Callable, numeric_add: bool = False) -> "Aggregator":
        """Aggregator for ``reduceByKey(fn)`` semantics."""
        return cls(lambda v: v, fn, fn, numeric_add=numeric_add)


class ShuffleDependency(Dependency):
    """An all-to-all exchange of the parent's key-value records.

    Attributes:
        partitioner: decides the reduce-side partition of each key. This is
            the single mutable knob CHOPPER's dynamic configuration turns:
            the DAGScheduler may replace it (count and/or kind) any time
            before the map stage that writes this shuffle is launched.
        map_side_combine: fold values per key within each map partition
            before writing shuffle blocks (``reduceByKey`` semantics);
            this is why shuffle volume grows with the *map* partition
            count for aggregations (the paper's Fig. 4).
        aggregator: the combine functions, when the shuffle aggregates.
        key_fn: extracts the shuffle key from a record (default: ``r[0]``).
        user_fixed: the user passed an explicit partitioner/parallelism to
            the operation, so CHOPPER must leave the scheme intact unless
            inserting an extra repartition phase pays off by the paper's
            factor gamma (§III-C).
        pending_scheme: a CHOPPER ``SchemeRef`` attached by the config
            rewrite pass; the DAGScheduler resolves it into a concrete
            partitioner right before the writing map stage launches
            (range partitioners need to sample real keys at that point).
    """

    def __init__(
        self,
        parent: "RDD",
        partitioner: Partitioner,
        map_side_combine: bool = False,
        aggregator: Optional[Aggregator] = None,
        key_fn: Optional[Callable] = None,
        user_fixed: bool = False,
        ordered: bool = False,
    ) -> None:
        super().__init__(parent)
        self.partitioner = partitioner
        self.map_side_combine = map_side_combine
        self.aggregator = aggregator
        self.key_fn = key_fn or default_key_fn
        self.user_fixed = user_fixed
        # Ordered shuffles (sortByKey) rely on a range partitioner for the
        # global sort order; advisors may retune the count but never the
        # partitioner kind.
        self.ordered = ordered
        self.shuffle_id = next(_shuffle_ids)
        self.pending_scheme: Optional[object] = None

    @property
    def num_reduce_partitions(self) -> int:
        return self.partitioner.num_partitions

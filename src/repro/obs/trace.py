"""Span tracer and Chrome-trace (Perfetto) exporter, keyed on simulated time.

The engine emits :class:`TraceEvent` spans through the listener bus — one
per job, stage, task attempt, and task phase (shuffle fetch, compute, …),
plus driver-side CHOPPER spans (advisor rewrite, profile/train/optimize
phases). A :class:`Tracer` collects them and :func:`to_chrome` renders the
set in the Chrome trace-event JSON format, so a run opens directly in
``chrome://tracing`` or https://ui.perfetto.dev:

* every worker node is a *process* (``pid``), the driver is process 1;
* every core of a node is a *thread lane* (``tid``); task spans are
  packed into core lanes by a greedy interval assignment, so concurrency
  on a node is visible at a glance and never exceeds its core count;
* sub-spans (task phases such as the shuffle fetch) carry the same
  correlation ``key`` as their task span and inherit its lane, nesting
  underneath it in the UI;
* timestamps are simulated seconds rendered as microseconds (``ts`` /
  ``dur``), the units the trace-event format expects.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

DRIVER_PID = 1

# Driver-side lanes by span category (tid 0 is reserved for metadata).
_DRIVER_TIDS = {
    "run": 1,
    "job": 2,
    "stage": 3,
    "chopper": 4,
    "chopper.optimizer": 4,
    "chaos": 5,
    "spill": 6,
}
_DRIVER_TID_NAMES = {
    1: "runs", 2: "jobs", 3: "stages", 4: "chopper", 5: "chaos", 6: "spill",
}
_DRIVER_TID_FALLBACK = 7


@dataclass
class TraceEvent:
    """One complete span, in simulated seconds.

    ``node`` is None for driver-side spans (jobs, stages, CHOPPER
    phases). ``key`` correlates a task span with its phase sub-spans so
    the exporter can place them on the same core lane.
    """

    name: str
    cat: str
    start: float
    end: float
    node: Optional[str] = None
    key: Optional[Tuple] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans from the listener bus and driver-side phases.

    Implements the :class:`~repro.engine.listener.Listener` callbacks it
    cares about (``on_span``) by duck typing, so this module has no
    engine dependency and the engine none on it.

    A tracer can outlive one context: :meth:`scope` shifts the simulated
    times of everything observed inside it past the current horizon, so a
    multi-run pipeline (profile sweep, vanilla-vs-CHOPPER compare) renders
    as consecutive segments of one timeline.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._offset = 0.0
        self._horizon = 0.0
        self._nodes: Dict[str, int] = {}

    @property
    def horizon(self) -> float:
        """Largest (shifted) end time seen so far."""
        return self._horizon

    def declare_nodes(self, nodes: Dict[str, int]) -> None:
        """Declare node -> core-count so every core gets a named lane."""
        self._nodes.update(nodes)

    # ------------------------------------------------------------------
    # Listener-bus callbacks (duck-typed Listener)
    # ------------------------------------------------------------------

    def on_span(self, event: TraceEvent) -> None:
        if self._offset:
            # Copy before shifting: the bus hands the same event object to
            # every span listener (e.g. a ledger collector records the
            # run-local times), so the shift must stay private.
            event = replace(
                event,
                start=event.start + self._offset,
                end=event.end + self._offset,
            )
        self._append(event)

    def on_stage_submitted(self, stage_stats) -> None:
        pass

    def on_task_end(self, task_metrics) -> None:
        pass

    def on_stage_completed(self, stage_stats) -> None:
        pass

    def on_job_end(self, job_stats) -> None:
        pass

    # ------------------------------------------------------------------
    # Direct emission (driver-side spans, absolute times)
    # ------------------------------------------------------------------

    def emit(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        node: Optional[str] = None,
        key: Optional[Tuple] = None,
        **args: Any,
    ) -> None:
        self._append(
            TraceEvent(
                name=name, cat=cat, start=start, end=end,
                node=node, key=key, args=args,
            )
        )

    def instant(self, name: str, cat: str, **args: Any) -> None:
        """A zero-duration marker at the current horizon."""
        self.emit(name, cat, self._horizon, self._horizon, **args)

    @contextmanager
    def scope(self, label: str, **args: Any) -> Iterator["Tracer"]:
        """Shift spans observed inside past the horizon; emit a run span."""
        previous = self._offset
        start = self._horizon
        self._offset = start
        try:
            yield self
        finally:
            self._offset = previous
            self._append(
                TraceEvent(
                    name=label, cat="run",
                    start=start, end=max(self._horizon, start), args=args,
                )
            )

    @contextmanager
    def phase(self, label: str, cat: str = "chopper", **args: Any) -> Iterator["Tracer"]:
        """A driver-side phase span covering the simulated time it added.

        Phases that advance no simulated time (model training, the
        optimizer itself) render as zero-duration markers; the measured
        wall-clock cost is recorded in ``args["wall_ms"]``.
        """
        start = self._horizon
        wall0 = time.perf_counter()
        try:
            yield self
        finally:
            args = dict(args)
            args["wall_ms"] = round((time.perf_counter() - wall0) * 1e3, 3)
            self._append(
                TraceEvent(
                    name=label, cat=cat,
                    start=start, end=max(self._horizon, start), args=args,
                )
            )

    # ------------------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        self.events.append(event)
        if event.end > self._horizon:
            self._horizon = event.end

    def to_chrome(self) -> dict:
        return to_chrome(self.events, nodes=self._nodes)

    def save(self, path: str) -> None:
        save_chrome_trace(path, self.events, nodes=self._nodes)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------

_LANE_EPS = 1e-9


def _assign_lanes(
    events: List[TraceEvent], node_names: List[str]
) -> Tuple[Dict[int, int], Dict[Tuple[str, Tuple], int], Dict[str, int]]:
    """Pack task spans into per-node core lanes (greedy interval coloring).

    Returns (event index -> lane), (``(node, key)`` -> lane) for sub-span
    inheritance, and (node -> lanes used).
    """
    lane_ends: Dict[str, List[float]] = {name: [] for name in node_names}
    lanes_of: Dict[int, int] = {}
    key_lane: Dict[Tuple[str, Tuple], int] = {}
    order = sorted(
        (i for i, e in enumerate(events) if e.node is not None and e.cat == "task"),
        key=lambda i: (events[i].start, events[i].end),
    )
    for i in order:
        event = events[i]
        ends = lane_ends[event.node]
        for lane, last_end in enumerate(ends):
            if last_end <= event.start + _LANE_EPS:
                ends[lane] = event.end
                break
        else:
            lane = len(ends)
            ends.append(event.end)
        lanes_of[i] = lane
        if event.key is not None:
            key_lane[(event.node, event.key)] = lane
    return lanes_of, key_lane, {name: len(ends) for name, ends in lane_ends.items()}


def to_chrome(
    events: List[TraceEvent], nodes: Optional[Dict[str, int]] = None
) -> dict:
    """Render spans as a Chrome trace-event JSON document.

    ``nodes`` (node -> cores) pre-declares one lane per core even when a
    run never filled them all; undeclared nodes get as many lanes as their
    peak concurrency required.
    """
    nodes = dict(nodes or {})
    node_names = sorted({e.node for e in events if e.node is not None} | set(nodes))
    pids = {name: i + DRIVER_PID + 1 for i, name in enumerate(node_names)}
    lanes_of, key_lane, lanes_used = _assign_lanes(events, node_names)

    trace_events: List[dict] = []
    for i, event in enumerate(events):
        if event.node is None:
            pid = DRIVER_PID
            tid = _DRIVER_TIDS.get(event.cat, _DRIVER_TID_FALLBACK)
        else:
            pid = pids[event.node]
            if event.cat == "task":
                lane = lanes_of.get(i, 0)
            else:
                lane = key_lane.get((event.node, event.key), 0)
            tid = lane + 1
        trace_events.append(
            {
                "name": event.name,
                "cat": event.cat,
                "ph": "X",
                "ts": round(event.start * 1e6, 3),
                "dur": round(max(event.duration, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": event.args,
            }
        )

    meta: List[dict] = [
        _metadata("process_name", DRIVER_PID, 0, name="driver"),
        _metadata("process_sort_index", DRIVER_PID, 0, sort_index=0),
    ]
    for tid, name in _DRIVER_TID_NAMES.items():
        meta.append(_metadata("thread_name", DRIVER_PID, tid, name=name))
    for rank, node in enumerate(node_names):
        pid = pids[node]
        meta.append(_metadata("process_name", pid, 0, name=node))
        meta.append(_metadata("process_sort_index", pid, 0, sort_index=rank + 1))
        n_lanes = max(nodes.get(node, 0), lanes_used.get(node, 0))
        for core in range(n_lanes):
            meta.append(_metadata("thread_name", pid, core + 1, name=f"core {core}"))
    return {"traceEvents": meta + trace_events, "displayTimeUnit": "ms"}


def _metadata(kind: str, pid: int, tid: int, **args: Any) -> dict:
    return {"name": kind, "ph": "M", "pid": pid, "tid": tid, "args": args}


def save_chrome_trace(
    path: str, events: List[TraceEvent], nodes: Optional[Dict[str, int]] = None
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome(events, nodes=nodes), fh)
        fh.write("\n")

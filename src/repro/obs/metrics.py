"""Lightweight metrics registry: counters, gauges, and histograms.

The engine's time-series recorder (:mod:`repro.simul.metrics`) answers
"what did utilization look like over the run" — the paper's Figs. 11-14.
This registry answers the complementary operational question: "how much of
X happened, total" — shuffle bytes moved locally vs over the network,
speculative attempts launched and won, task retries, cache hits, queue
wait times. Every :class:`~repro.engine.context.AnalyticsContext` owns one
(always on; increments are plain float adds), and the CLI's ``--metrics``
flag dumps a JSON snapshot after the run.

Metric identity is ``(name, labels)``, Prometheus-style: the same name may
carry several label sets (``shuffle.remote_bytes{src=node-1}``,
``shuffle.remote_bytes{src=node-2}``) plus an unlabeled total series.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Tuple

from repro.common.errors import ConfigurationError

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total (bytes, launches, retries)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be >= 0, got {amount}"
            )
        self.value += amount


class Gauge:
    """A value that moves both ways (queue depth, free cores)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Summary statistics of observed samples (queue waits, durations).

    Samples are retained, so exact quantiles are available — the straggler
    detector reads p50/p95/p99 via :meth:`quantile` instead of re-deriving
    them from buckets. At this simulator's scale (thousands of tasks per
    run) retention is a few hundred KB at worst.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_sorted")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self._samples: list = []
        self._sorted: bool = True

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact sample quantile by linear interpolation (q in [0, 1]).

        Returns 0.0 on an empty histogram, so callers can treat "no
        samples" and "all-zero samples" uniformly.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        samples = self._samples
        pos = q * (len(samples) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
        }


class MetricsRegistry:
    """Get-or-create registry of named, optionally labeled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelKey, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelKey, Gauge]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            series[key] = instrument = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        series = self._gauges.setdefault(name, {})
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            series[key] = instrument = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            series[key] = instrument = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Value of one counter series; with no labels and no unlabeled
        series registered, the sum over all label sets of ``name``."""
        series = self._counters.get(name, {})
        key = _label_key(labels)
        if key in series:
            return series[key].value
        if not labels:
            return sum(c.value for c in series.values())
        return 0.0

    def gauge_value(self, name: str, **labels: Any) -> float:
        series = self._gauges.get(name, {})
        instrument = series.get(_label_key(labels))
        return instrument.value if instrument is not None else 0.0

    def counter_labels(self, name: str) -> Dict[LabelKey, float]:
        """All (label set -> value) series of one counter name.

        Sorted by label set, so iteration order is independent of the
        order series were first touched (which differs between serial and
        threaded execution).
        """
        return {
            key: c.value
            for key, c in sorted(self._counters.get(name, {}).items())
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable dump of every registered instrument.

        Names and label sets are sorted, so two runs that touched the
        same series — in any order, e.g. serial vs threaded task
        execution — produce byte-identical snapshots.
        """

        def render(series: Dict[str, Dict[LabelKey, Any]], value_of) -> dict:
            return {
                name: [
                    {"labels": dict(key), **value_of(instrument)}
                    for key, instrument in sorted(instruments.items())
                ]
                for name, instruments in sorted(series.items())
            }

        return {
            "counters": render(self._counters, lambda c: {"value": c.value}),
            "gauges": render(self._gauges, lambda g: {"value": g.value}),
            "histograms": render(self._histograms, lambda h: h.to_dict()),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

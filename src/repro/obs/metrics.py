"""Lightweight metrics registry: counters, gauges, and histograms.

The engine's time-series recorder (:mod:`repro.simul.metrics`) answers
"what did utilization look like over the run" — the paper's Figs. 11-14.
This registry answers the complementary operational question: "how much of
X happened, total" — shuffle bytes moved locally vs over the network,
speculative attempts launched and won, task retries, cache hits, queue
wait times. Every :class:`~repro.engine.context.AnalyticsContext` owns one
(always on; increments are plain float adds), and the CLI's ``--metrics``
flag dumps a JSON snapshot after the run.

Metric identity is ``(name, labels)``, Prometheus-style: the same name may
carry several label sets (``shuffle.remote_bytes{src=node-1}``,
``shuffle.remote_bytes{src=node-2}``) plus an unlabeled total series.
"""

from __future__ import annotations

import json
import math
import random
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _check_finite(what: str, value: float) -> None:
    """Reject NaN/inf at the door: a single NaN observed into a counter or
    histogram poisons every downstream ``snapshot()`` comparison (NaN != NaN,
    so even ``diff-runs`` of two identical runs would flag)."""
    if not math.isfinite(value):
        raise ConfigurationError(f"{what} must be finite, got {value}")


class Counter:
    """A monotonically increasing total (bytes, launches, retries)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be >= 0, got {amount}"
            )
        _check_finite("counter increments", amount)
        self.value += amount


class Gauge:
    """A value that moves both ways (queue depth, free cores)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        _check_finite("gauge values", value)
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        _check_finite("gauge increments", amount)
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        _check_finite("gauge decrements", amount)
        self.value -= amount


class Histogram:
    """Summary statistics of observed samples (queue waits, durations).

    Samples are retained up to ``retention_cap`` (default 100k), so exact
    quantiles are available below it — the straggler detector reads
    p50/p95/p99 via :meth:`quantile` instead of re-deriving them from
    buckets. Beyond the cap, observation switches to reservoir sampling
    (Vitter's Algorithm R) with an RNG seeded by the instrument name, so a
    long-lived registry (service mode) stays bounded and two runs that
    observe the same sequence keep byte-identical reservoirs. Quantiles
    over a capped histogram are an approximation of the full stream;
    ``count``/``sum``/``min``/``max``/``mean`` stay exact either way.
    """

    DEFAULT_RETENTION = 100_000

    __slots__ = (
        "count", "total", "min", "max",
        "_samples", "_sorted", "_cap", "_rng",
    )

    def __init__(self, name: str = "", retention_cap: Optional[int] = None) -> None:
        cap = self.DEFAULT_RETENTION if retention_cap is None else retention_cap
        if cap < 1:
            raise ConfigurationError(
                f"histogram retention cap must be >= 1, got {cap}"
            )
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self._samples: list = []
        self._sorted: bool = True
        self._cap: int = cap
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    @property
    def capped(self) -> bool:
        """Has the reservoir kicked in (quantiles now approximate)?"""
        return self.count > self._cap

    def observe(self, value: float) -> None:
        _check_finite("histogram observations", value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self._cap:
            if self._samples and value < self._samples[-1]:
                self._sorted = False
            self._samples.append(value)
            return
        # Reservoir (Algorithm R): keep the new sample with probability
        # cap/count, evicting a uniformly random resident. The RNG is
        # seeded by instrument name, so identical observation sequences
        # produce identical reservoirs.
        j = self._rng.randrange(self.count)
        if j < self._cap:
            self._samples[j] = value
            self._sorted = False

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Exact sample quantile by linear interpolation (q in [0, 1]).

        Returns 0.0 on an empty histogram, so callers can treat "no
        samples" and "all-zero samples" uniformly.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        samples = self._samples
        pos = q * (len(samples) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
        }

    def merge_samples(
        self,
        count: int,
        total: float,
        mn: float,
        mx: float,
        samples: List[float],
    ) -> None:
        """Fold another histogram's dumped state into this one.

        The shipped samples are re-observed in order (running this
        reservoir if we overflow). When the source itself was capped,
        ``count > len(samples)``: the exact count/sum/min/max of the
        unretained tail are folded in separately so the aggregate's
        non-quantile statistics stay exact.
        """
        for value in samples:
            self.observe(value)
        extra = count - len(samples)
        if extra > 0:
            shipped = 0.0
            for value in samples:
                shipped += value
            self.count += extra
            self.total += total - shipped
            if mn < self.min:
                self.min = mn
            if mx > self.max:
                self.max = mx


class MetricsRegistry:
    """Get-or-create registry of named, optionally labeled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelKey, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelKey, Gauge]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        series = self._counters.setdefault(name, {})
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            series[key] = instrument = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        series = self._gauges.setdefault(name, {})
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            series[key] = instrument = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        series = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            series[key] = instrument = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Value of one counter series; with no labels and no unlabeled
        series registered, the sum over all label sets of ``name``.

        Note the ambiguity that makes the no-label lookup a trap: once an
        unlabeled series exists alongside labeled ones (the shuffle
        manager's totals do exactly this), ``counter_value(name)`` returns
        only the unlabeled series and silently ignores the labeled ones.
        Use :meth:`counter_total` when you mean "everything under this
        name".
        """
        series = self._counters.get(name, {})
        key = _label_key(labels)
        if key in series:
            return series[key].value
        if not labels:
            return sum(c.value for c in series.values())
        return 0.0

    def counter_total(self, name: str) -> float:
        """The grand total of ``name`` — the explicit, deterministic lookup.

        By registry convention labeled series *decompose* an unlabeled
        total (``shuffle.write_bytes{node=...}`` sums into the unlabeled
        ``shuffle.write_bytes``), so when an unlabeled series exists it is
        authoritative and summing every series would double-count. With no
        unlabeled series, the labeled series are summed in sorted
        label-set order — unlike ``counter_value(name)``, whose fallback
        sums in series *touch* order, a float-addition order that differs
        between serial and threaded runs.
        """
        series = self._counters.get(name, {})
        unlabeled = series.get(())
        if unlabeled is not None:
            return unlabeled.value
        total = 0.0
        for _key, instrument in sorted(series.items()):
            total += instrument.value
        return total

    def gauge_value(self, name: str, **labels: Any) -> float:
        series = self._gauges.get(name, {})
        instrument = series.get(_label_key(labels))
        return instrument.value if instrument is not None else 0.0

    def counter_labels(self, name: str) -> Dict[LabelKey, float]:
        """All (label set -> value) series of one counter name.

        Sorted by label set, so iteration order is independent of the
        order series were first touched (which differs between serial and
        threaded execution).
        """
        return {
            key: c.value
            for key, c in sorted(self._counters.get(name, {}).items())
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable dump of every registered instrument.

        Names and label sets are sorted, so two runs that touched the
        same series — in any order, e.g. serial vs threaded task
        execution — produce byte-identical snapshots.
        """

        def render(series: Dict[str, Dict[LabelKey, Any]], value_of) -> dict:
            return {
                name: [
                    {"labels": dict(key), **value_of(instrument)}
                    for key, instrument in sorted(instruments.items())
                ]
                for name, instruments in sorted(series.items())
            }

        return {
            "counters": render(self._counters, lambda c: {"value": c.value}),
            "gauges": render(self._gauges, lambda g: {"value": g.value}),
            "histograms": render(self._histograms, lambda h: h.to_dict()),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        from repro.obs.export import to_prometheus

        return to_prometheus(self.snapshot())

    # ------------------------------------------------------------------
    # Cross-registry aggregation
    # ------------------------------------------------------------------

    def dump_state(self) -> dict:
        """A picklable, deterministic dump for cross-process shipping.

        Unlike :meth:`snapshot` this keeps raw histogram samples, so a
        worker registry can be folded into the driver's via
        :meth:`merge_state` without losing quantile fidelity.
        """
        return {
            "counters": {
                name: [
                    [list(key), c.value]
                    for key, c in sorted(series.items())
                ]
                for name, series in sorted(self._counters.items())
            },
            "gauges": {
                name: [
                    [list(key), g.value]
                    for key, g in sorted(series.items())
                ]
                for name, series in sorted(self._gauges.items())
            },
            "histograms": {
                name: [
                    [
                        list(key),
                        {
                            "count": h.count,
                            "total": h.total,
                            "min": h.min,
                            "max": h.max,
                            "samples": list(h._samples),
                        },
                    ]
                    for key, h in sorted(series.items())
                ]
                for name, series in sorted(self._histograms.items())
            },
        }

    def merge_state(
        self,
        state: dict,
        extra_labels: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fold a :meth:`dump_state` blob into this registry.

        Counters add, gauges take the incoming value (last write wins),
        histograms re-observe the shipped samples. ``extra_labels`` (e.g.
        ``worker="w0"``) are appended to every incoming label set, which
        is how pool workers' series land distinguishable in the merged
        snapshot. Merge order is the dump's sorted order, so repeated
        merges of the same states are byte-identical.
        """
        extra = dict(extra_labels or {})
        for name, series in state.get("counters", {}).items():
            for key, value in series:
                labels = {**dict(key), **extra}
                self.counter(name, **labels).inc(value)
        for name, series in state.get("gauges", {}).items():
            for key, value in series:
                labels = {**dict(key), **extra}
                self.gauge(name, **labels).set(value)
        for name, series in state.get("histograms", {}).items():
            for key, dumped in series:
                labels = {**dict(key), **extra}
                self.histogram(name, **labels).merge_samples(
                    dumped["count"],
                    dumped["total"],
                    dumped["min"],
                    dumped["max"],
                    dumped["samples"],
                )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

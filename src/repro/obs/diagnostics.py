"""Analysis passes over run-ledger entries.

Three detectors plus a run-to-run regression check, all operating on the
plain-dict entries :class:`~repro.obs.ledger.RunLedger` stores — no live
context needed, so a run can be diagnosed long after it finished:

* :func:`partition_skew` — per stage, max/mean and Gini over the
  per-partition byte and record distributions (data-side skew) and over
  task durations (compute-side skew);
* :func:`detect_stragglers` — per stage, task-duration outliers against
  a quantile-derived threshold (default: tasks slower than 2x the
  median, provided they also clear the stage's p95);
* :func:`model_drift` — per (stage signature, partitioner kind), the
  trend of the cost model's relative time residuals across successive
  ledger entries: a fit that keeps getting worse signals the workload
  drifted away from its training data;
* :func:`diff_runs` — wall-clock and shuffle-volume comparison of two
  entries with a regression threshold, for CI gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry

# The failure/recovery counters every run maintains; their totals are a
# run's one-line health readout.
HEALTH_COUNTERS = (
    "scheduler.task_retries",
    "scheduler.fetch_failures",
    "scheduler.stage_resubmissions",
    "scheduler.nodes_lost",
    "scheduler.speculative_launches",
    "cache.hits",
    "cache.misses",
    "scan.partitions_pruned",
)


def counter_health(registry: MetricsRegistry) -> Dict[str, float]:
    """Totals of the failure/recovery counters, keyed by counter name.

    Goes through :meth:`MetricsRegistry.counter_total` — the
    unambiguous total — rather than ``counter_value``, whose
    sum-the-labels fallback double-counts registries that maintain both
    an unlabeled total and its labeled decomposition (as the shuffle
    manager's byte counters do).
    """
    return {name: registry.counter_total(name) for name in HEALTH_COUNTERS}


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = uniform).

    Sorted-formula implementation: G = 2·Σ(i·xᵢ)/(n·Σx) − (n+1)/n with
    1-based ranks over ascending values. Degenerate inputs (empty,
    single, all-zero) read as perfectly uniform.
    """
    xs = sorted(float(v) for v in values)
    n = len(xs)
    total = sum(xs)
    if n < 2 or total <= 0:
        return 0.0
    weighted = sum(rank * x for rank, x in enumerate(xs, start=1))
    return 2.0 * weighted / (n * total) - (n + 1) / n


def max_mean(values: Sequence[float]) -> float:
    """Max/mean ratio (1.0 = perfectly balanced)."""
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    return max(values) / mean


@dataclass
class SkewFinding:
    """Skew measurements of one stage in one run."""

    stage_run_id: int
    name: str
    signature: str
    attempt: int
    metric: str  # "partition_bytes" | "task_input_bytes" | "task_duration"
    max_mean: float
    gini: float
    n: int
    flagged: bool

    def to_dict(self) -> dict:
        return {
            "stage_run_id": self.stage_run_id,
            "name": self.name,
            "signature": self.signature,
            "attempt": self.attempt,
            "metric": self.metric,
            "max_mean": self.max_mean,
            "gini": self.gini,
            "n": self.n,
            "flagged": self.flagged,
        }


def partition_skew(
    entry: Dict[str, Any],
    max_mean_threshold: float = 2.0,
    gini_threshold: float = 0.4,
) -> List[SkewFinding]:
    """Skew findings for every stage of one ledger entry.

    A stage yields one finding per available distribution: the shuffle
    output's per-reduce-partition bytes (map stages), the per-task input
    bytes, and the per-task durations. ``flagged`` marks a distribution
    exceeding *either* threshold — max/mean catches a single hot
    partition, Gini catches broad imbalance that max/mean smooths over.
    """
    findings: List[SkewFinding] = []

    def add(stage: dict, metric: str, values: Sequence[float]) -> None:
        if len(values) < 2:
            return
        mm = max_mean(values)
        g = gini(values)
        findings.append(
            SkewFinding(
                stage_run_id=stage["stage_run_id"],
                name=stage["name"],
                signature=stage["signature"],
                attempt=stage.get("attempt", 0),
                metric=metric,
                max_mean=mm,
                gini=g,
                n=len(values),
                flagged=mm > max_mean_threshold or g > gini_threshold,
            )
        )

    for stage in entry.get("stages", []):
        add(stage, "partition_bytes", stage.get("output_partition_bytes") or [])
        tasks = stage.get("tasks", {})
        add(stage, "task_input_bytes", tasks.get("input_bytes") or [])
        add(stage, "task_duration", tasks.get("duration") or [])
    return findings


@dataclass
class StragglerFinding:
    """Task-duration outliers of one stage."""

    stage_run_id: int
    name: str
    signature: str
    attempt: int
    p50: float
    p95: float
    p99: float
    threshold: float
    outliers: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "stage_run_id": self.stage_run_id,
            "name": self.name,
            "signature": self.signature,
            "attempt": self.attempt,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "threshold": self.threshold,
            "outliers": self.outliers,
        }


def detect_stragglers(
    entry: Dict[str, Any],
    multiplier: float = 2.0,
    min_tasks: int = 4,
) -> List[StragglerFinding]:
    """Stages with task-duration outliers (one finding per such stage).

    A task is a straggler when its duration exceeds both
    ``multiplier × p50`` and the stage's p95 — the double condition keeps
    tight distributions (where 2×median is still ordinary) quiet while
    catching genuine tail tasks. Stages with fewer than ``min_tasks``
    finished tasks are skipped; quantiles come from
    :meth:`repro.obs.metrics.Histogram.quantile`.

    Regardless of ``min_tasks``, stages with fewer than 3 tasks are
    never reported: with 1–2 samples the quantiles collapse onto the
    samples themselves and any spread reads as a "straggler", so a
    permissive caller (e.g. ``min_tasks=1``) would flag every 2-task
    stage whose halves differ.
    """
    findings: List[StragglerFinding] = []
    for stage in entry.get("stages", []):
        tasks = stage.get("tasks", {})
        durations = tasks.get("duration") or []
        if len(durations) < max(min_tasks, 3):
            continue
        hist = Histogram()
        for d in durations:
            hist.observe(d)
        p50 = hist.quantile(0.5)
        p95 = hist.quantile(0.95)
        threshold = multiplier * p50
        outliers = [
            {
                "task_index": tasks["index"][i],
                "node": tasks["node"][i],
                "duration": durations[i],
                "attempt": tasks["attempt"][i],
                "speculative": tasks["speculative"][i],
            }
            for i, d in enumerate(durations)
            if d > threshold and d > p95 and p50 > 0
        ]
        if outliers:
            findings.append(
                StragglerFinding(
                    stage_run_id=stage["stage_run_id"],
                    name=stage["name"],
                    signature=stage["signature"],
                    attempt=stage.get("attempt", 0),
                    p50=p50,
                    p95=p95,
                    p99=hist.quantile(0.99),
                    threshold=threshold,
                    outliers=sorted(
                        outliers, key=lambda o: -o["duration"]
                    ),
                )
            )
    return findings


@dataclass
class DriftFinding:
    """Residual trend of one (signature, partitioner kind) model."""

    signature: str
    partitioner: str
    n_runs: int
    mean_abs_rel_residual: float
    slope: float  # per-run change of the relative residual
    flagged: bool

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "partitioner": self.partitioner,
            "n_runs": self.n_runs,
            "mean_abs_rel_residual": self.mean_abs_rel_residual,
            "slope": self.slope,
            "flagged": self.flagged,
        }


def model_drift(
    entries: Sequence[Dict[str, Any]],
    min_runs: int = 3,
    slope_threshold: float = 0.05,
    residual_threshold: float = 0.5,
) -> List[DriftFinding]:
    """Residual trends across the ledger, per stage-model.

    For every (stage signature, partitioner kind) with a ``model_eval``
    block in at least ``min_runs`` entries, fit a line to the relative
    time residual ``(actual − predicted) / actual`` over the entry
    sequence. ``flagged`` when the residual grows faster than
    ``slope_threshold`` per run, or its mean magnitude already exceeds
    ``residual_threshold`` — either way the fitted model no longer
    describes what the engine does, and retraining is due.
    """
    series: Dict[tuple, List[float]] = {}
    for entry in entries:
        eval_block = entry.get("model_eval")
        if not eval_block:
            continue
        for row in eval_block.get("per_stage", []):
            actual = row.get("actual_time", 0.0)
            if actual <= 0:
                continue
            rel = (actual - row.get("predicted_time", 0.0)) / actual
            series.setdefault(
                (row["signature"], row.get("partitioner", "hash")), []
            ).append(rel)

    findings: List[DriftFinding] = []
    for (signature, kind), residuals in sorted(series.items()):
        if len(residuals) < min_runs:
            continue
        n = len(residuals)
        xs = range(n)
        x_mean = (n - 1) / 2.0
        y_mean = sum(residuals) / n
        var = sum((x - x_mean) ** 2 for x in xs)
        slope = (
            sum((x - x_mean) * (y - y_mean) for x, y in zip(xs, residuals))
            / var
            if var > 0
            else 0.0
        )
        mean_abs = sum(abs(r) for r in residuals) / n
        findings.append(
            DriftFinding(
                signature=signature,
                partitioner=kind,
                n_runs=n,
                mean_abs_rel_residual=mean_abs,
                slope=slope,
                flagged=abs(slope) > slope_threshold
                or mean_abs > residual_threshold,
            )
        )
    return findings


@dataclass
class RunDiff:
    """Result of comparing two ledger entries for regressions."""

    run_a: str
    run_b: str
    wall_clock_a: float
    wall_clock_b: float
    time_delta: float  # fractional change of B vs A (+0.25 = 25% slower)
    shuffle_a: float
    shuffle_b: float
    shuffle_delta: float
    regressions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "wall_clock_a": self.wall_clock_a,
            "wall_clock_b": self.wall_clock_b,
            "time_delta": self.time_delta,
            "shuffle_a": self.shuffle_a,
            "shuffle_b": self.shuffle_b,
            "shuffle_delta": self.shuffle_delta,
            "regressions": self.regressions,
            "ok": self.ok,
        }


def _total_shuffle(entry: Dict[str, Any]) -> float:
    shuffle = entry.get("shuffle", {})
    read = shuffle.get("local_bytes", 0.0) + shuffle.get("remote_bytes", 0.0)
    return max(read, shuffle.get("write_bytes", 0.0))


def diff_runs(
    entry_a: Dict[str, Any],
    entry_b: Dict[str, Any],
    time_threshold: float = 0.2,
    shuffle_threshold: Optional[float] = None,
) -> RunDiff:
    """Compare run B against baseline run A.

    A regression is a fractional increase beyond the threshold: wall
    clock against ``time_threshold``, total shuffle volume (max of read
    and write, the paper's metric) against ``shuffle_threshold`` (which
    defaults to the time threshold). Improvements never flag.
    """
    if shuffle_threshold is None:
        shuffle_threshold = time_threshold
    wall_a = entry_a.get("wall_clock", 0.0)
    wall_b = entry_b.get("wall_clock", 0.0)
    time_delta = (wall_b - wall_a) / wall_a if wall_a > 0 else 0.0
    shuffle_a = _total_shuffle(entry_a)
    shuffle_b = _total_shuffle(entry_b)
    shuffle_delta = (
        (shuffle_b - shuffle_a) / shuffle_a if shuffle_a > 0 else 0.0
    )
    regressions: List[str] = []
    if time_delta > time_threshold:
        regressions.append(
            f"wall clock regressed {time_delta * 100:.1f}% "
            f"({wall_a:.3f}s -> {wall_b:.3f}s, threshold "
            f"{time_threshold * 100:.0f}%)"
        )
    if shuffle_delta > shuffle_threshold:
        regressions.append(
            f"shuffle volume regressed {shuffle_delta * 100:.1f}% "
            f"({shuffle_a:.0f}B -> {shuffle_b:.0f}B, threshold "
            f"{shuffle_threshold * 100:.0f}%)"
        )
    return RunDiff(
        run_a=entry_a.get("run_id", "?"),
        run_b=entry_b.get("run_id", "?"),
        wall_clock_a=wall_a,
        wall_clock_b=wall_b,
        time_delta=time_delta,
        shuffle_a=shuffle_a,
        shuffle_b=shuffle_b,
        shuffle_delta=shuffle_delta,
        regressions=regressions,
    )

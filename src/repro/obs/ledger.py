"""Run ledger: an append-only, versioned record of every measured run.

Every engine or CHOPPER run appends one structured JSONL entry — config,
per-stage timeline, shuffle local/remote byte split, partition-size
histograms, task-attempt outcomes, chaos events, and (for CHOPPER runs)
the chosen schemes plus the cost model's predicted-vs-actual numbers.
The ledger is what the diagnostics passes (:mod:`repro.obs.diagnostics`)
and the ``repro report`` / ``repro diff-runs`` commands read, so a run is
explainable and comparable after the fact without re-running it.

Layout: ``<path>`` is the JSONL file (one entry per line), and
``<path>.index.json`` is a derived sidecar mapping run ids to byte
offsets so :meth:`RunLedger.read` can seek instead of scan. The sidecar
is rebuilt from the JSONL whenever it is missing or stale; the JSONL is
the single source of truth.

Run ids are deterministic — ``{seq:04d}-{workload}-{label}`` — so CI can
append two runs and diff ``0000-…`` against ``0001-…`` without parsing
output.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.common.errors import LedgerError

LEDGER_VERSION = 1

logger = logging.getLogger("repro.obs.ledger")


class RunLedger:
    """Append-only JSONL ledger of run entries, with a seek index."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    @property
    def index_path(self) -> str:
        return self.path + ".index.json"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, workload: str, label: str, body: Dict[str, Any]) -> str:
        """Append one entry; returns its assigned deterministic run id.

        A torn final line left by a crash mid-append is repaired first
        (completed by a newline when it parses, truncated away when it
        does not), so the new entry's offset and sequence number are the
        same as if the crash had never happened.
        """
        self._repair_tail()
        index = self._index(allow_missing=True)
        seq = len(index)
        run_id = f"{seq:04d}-{workload}-{label}"
        entry = {
            "version": LEDGER_VERSION,
            "run_id": run_id,
            "seq": seq,
            "workload": workload,
            "label": label,
            **body,
        }
        offset = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        index.append(
            {"run_id": run_id, "workload": workload, "label": label,
             "offset": offset}
        )
        with open(self.index_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "version": LEDGER_VERSION,
                    "size": os.path.getsize(self.path),
                    "runs": index,
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        return run_id

    def _repair_tail(self) -> None:
        """Fix a torn final line (crash mid-append) in place.

        The appender writes each ``json + "\\n"`` in one call, so a tail
        without a trailing newline can only be a partially flushed write:
        complete it when it parses as a full entry, drop it otherwise.
        """
        if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
            return
        with open(self.path, "rb+") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
            fh.seek(0)
            data = fh.read()
            cut = data.rfind(b"\n") + 1
            tail = data[cut:]
            if self._tail_entry(tail) is not None:
                fh.write(b"\n")
                logger.warning(
                    "ledger %s: final line was missing its newline; repaired",
                    self.path,
                )
            else:
                fh.truncate(cut)
                logger.warning(
                    "ledger %s: dropping torn final line (%d bytes) left by "
                    "an interrupted append",
                    self.path,
                    len(tail),
                )

    @staticmethod
    def _tail_entry(raw: bytes) -> Optional[Dict[str, Any]]:
        """Parse a newline-less tail; None when it is a partial record."""
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if isinstance(entry, dict) and "run_id" in entry:
            return entry
        return None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def runs(self) -> List[Dict[str, Any]]:
        """Index rows ({run_id, workload, label, offset}) in append order."""
        if not os.path.exists(self.path):
            raise LedgerError(f"ledger file not found: {self.path}")
        return self._index(allow_missing=False)

    def entries(self) -> List[Dict[str, Any]]:
        """All entries, in append order."""
        return list(self._scan())

    def read(self, run_id: str) -> Dict[str, Any]:
        """One entry by run id (seeks via the index)."""
        for row in self.runs():
            if row["run_id"] == run_id:
                with open(self.path, "r", encoding="utf-8") as fh:
                    fh.seek(row["offset"])
                    return self._parse(fh.readline(), row["offset"])
        known = ", ".join(row["run_id"] for row in self._index(True)) or "none"
        raise LedgerError(
            f"run {run_id!r} not found in {self.path} (known runs: {known})"
        )

    # ------------------------------------------------------------------

    def _scan(self) -> Iterator[Dict[str, Any]]:
        for entry, _offset in self._scan_with_offsets():
            yield entry

    def _parse(self, line: str, offset: int) -> Dict[str, Any]:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise LedgerError(
                f"corrupt ledger entry in {self.path} at byte {offset}: {exc}"
            ) from None
        if not isinstance(entry, dict) or "run_id" not in entry:
            raise LedgerError(
                f"corrupt ledger entry in {self.path} at byte {offset}: "
                f"not a run entry"
            )
        return entry

    def _index(self, allow_missing: bool) -> List[Dict[str, Any]]:
        """Load the sidecar, rebuilding it from the JSONL when stale.

        Staleness test: the sidecar's last offset must point inside the
        current file and its row count match the entry count implied by
        appends (a hand-edited or half-copied pair falls back to a scan).
        """
        if not os.path.exists(self.path):
            if allow_missing:
                return []
            raise LedgerError(f"ledger file not found: {self.path}")
        if os.path.exists(self.index_path):
            try:
                with open(self.index_path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
                rows = payload["runs"]
                size = os.path.getsize(self.path)
                # A sidecar that recorded the file size it indexed is
                # stale the moment the JSONL grew, shrank, or gained a
                # torn tail; older sidecars (no "size") keep the
                # offset-bounds check only.
                fresh = payload.get("size", size) == size
                if fresh and (
                    all(
                        isinstance(r, dict) and 0 <= r["offset"] < size
                        for r in rows
                    )
                    or not rows
                ):
                    return rows
            except (json.JSONDecodeError, KeyError, TypeError, OSError):
                pass  # fall through to rebuild
        return [
            {
                "run_id": entry["run_id"],
                "workload": entry.get("workload", ""),
                "label": entry.get("label", ""),
                "offset": offset,
            }
            for entry, offset in self._scan_with_offsets()
        ]

    def _scan_with_offsets(self) -> Iterator[tuple]:
        """Yield (entry, offset) pairs, tolerating a torn final line.

        A final line with no trailing newline is a crash mid-append: it
        still yields when it parses as a complete entry, and is skipped
        with a warning when it is partial — so one interrupted run
        cannot poison every subsequent ledger read. Corruption anywhere
        *before* the final line still raises (that is not a torn write).
        """
        if not os.path.exists(self.path):
            raise LedgerError(f"ledger file not found: {self.path}")
        with open(self.path, "r", encoding="utf-8", newline="") as fh:
            offset = 0
            for line in fh:
                start = offset
                offset += len(line.encode("utf-8"))
                if not line.strip():
                    continue
                if not line.endswith("\n"):
                    entry = self._tail_entry(line.encode("utf-8"))
                    if entry is None:
                        logger.warning(
                            "ledger %s: skipping torn final line at byte %d "
                            "(interrupted append)",
                            self.path,
                            start,
                        )
                        return
                    yield entry, start
                    return
                yield self._parse(line, start), start


def plan_summary(events) -> Optional[Dict[str, Any]]:
    """Aggregate a context's relational plan-optimizer events.

    One event per optimized query plan (see ``AnalyticsContext.plan_events``);
    the summary carries total rule hit-counts so ``diff-runs`` and CI
    gates can assert on plan shape without replaying the run.
    """
    if not events:
        return None
    hits: Dict[str, int] = {}
    for event in events:
        for rule, n in (event.get("rule_hits") or {}).items():
            hits[rule] = hits.get(rule, 0) + n
    return {
        "optimized_plans": len(events),
        "rule_hits": dict(sorted(hits.items())),
        "events": [dict(e) for e in events],
    }


class LedgerCollector:
    """Listener that assembles one run's ledger entry body.

    Attach around a workload run (it registers as a span listener, so
    task/chaos spans flow even with no tracer); :meth:`body` afterwards
    returns the per-run portion of the entry — the caller adds identity
    (workload/label), the config snapshot, and any CHOPPER extras before
    handing it to :meth:`RunLedger.append`.
    """

    MAX_SPILL_EVENTS = 200  # per-event detail kept in the entry (head)
    MAX_AQE_EVENTS = 200  # adaptive-execution decisions kept (head)

    def __init__(self) -> None:
        self.stages: List[Dict[str, Any]] = []
        self.jobs: List[Dict[str, Any]] = []
        self.chaos_events: List[Dict[str, Any]] = []
        self.spill_events: List[Dict[str, Any]] = []
        self.aqe_events: List[Dict[str, Any]] = []
        self._spill_count = 0
        self._aqe_count = 0
        self.task_attempts: Dict[str, int] = {}
        self._shuffle = {"local_bytes": 0.0, "remote_bytes": 0.0,
                         "write_bytes": 0.0, "spilled_bytes": 0.0}
        self._ctx = None
        self._started_at = 0.0

    # -- Listener callbacks (duck-typed) --------------------------------

    def on_stage_submitted(self, stage_stats) -> None:
        pass

    def on_task_end(self, task_metrics) -> None:
        self._shuffle["local_bytes"] += task_metrics.shuffle_read_local
        self._shuffle["remote_bytes"] += task_metrics.shuffle_read_remote
        self._shuffle["write_bytes"] += task_metrics.shuffle_write

    def on_stage_completed(self, stats) -> None:
        tasks = stats.tasks
        self.stages.append(
            {
                "stage_run_id": stats.stage_run_id,
                "name": stats.name,
                "signature": stats.signature,
                "kind": stats.kind,
                "attempt": stats.attempt,
                "num_partitions": stats.num_partitions,
                "partitioner": stats.partitioner_kind,
                "start": stats.submitted_at,
                "end": stats.completed_at,
                "duration": stats.duration,
                "input_bytes": stats.input_bytes,
                "shuffle_read_bytes": stats.shuffle_read_bytes,
                "shuffle_write_bytes": stats.shuffle_write_bytes,
                "remote_read_bytes": stats.remote_shuffle_read,
                "skew": stats.skew(),
                # Parallel arrays, one slot per finished task: the
                # material for straggler and compute-skew analysis.
                "tasks": {
                    "count": len(tasks),
                    "index": [t.task_index for t in tasks],
                    "node": [t.node for t in tasks],
                    "duration": [round(t.duration, 6) for t in tasks],
                    "attempt": [t.attempt for t in tasks],
                    "speculative": [t.speculative for t in tasks],
                    "input_bytes": [round(t.input_bytes, 1) for t in tasks],
                    "records_out": [t.records_out for t in tasks],
                },
                # Bytes per reduce partition of this stage's shuffle
                # output (data-side skew); empty for result stages.
                "output_partition_bytes": [
                    round(b, 1) for b in stats.output_partition_bytes
                ],
                # AQE: physical task count after runtime re-planning;
                # None when the stage ran its static layout.
                "adapted_partitions": stats.adapted_num_partitions,
                # Source partitions skipped by pruned scans in this
                # stage's pipeline (never scheduled as tasks).
                "pruned_partitions": stats.pruned_partitions,
            }
        )

    def on_job_end(self, stats) -> None:
        self.jobs.append(
            {
                "job_id": stats.job_id,
                "start": stats.submitted_at,
                "end": stats.completed_at,
                "duration": stats.duration,
                "stages": len(stats.stages),
            }
        )

    def on_span(self, event) -> None:
        if event.cat == "chaos":
            self.chaos_events.append(
                {"t": event.start, "event": event.name, **event.args}
            )
        elif event.cat == "spill":
            self._shuffle["spilled_bytes"] += event.args.get("bytes", 0.0)
            self._spill_count += 1
            # Keep the entry bounded: a tight budget can spill tens of
            # thousands of blocks; the full stream lives in the trace
            # lane, the ledger keeps the head plus exact totals.
            if len(self.spill_events) < self.MAX_SPILL_EVENTS:
                self.spill_events.append(
                    {"t": event.start, "event": event.name, **event.args}
                )
        elif event.cat == "aqe":
            self._aqe_count += 1
            if len(self.aqe_events) < self.MAX_AQE_EVENTS:
                self.aqe_events.append(
                    {"t": event.start, "event": event.name, **event.args}
                )
        elif event.cat == "task":
            outcome = event.args.get("outcome", "ok")
            self.task_attempts[outcome] = self.task_attempts.get(outcome, 0) + 1

    # -- lifecycle -------------------------------------------------------

    def attach(self, ctx) -> "LedgerCollector":
        ctx.obs.add_span_listener(self)
        self._ctx = ctx
        self._started_at = ctx.now
        return self

    def detach(self) -> None:
        if self._ctx is not None:
            self._ctx.obs.remove_span_listener(self)

    def attached(self, ctx) -> "_LedgerScope":
        return _LedgerScope(self, ctx)

    def body(self) -> Dict[str, Any]:
        """The run-record portion of a ledger entry."""
        wall = (self._ctx.now - self._started_at) if self._ctx else 0.0
        return {
            "wall_clock": wall,
            "jobs": self.jobs,
            "stages": self.stages,
            "shuffle": dict(self._shuffle),
            "task_attempts": dict(sorted(self.task_attempts.items())),
            "chaos_events": self.chaos_events,
            "spill_events": self.spill_events,
            "spill_event_count": self._spill_count,
            "aqe_events": self.aqe_events,
            "aqe_event_count": self._aqe_count,
            "plan": plan_summary(
                getattr(self._ctx, "plan_events", None) if self._ctx else None
            ),
            "partition_cache": self._partition_cache(),
        }

    def _partition_cache(self) -> Optional[Dict[str, Any]]:
        """Result-cache stats and zone-map coverage, when either exists."""
        if self._ctx is None:
            return None
        cache = getattr(self._ctx, "query_cache", None)
        zone_maps = getattr(self._ctx, "zone_maps", None)
        zone_summary = zone_maps.summary() if zone_maps is not None else []
        if cache is None and not zone_summary:
            return None
        return {
            "cache": cache.stats() if cache is not None else None,
            "zone_maps": zone_summary,
        }


class _LedgerScope:
    def __init__(self, collector: LedgerCollector, ctx) -> None:
        self.collector = collector
        self.ctx = ctx

    def __enter__(self) -> LedgerCollector:
        return self.collector.attach(self.ctx)

    def __exit__(self, *exc) -> None:
        self.collector.detach()
